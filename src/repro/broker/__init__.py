"""An in-memory partitioned message broker (ingestion substrate).

Paper §III-A2: "Typical implementations of stream sources may read data
from message brokers and message queues.  A NEPTUNE stream source can
ingest streams using a pull-based approach from an IoT gateway."
Related work (§V) describes Samza's Kafka-based ingestion with
partitioned topics and per-partition offsets.

This package provides that substrate, built from scratch:

- :class:`MessageBroker` — named topics, each split into partitions;
- :class:`TopicPartition` — an append-only log with offset-addressed
  reads (replayable: the broker retains messages, consumers track
  positions);
- consumer groups with committed offsets (pull model, at-least-once on
  crash, exactly-once when offsets are committed with processing —
  which :class:`~repro.broker.source.BrokerSource` does via NEPTUNE's
  checkpointing);
- :class:`~repro.broker.source.BrokerSource` /
  :class:`~repro.broker.source.BrokerSink` — NEPTUNE operators
  bridging graphs to topics, with key-hash partition routing.
"""

from repro.broker.core import (
    BrokerMessage,
    ConsumerGroup,
    MessageBroker,
    TopicPartition,
)
from repro.broker.source import BrokerSource, BrokerSink

__all__ = [
    "MessageBroker",
    "TopicPartition",
    "ConsumerGroup",
    "BrokerMessage",
    "BrokerSource",
    "BrokerSink",
]
