"""Hot-path benchmark harness behind ``repro bench``.

The paper's headline claims are throughput numbers (§III-B: buffering,
batched scheduling, object reuse exist to make the small-packet path
fast), so the repo measures itself continuously: pinned scenarios over
the serialize → buffer → flush → dispatch path produce a
machine-readable ``BENCH_hotpath.json`` that CI diffs against a
checked-in baseline with a ±10% guardrail.

Layout
------
- :mod:`repro.bench.harness` — profiles, timing loops, and the
  machine-speed calibration score that makes cross-machine regression
  checks meaningful.
- :mod:`repro.bench.scenarios` — the pinned scenarios (codec
  encode/decode throughput, buffer flush rate, end-to-end relay
  packets/sec with p50/p99 latency vs the ``max_delay`` bound).
- :mod:`repro.bench.report` — the ``neptune-bench/1`` JSON schema,
  writer, and the regression checker CI runs.
"""

from repro.bench.harness import (
    PROFILES,
    BenchProfile,
    BenchResult,
    calibration_score,
)
from repro.bench.report import (
    BENCH_SCHEMA,
    build_report,
    check_regression,
    write_report,
)
from repro.bench.scenarios import run_scenarios

__all__ = [
    "BENCH_SCHEMA",
    "PROFILES",
    "BenchProfile",
    "BenchResult",
    "build_report",
    "calibration_score",
    "check_regression",
    "run_scenarios",
    "write_report",
]
