"""The pinned hot-path benchmark scenarios.

Three scenarios cover the layers the paper optimizes (§III-B):

- ``codec`` — encode/decode messages/sec for the schema-compiled codec
  *and* the per-field reference codec on a fixed-width-dominated
  schema, plus the speedup ratios between them (the acceptance metric
  for the compiled-codec work).
- ``buffer`` — appends/sec through a capacity-flushing
  :class:`~repro.core.buffering.StreamBuffer` whose sink recycles, so
  the double-buffer swap path (not the allocator) is what's measured.
- ``relay`` — end-to-end packets/sec and p50/p99 emit-to-process
  latency through a real source → relay → sink job on the local
  runtime, reported against the ``max_delay`` latency bound.
- ``health`` — the same relay job run twice, interleaved: bare vs with
  a :class:`~repro.observe.health.HealthEngine` scanning SLO monitors
  in the background.  The acceptance metric is ``overhead_frac``: the
  monitors must cost < 3% of bare throughput (asserted in-scenario on
  non-smoke profiles, mirroring the relay lost-packet check).
- ``collector`` — the relay job as a two-worker in-process
  distributed job, run collector-off vs collector-on (a
  :class:`~repro.observe.collector.DeltaSource` shipping bounded
  telemetry deltas into a polling
  :class:`~repro.observe.collector.ClusterCollector`).  Guarded the
  same two ways as ``health``: the collector's poll duty cycle must
  stay < 3% of the run, with a 25% A/B wall-clock backstop.
- ``cluster_scaling`` — aggregate relay throughput through real worker
  *processes* (the ``repro.cluster`` coordinator) at each worker count
  in the profile; the guarded metric is the scale-up ratio between the
  largest and smallest count.  Skipped on the smoke tier: tier-1 test
  runs must never spawn processes.
- ``policy`` — the closed loop: a sink paying a fixed per-batch
  overhead drowns in deliberately tiny frames, breaches a
  ``buffer_occupancy`` SLO, and a
  :class:`~repro.observe.policy.PolicyEngine` retunes the legs feeding
  it live (no restart).  Guarded three ways on non-smoke tiers: the
  policy must act, the drain must beat the policy-off control by ≥25%
  (the heal is real, not a timer artifact), and the whole observe+
  decide plane (health scans + diagnose + decide) must cost < 3% of
  the healed run's wall time.
"""

from __future__ import annotations

import time

from repro.bench.harness import BenchProfile, BenchResult, best_rate, percentile
from repro.core.buffering import StreamBuffer
from repro.core.config import NeptuneConfig
from repro.core.fieldtypes import FieldType
from repro.core.graph import StreamProcessingGraph
from repro.core.operators import EmitContext, StreamProcessor, StreamSource
from repro.core.packet import PacketSchema, StreamPacket
from repro.core.runtime import NeptuneRuntime
from repro.core.serde import PacketCodec

#: Fixed-width-dominated schema: the compiled codec's best case and the
#: shape the paper's sensing workloads actually have (ids + readings).
FIXED_SCHEMA = PacketSchema(
    [
        ("valid", FieldType.BOOL),
        ("sensor", FieldType.INT32),
        ("seq", FieldType.INT64),
        ("ts", FieldType.FLOAT64),
        ("reading", FieldType.FLOAT64),
        ("temperature", FieldType.FLOAT32),
        ("station", FieldType.INT32),
        ("flags", FieldType.INT64),
    ]
)

#: Relay-pipeline schema: one stamp, one payload value.
RELAY_SCHEMA = PacketSchema(
    [
        ("seq", FieldType.INT64),
        ("emit_ts", FieldType.FLOAT64),
        ("reading", FieldType.FLOAT64),
    ]
)


def _fixed_packet() -> StreamPacket:
    pkt = StreamPacket(FIXED_SCHEMA)
    pkt.set("valid", True)
    pkt.set("sensor", 1234)
    pkt.set("seq", 2**40 + 7)
    pkt.set("ts", 1_722_000_000.25)
    pkt.set("reading", 21.75)
    pkt.set("temperature", 3.5)
    pkt.set("station", -8)
    pkt.set("flags", 0x5A5A)
    return pkt


def scenario_codec(profile: BenchProfile) -> BenchResult:
    """Encode/decode throughput, compiled vs per-field reference."""
    result = BenchResult("codec")
    pkt = _fixed_packet()
    n_msgs = profile.codec_messages
    # One shared batch body for the decode side (built once; both
    # codecs decode identical bytes — the wire format is shared).
    body = PacketCodec(FIXED_SCHEMA).encode_batch([pkt] * 1000)
    decode_rounds = max(1, n_msgs // 1000)
    for label, compiled in (("compiled", True), ("legacy", False)):
        codec = PacketCodec(FIXED_SCHEMA, compiled=compiled)

        def encode_run(codec: PacketCodec = codec) -> int:
            out = bytearray()
            for _ in range(n_msgs):
                codec.encode_into(pkt, out)
            return n_msgs

        def decode_run(codec: PacketCodec = codec) -> int:
            n = 0
            for _ in range(decode_rounds):
                for _pkt in codec.iter_decode(body, count=1000, reuse=True):
                    n += 1
            return n

        result.metrics[f"encode_{label}_msgs_per_sec"] = best_rate(
            encode_run, profile.codec_repeats
        )
        result.metrics[f"decode_{label}_msgs_per_sec"] = best_rate(
            decode_run, profile.codec_repeats
        )
    result.metrics["encode_speedup"] = result.metrics[
        "encode_compiled_msgs_per_sec"
    ] / max(result.metrics["encode_legacy_msgs_per_sec"], 1e-9)
    result.metrics["decode_speedup"] = result.metrics[
        "decode_compiled_msgs_per_sec"
    ] / max(result.metrics["decode_legacy_msgs_per_sec"], 1e-9)
    result.metrics["record_size_bytes"] = float(len(body) // 1000)
    return result


def scenario_buffer(profile: BenchProfile) -> BenchResult:
    """Capacity-flush append rate through the double-buffer swap path."""
    result = BenchResult("buffer")
    payload = bytes(64)
    flushes = 0

    def run() -> int:
        nonlocal flushes

        def sink(body: "bytes | bytearray | memoryview", count: int) -> None:
            nonlocal flushes
            flushes += 1
            buf.recycle(body)

        buf = StreamBuffer(capacity=64 * 1024, sink=sink, max_delay=60.0)
        for _ in range(profile.buffer_appends):
            buf.append(payload)
        buf.flush()
        # Steady state must run on the two pooled bytearrays: more than
        # a handful of fresh allocations means the swap protocol broke.
        result.metrics["spare_allocs"] = float(buf.spare_allocs)
        result.metrics["buffers_recycled"] = float(buf.buffers_recycled)
        return profile.buffer_appends

    result.metrics["appends_per_sec"] = best_rate(run, profile.codec_repeats)
    result.metrics["flushes"] = float(flushes)
    return result


class _RelaySource(StreamSource):
    """Emits ``total`` stamped packets as fast as the runtime allows."""

    def __init__(self, total: int) -> None:
        super().__init__()
        self.total = total
        self.i = 0

    def generate(self, ctx: EmitContext) -> None:
        if self.i >= self.total:
            ctx.finish()
            return
        pkt = ctx.new_packet()
        pkt.set("seq", self.i)
        pkt.set("emit_ts", time.monotonic())
        pkt.set("reading", 20.0 + (self.i % 100) / 10.0)
        ctx.emit(pkt)
        self.i += 1

    def output_schema(self, stream: str) -> PacketSchema:
        return RELAY_SCHEMA


class _Relay(StreamProcessor):
    """Pass-through hop (the paper's Fig. 1 relay stage)."""

    def process(self, packet: StreamPacket, ctx: EmitContext) -> None:
        out = ctx.new_packet()
        out.set("seq", packet.get("seq"))
        out.set("emit_ts", packet.get("emit_ts"))
        out.set("reading", packet.get("reading"))
        ctx.emit(out)

    def output_schema(self, stream: str) -> PacketSchema:
        return RELAY_SCHEMA


class _LatencySink(StreamProcessor):
    """Terminal stage recording source-emit → process latency."""

    def __init__(self) -> None:
        super().__init__()
        self.count = 0
        self.latencies: list[float] = []

    def process(self, packet: StreamPacket, ctx: EmitContext) -> None:
        self.count += 1
        emitted = packet.get("emit_ts")
        self.latencies.append(time.monotonic() - float(emitted))

    def output_schema(self, stream: str) -> PacketSchema:
        raise KeyError(stream)  # terminal stage: no outputs


def scenario_relay(profile: BenchProfile) -> BenchResult:
    """End-to-end source → relay → sink throughput and latency."""
    result = BenchResult("relay")
    sink = _LatencySink()
    graph = StreamProcessingGraph(
        "bench-relay",
        config=NeptuneConfig(
            buffer_capacity=32 * 1024,
            buffer_max_delay=profile.relay_max_delay,
        ),
    )
    graph.add_source("source", lambda: _RelaySource(profile.relay_packets))
    graph.add_processor("relay", _Relay)
    graph.add_processor("sink", lambda: sink)
    graph.link("source", "relay").link("relay", "sink")
    t0 = time.perf_counter()
    with NeptuneRuntime() as runtime:
        handle = runtime.submit(graph)
        if not handle.await_completion(timeout=300):
            raise RuntimeError("relay benchmark did not complete in 300s")
    elapsed = time.perf_counter() - t0
    if sink.count != profile.relay_packets:
        raise RuntimeError(
            f"relay lost packets: {sink.count}/{profile.relay_packets}"
        )
    result.metrics["packets_per_sec"] = sink.count / elapsed if elapsed else 0.0
    result.metrics["p50_latency_sec"] = percentile(sink.latencies, 0.50)
    result.metrics["p99_latency_sec"] = percentile(sink.latencies, 0.99)
    result.metrics["max_delay_bound_sec"] = profile.relay_max_delay
    result.metrics["packets"] = float(sink.count)
    return result


def _timed_relay(
    profile: BenchProfile, monitored: bool
) -> "tuple[float, int, float, float]":
    """One relay run; returns ``(rate, scans, scan_seconds, elapsed)``.

    With ``monitored=True`` the job runs under a
    :class:`~repro.observe.RuntimeObserver` with a background
    :class:`~repro.observe.HealthEngine` scanning generous (never
    breaching) SLOs — the configuration whose overhead the ``health``
    scenario bounds.
    """
    from repro.observe import HealthEngine, RuntimeObserver, bridge, default_slos

    sink = _LatencySink()
    graph = StreamProcessingGraph(
        "bench-health",
        config=NeptuneConfig(
            buffer_capacity=32 * 1024,
            buffer_max_delay=profile.relay_max_delay,
        ),
    )
    graph.add_source("source", lambda: _RelaySource(profile.relay_packets))
    graph.add_processor("relay", _Relay)
    graph.add_processor("sink", lambda: sink)
    graph.link("source", "relay").link("relay", "sink")

    observer = RuntimeObserver(sample_every=0) if monitored else None
    engine: "HealthEngine | None" = None
    t0 = time.perf_counter()
    with NeptuneRuntime(observer=observer) as runtime:
        handle = runtime.submit(graph)
        if observer is not None:
            registry = observer.registry
            # Budgets far above anything the relay produces: the
            # scenario measures scan overhead, not breach handling.
            slos = default_slos(
                ["source", "relay", "sink"], latency_budget=60.0, e2e_budget=None
            )
            engine = HealthEngine(
                observer,
                slos,
                scrape=lambda: bridge.scrape_job(registry, handle),
                interval=0.1,
            )
            engine.start()
        ok = handle.await_completion(timeout=300)
        if engine is not None:
            engine.stop()
        if not ok:
            raise RuntimeError("health benchmark did not complete in 300s")
    elapsed = time.perf_counter() - t0
    if sink.count != profile.relay_packets:
        raise RuntimeError(
            f"health relay lost packets: {sink.count}/{profile.relay_packets}"
        )
    rate = sink.count / elapsed if elapsed else 0.0
    if engine is None:
        return rate, 0, 0.0, elapsed
    return rate, engine.scans, engine.scan_seconds, elapsed


def scenario_health(profile: BenchProfile) -> BenchResult:
    """Monitors-on vs monitors-off relay cost (A/B interleaved).

    Two overhead estimates, asserted differently:

    - ``overhead_frac`` — the engine's measured duty cycle (seconds
      inside ``scan_once`` over monitored wall time).  The engine does
      nothing between scans, so this is its whole cost, and it is
      stable: the <3% acceptance budget gates on it (non-smoke tiers).
    - ``ab_overhead_frac`` — best-of-N wall-clock A/B delta.  On a
      shared runner its noise floor (±10%) is an order of magnitude
      above the budget, so it only backstops *catastrophic* regressions
      (>25%, e.g. a scan accidentally landing on the hot path).
    """
    result = BenchResult("health")
    best_off = 0.0
    best_on = 0.0
    scans = 0
    duty = 0.0
    for _ in range(max(1, profile.codec_repeats)):
        off, _, _, _ = _timed_relay(profile, monitored=False)
        on, n_scans, scan_secs, on_elapsed = _timed_relay(profile, monitored=True)
        best_off = max(best_off, off)
        best_on = max(best_on, on)
        scans = max(scans, n_scans)
        duty = max(duty, scan_secs / on_elapsed if on_elapsed else 0.0)
    ab_overhead = max(0.0, (best_off - best_on) / best_off) if best_off else 0.0
    result.metrics["packets_per_sec_monitors_off"] = best_off
    result.metrics["packets_per_sec_monitors_on"] = best_on
    result.metrics["overhead_frac"] = duty
    result.metrics["ab_overhead_frac"] = ab_overhead
    result.metrics["health_scans"] = float(scans)
    # The smoke profile is too short for stable ratios (a single GC
    # pause swamps it); the quick/full tiers enforce the budgets.
    if profile.name != "smoke":
        if duty >= 0.03:
            raise RuntimeError(
                f"health monitors consumed {duty:.1%} of the monitored "
                "run (scan duty cycle); budget is < 3%"
            )
        if ab_overhead >= 0.25:
            raise RuntimeError(
                f"monitors-on throughput collapsed: {best_on:.0f} vs "
                f"{best_off:.0f} pkts/s ({ab_overhead:.0%} drop) — scan "
                "work is leaking onto the hot path"
            )
    return result


def _timed_collected(
    profile: BenchProfile, collected: bool
) -> "tuple[float, float, float, int, int]":
    """One in-process two-worker relay run; returns
    ``(rate, elapsed, poll_seconds, polls, spans)``.

    Both arms carry a sampling :class:`~repro.observe.RuntimeObserver`
    (its cost is bounded by the observe guardrail); the ``collected``
    arm additionally runs the cluster telemetry plane — a
    :class:`~repro.observe.collector.DeltaSource` building bounded
    deltas and a :class:`~repro.observe.collector.ClusterCollector`
    polling, absorbing, and stitching them in the background.  The
    delta build runs synchronously inside the collector's fetch, so
    ``poll_seconds`` is the plane's entire cost.
    """
    from repro.core.distributed import DistributedJob
    from repro.observe import RuntimeObserver
    from repro.observe.collector import ClusterCollector, DeltaSource

    sink = _LatencySink()
    graph = StreamProcessingGraph(
        "bench-collector",
        config=NeptuneConfig(
            buffer_capacity=32 * 1024,
            buffer_max_delay=profile.relay_max_delay,
        ),
    )
    graph.add_source("source", lambda: _RelaySource(profile.relay_packets))
    graph.add_processor("relay", _Relay)
    graph.add_processor("sink", lambda: sink)
    graph.link("source", "relay").link("relay", "sink")

    # Production-plausible observability config: 1-in-256 trace
    # sampling and the coordinator's default 0.25s poll interval.
    # Span shipping dominates poll cost, so the duty bound below is
    # for *this* pinned sampling rate; correctness suites that trace
    # every packet trade that cost for coverage deliberately.
    observer = RuntimeObserver(sample_every=256)
    job = DistributedJob(graph, n_workers=2, observer=observer)
    collector: "ClusterCollector | None" = None
    source: "DeltaSource | None" = None
    t0 = time.perf_counter()
    job.start()
    if collected:
        source = DeltaSource(observer, 0, worker=job.workers[0])
        collector = ClusterCollector(interval=0.25)
        collector.attach(0, source.collect)
        collector.start()
    ok = job.await_completion(timeout=300)
    if collector is not None:
        collector.stop()
        collector.poll_once()  # the tail, same as the coordinator's hook
    elapsed = time.perf_counter() - t0
    if not ok:
        raise RuntimeError("collector benchmark did not complete in 300s")
    if sink.count != profile.relay_packets:
        raise RuntimeError(
            f"collector relay lost packets: {sink.count}/{profile.relay_packets}"
        )
    rate = sink.count / elapsed if elapsed else 0.0
    if collector is None or source is None:
        return rate, elapsed, 0.0, 0, 0
    return rate, elapsed, collector.poll_seconds, collector.polls, source.spans_shipped


def scenario_collector(profile: BenchProfile) -> BenchResult:
    """Cluster-collector-on vs -off relay cost (A/B interleaved).

    The same two-verdict scheme as ``health``: the duty cycle (seconds
    inside ``poll_once`` — delta build + absorb + stitch + bookkeeping,
    nothing runs between polls — over the collected run's wall time)
    gates at < 3% on non-smoke tiers, and the best-of-N wall-clock A/B
    delta backstops catastrophic regressions at 25% (e.g. collection
    work leaking onto the data plane's hot path).
    """
    result = BenchResult("collector")
    best_off = 0.0
    best_on = 0.0
    duty = 0.0
    polls = 0
    spans = 0
    for _ in range(max(1, profile.codec_repeats)):
        off, _, _, _, _ = _timed_collected(profile, collected=False)
        on, on_elapsed, poll_secs, n_polls, n_spans = _timed_collected(
            profile, collected=True
        )
        best_off = max(best_off, off)
        best_on = max(best_on, on)
        duty = max(duty, poll_secs / on_elapsed if on_elapsed else 0.0)
        polls = max(polls, n_polls)
        spans = max(spans, n_spans)
    ab_overhead = max(0.0, (best_off - best_on) / best_off) if best_off else 0.0
    result.metrics["packets_per_sec_collector_off"] = best_off
    result.metrics["packets_per_sec_collector_on"] = best_on
    result.metrics["collector_overhead_frac"] = duty
    result.metrics["collector_ab_overhead_frac"] = ab_overhead
    result.metrics["collector_polls"] = float(polls)
    result.metrics["collector_spans_shipped"] = float(spans)
    if profile.name != "smoke":
        if duty >= 0.03:
            raise RuntimeError(
                f"cluster collector consumed {duty:.1%} of the collected "
                "run (poll duty cycle); budget is < 3%"
            )
        if ab_overhead >= 0.25:
            raise RuntimeError(
                f"collector-on throughput collapsed: {best_on:.0f} vs "
                f"{best_off:.0f} pkts/s ({ab_overhead:.0%} drop) — "
                "collection work is leaking onto the data plane"
            )
    return result


def _timed_policy(
    profile: BenchProfile, policed: bool
) -> "tuple[float, float, int, int, int]":
    """One stalled-sink run; returns
    ``(elapsed, plane_seconds, actions, breaches, recoveries)``.

    The pipeline is rigged to need the policy: a tiny capacity cut
    produces frames of a handful of packets, and the sink pays a fixed
    cost per *batch* (:class:`~repro.workloads.BatchOverheadSink`), so
    its inbound channel backs up against the watermark.  The ``policed``
    arm scans a ``buffer_occupancy`` SLO at 10 Hz and feeds every
    breach/recover transition through diagnose → PolicyEngine →
    :func:`~repro.observe.policy.apply_action` against the live
    runtime; the control arm just drains the stall at full price.
    ``plane_seconds`` is the entire observe+decide cost: scan seconds
    plus time inside the diagnose/decide/apply hook.
    """
    from repro.observe import (
        SLO,
        HealthEngine,
        PolicyEngine,
        RuntimeObserver,
        apply_action,
        bridge,
    )
    from repro.observe.doctor import diagnose_observer
    from repro.workloads import BatchOverheadSink

    overhead = 0.004 if profile.name == "smoke" else 0.012
    sink = BatchOverheadSink(overhead=overhead)
    graph = StreamProcessingGraph(
        "bench-policy",
        config=NeptuneConfig(
            buffer_capacity=256,
            buffer_max_delay=0.5,
            inbound_high_watermark=16384,
        ),
    )
    graph.add_source("source", lambda: _RelaySource(profile.policy_packets))
    graph.add_processor("relay", _Relay)
    graph.add_processor("sink", lambda: sink)
    graph.link("source", "relay").link("relay", "sink")

    observer = RuntimeObserver(sample_every=0) if policed else None
    engine: "HealthEngine | None" = None
    policy: "PolicyEngine | None" = None
    plane_seconds = 0.0
    breaches = 0
    recoveries = 0
    t0 = time.perf_counter()
    with NeptuneRuntime(observer=observer) as runtime:
        handle = runtime.submit(graph)
        if observer is not None:
            registry = observer.registry
            slo = SLO(
                "sink-backlog",
                "buffer_occupancy",
                threshold=2048.0,
                operator="sink",
                for_scans=2,
                clear_scans=2,
                warmup_scans=1,
            )
            engine = HealthEngine(
                observer,
                [slo],
                scrape=lambda: bridge.scrape_job(registry, handle),
                interval=0.1,
            )
            policy = PolicyEngine()

            def scan_and_decide() -> None:
                nonlocal breaches, recoveries, plane_seconds
                transitions = engine.scan_once()
                if not transitions:
                    return
                breaches += sum(1 for _, k in transitions if k == "breach")
                recoveries += sum(1 for _, k in transitions if k == "recover")
                t_hook = time.perf_counter()
                report = diagnose_observer(observer)
                for action in policy.observe(
                    engine.scans, transitions, report, observer
                ):
                    if action.kind != "migrate":  # single process: nowhere to go
                        apply_action(runtime, action)
                plane_seconds += time.perf_counter() - t_hook

            # Foreground 10 Hz scan loop (the coordinator's on_scan
            # hook, minus the processes).  Progress is polled off the
            # sink's own counter: ``await_completion`` is a one-shot
            # drain (it tears the job down on timeout), not a poll.
            scan_deadline = time.monotonic() + 600
            while sink.seen < profile.policy_packets:
                if handle.failures:
                    raise RuntimeError(f"policy bench job failed: {handle.failures}")
                if time.monotonic() > scan_deadline:
                    raise RuntimeError(
                        f"policy bench stalled at {sink.seen}/"
                        f"{profile.policy_packets} packets"
                    )
                time.sleep(0.1)
                scan_and_decide()
            if not handle.await_completion(timeout=60):
                raise RuntimeError("policy benchmark did not drain")
            # The backlog is gone; a few post-drain scans let the
            # monitor's clear hysteresis observe the recovery.
            for _ in range(3):
                scan_and_decide()
        else:
            if not handle.await_completion(timeout=600):
                raise RuntimeError("policy benchmark did not complete in 600s")
    elapsed = time.perf_counter() - t0
    if sink.seen != profile.policy_packets:
        raise RuntimeError(
            f"policy relay lost packets: {sink.seen}/{profile.policy_packets}"
        )
    if engine is None or policy is None:
        return elapsed, 0.0, 0, 0, 0
    plane_seconds += engine.scan_seconds
    return elapsed, plane_seconds, len(policy.decisions), breaches, recoveries


def scenario_policy(profile: BenchProfile) -> BenchResult:
    """Stalled-sink heal: breach → retune → drain, policy-on vs -off.

    Three verdicts on non-smoke tiers:

    - the engine must have *acted* (≥1 retune) off a real breach;
    - ``heal_speedup`` (policy-off wall / policy-on wall) must be
      ≥ 1.25 — the retune visibly beats draining the stall at full
      per-batch price, the scenario's whole point;
    - ``plane_duty_frac`` — (scan + diagnose + decide + apply) seconds
      over the healed run's wall time — must stay < 3%, the same duty
      budget as the ``health`` and ``collector`` planes.

    The smoke tier runs the machinery but skips the gates: its run is
    too short for the breach hysteresis to reliably fire at all.
    """
    result = BenchResult("policy")
    t_on, plane_seconds, actions, breaches, recoveries = _timed_policy(
        profile, policed=True
    )
    t_off, _, _, _, _ = _timed_policy(profile, policed=False)
    duty = plane_seconds / t_on if t_on else 0.0
    speedup = t_off / t_on if t_on else 0.0
    result.metrics["drain_sec_policy_off"] = t_off
    result.metrics["drain_sec_policy_on"] = t_on
    result.metrics["heal_speedup"] = speedup
    result.metrics["plane_duty_frac"] = duty
    result.metrics["policy_actions"] = float(actions)
    result.metrics["slo_breaches"] = float(breaches)
    result.metrics["slo_recoveries"] = float(recoveries)
    if profile.name != "smoke":
        if actions < 1 or breaches < 1:
            raise RuntimeError(
                f"policy never closed the loop: {breaches} breach(es), "
                f"{actions} action(s) — the stall must trip the SLO and "
                "the doctor must attribute it"
            )
        if speedup < 1.25:
            raise RuntimeError(
                f"policy heal is not paying for itself: {t_on:.2f}s healed vs "
                f"{t_off:.2f}s stalled ({speedup:.2f}x; floor is 1.25x)"
            )
        if duty >= 0.03:
            raise RuntimeError(
                f"policy plane consumed {duty:.1%} of the healed run "
                "(scan + diagnose + decide duty); budget is < 3%"
            )
    return result


def _cluster_rate(profile: BenchProfile, n_workers: int) -> float:
    """Aggregate relay throughput of one ``n_workers``-process cluster.

    The rate is measured between metric samples (first sample past 10%
    of the total to the completion sample), not launch-to-drain wall
    time, so interpreter spawn cost — which grows with the worker
    count — does not bias the scale-up ratio.
    """
    from repro.cluster import ClusterCoordinator
    from repro.core.graph import descriptor_factory

    total = profile.cluster_packets
    graph = StreamProcessingGraph(
        "bench-cluster",
        config=NeptuneConfig(buffer_capacity=4096, buffer_max_delay=0.005),
    )
    graph.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:CountingSource", total=total, payload_size=32
        ),
    )
    graph.add_processor(
        "service",
        descriptor_factory(
            "repro.workloads.operators:ExclusiveServiceProcessor",
            service_time=profile.cluster_service_time,
        ),
        parallelism=4,
    )
    graph.add_processor(
        "sink", descriptor_factory("repro.workloads.operators:CollectingSink")
    )
    graph.link("source", "service").link("service", "sink")

    coordinator = ClusterCoordinator(graph, n_workers=n_workers)
    samples: list[tuple[float, float]] = []
    try:
        job = coordinator.launch(connect_timeout=120)
        deadline = time.monotonic() + 300
        while True:
            count = float(job.metrics().get("sink", {}).get("packets_in", 0))
            samples.append((time.monotonic(), count))
            if count >= total:
                break
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"cluster bench stalled at {count}/{total} packets "
                    f"({n_workers} workers)"
                )
            time.sleep(0.03)
        if not coordinator.await_completion(timeout=120):
            raise RuntimeError(f"cluster bench drain failed ({n_workers} workers)")
        final = coordinator.metrics()["sink"]["packets_in"]
        if final != total:
            raise RuntimeError(f"cluster bench lost packets: {final}/{total}")
    finally:
        coordinator.terminate()
    anchor = next((s for s in samples if s[1] >= total * 0.1), samples[0])
    t_end, c_end = samples[-1]
    if c_end > anchor[1] and t_end > anchor[0]:
        return (c_end - anchor[1]) / (t_end - anchor[0])
    return c_end / max(t_end - samples[0][0], 1e-9)


def scenario_cluster_scaling(profile: BenchProfile) -> BenchResult:
    """Aggregate relay throughput vs worker-process count.

    The service stage holds a per-process exclusive lock while serving
    each packet (:class:`~repro.workloads.operators
    .ExclusiveServiceProcessor`) — a portable model of GIL-bound work,
    so the measured scale-up tracks process-level parallelism rather
    than core count and is stable across 1-core dev containers and
    multi-core CI runners.  ``relay_pps_wN`` rates are sleep-bound, not
    CPU-bound, hence recorded unguarded (calibration normalization
    would be meaningless); the ``scaleup_wN`` ratio is the guarded
    acceptance metric (≥2.5× at 4 workers).
    """
    result = BenchResult("cluster_scaling")
    rates: dict[int, float] = {}
    for n_workers in profile.cluster_worker_counts:
        rates[n_workers] = _cluster_rate(profile, n_workers)
        result.metrics[f"relay_pps_w{n_workers}"] = rates[n_workers]
    if len(rates) >= 2:
        low = min(rates)
        high = max(rates)
        scaleup = rates[high] / max(rates[low], 1e-9)
        result.metrics[f"scaleup_w{high}"] = scaleup
        result.metrics["packets"] = float(profile.cluster_packets)
        if high >= 4 and low == 1 and scaleup < 2.5:
            raise RuntimeError(
                f"cluster scale-up collapsed: {rates[high]:.0f} pkts/s at "
                f"{high} workers vs {rates[low]:.0f} at {low} "
                f"({scaleup:.2f}x; acceptance floor is 2.5x)"
            )
    return result


def run_scenarios(profile: BenchProfile) -> list[BenchResult]:
    """Run every pinned scenario under ``profile`` in a fixed order."""
    results = [
        scenario_codec(profile),
        scenario_buffer(profile),
        scenario_relay(profile),
        scenario_health(profile),
        scenario_collector(profile),
        scenario_policy(profile),
    ]
    if profile.cluster_worker_counts:
        results.append(scenario_cluster_scaling(profile))
    return results
