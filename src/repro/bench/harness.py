"""Benchmark profiles, timing loops, and machine calibration.

Raw throughput numbers are only comparable on the machine that produced
them, so every report carries a :func:`calibration_score`: the speed of
a fixed pure-Python reference loop on the same interpreter, measured in
the same run.  The regression checker compares *calibration-normalized*
throughputs, which absorbs machine-speed differences between the
developer laptop that produced the checked-in baseline and the CI
runner that validates against it.  Algorithmic speedup ratios
(compiled vs per-field codec) need no normalization and are compared
directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass(frozen=True)
class BenchProfile:
    """Pinned workload sizes for one benchmark tier.

    ``smoke`` exists for tests (sub-second end to end), ``quick`` is the
    CI tier, ``full`` is for deliberate local measurement sessions.
    """

    name: str
    #: Messages per codec timing repetition.
    codec_messages: int
    #: Timing repetitions (best-of, the standard low-noise estimator).
    codec_repeats: int
    #: Appends driven through the StreamBuffer flush scenario.
    buffer_appends: int
    #: Packets pushed through the end-to-end relay pipeline.
    relay_packets: int
    #: StreamBuffer.max_delay bound used (and checked) by the relay.
    relay_max_delay: float
    #: Packets pushed through each multi-process cluster run; 0 (the
    #: smoke tier) skips the scenario — process spawning is banned from
    #: tier-1 test runs.
    cluster_packets: int = 0
    #: Per-packet exclusive service time modelling GIL-bound work (see
    #: ``ExclusiveServiceProcessor``).
    cluster_service_time: float = 0.001
    #: Worker-process counts to measure; the scale-up ratio is taken
    #: between the largest and smallest entry.
    cluster_worker_counts: tuple[int, ...] = ()
    #: Packets pushed through the ``policy`` self-healing scenario's
    #: stalled pipeline (kept small: every pre-heal frame pays the
    #: sink's fixed batch overhead, so this bounds the control arm).
    policy_packets: int = 600


PROFILES: dict[str, BenchProfile] = {
    "smoke": BenchProfile("smoke", 2_000, 1, 4_000, 2_000, 0.005),
    "quick": BenchProfile(
        "quick", 20_000, 3, 100_000, 40_000, 0.005, 2_400, 0.002, (1, 4), 6_000
    ),
    "full": BenchProfile(
        "full", 100_000, 5, 400_000, 150_000, 0.005, 6_000, 0.002, (1, 2, 4), 12_000
    ),
}


@dataclass
class BenchResult:
    """One scenario's named metrics (flat ``str -> float`` map)."""

    name: str
    metrics: dict[str, float] = field(default_factory=dict)


def best_rate(fn: Callable[[], int], repeats: int) -> float:
    """Best items-per-second over ``repeats`` runs of ``fn``.

    ``fn`` returns the number of items it processed.  Best-of measures
    the code, not the scheduler noise around it.
    """
    best = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        n = fn()
        dt = time.perf_counter() - t0
        if dt > 0 and n / dt > best:
            best = n / dt
    return best


def calibration_score(loops: int = 200_000) -> float:
    """Iterations/sec of a fixed pure-Python reference loop.

    The loop is frozen: changing it invalidates every checked-in
    baseline, so treat it like a wire format.
    """
    acc = 0
    t0 = time.perf_counter()
    for i in range(loops):
        acc += (i ^ (i >> 3)) & 0xFF
    dt = time.perf_counter() - t0
    if acc < 0:  # pragma: no cover — keeps the loop observable
        raise AssertionError("unreachable")
    return loops / dt if dt > 0 else float("inf")


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]
