"""The ``neptune-bench/1`` JSON report and its regression checker.

Report shape (see DESIGN.md §10)::

    {
      "schema": "neptune-bench/1",
      "profile": "quick",
      "calibration_score": 2.4e7,        # reference-loop iters/sec
      "scenarios": {
        "codec":  {"encode_compiled_msgs_per_sec": ..., ...},
        "buffer": {"appends_per_sec": ..., ...},
        "relay":  {"packets_per_sec": ..., "p99_latency_sec": ..., ...}
      }
    }

``check_regression`` compares calibration-normalized throughputs (so a
baseline produced on a fast laptop is still meaningful on a slow CI
runner) and raw speedup ratios, failing any metric that dropped more
than ``tolerance`` below the baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.bench.harness import BenchResult

BENCH_SCHEMA = "neptune-bench/1"

#: Throughput metrics under the CI guardrail, compared after dividing
#: by the report's calibration score (machine-speed normalization).
GUARDED_THROUGHPUT: tuple[tuple[str, str], ...] = (
    ("codec", "encode_compiled_msgs_per_sec"),
    ("codec", "decode_compiled_msgs_per_sec"),
    ("buffer", "appends_per_sec"),
    ("relay", "packets_per_sec"),
)

#: Dimensionless ratios under the guardrail, compared directly.
GUARDED_RATIOS: tuple[tuple[str, str], ...] = (
    ("codec", "encode_speedup"),
    ("codec", "decode_speedup"),
    ("cluster_scaling", "scaleup_w4"),
    ("policy", "heal_speedup"),
)


def build_report(
    results: list[BenchResult], profile: str, calibration: float
) -> dict[str, Any]:
    """Assemble the ``neptune-bench/1`` report dict."""
    return {
        "schema": BENCH_SCHEMA,
        "profile": profile,
        "calibration_score": calibration,
        "scenarios": {r.name: dict(sorted(r.metrics.items())) for r in results},
    }


def write_report(report: dict[str, Any], path: str | Path) -> None:
    """Write ``report`` as stable, diff-friendly JSON."""
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: str | Path) -> dict[str, Any]:
    """Load and minimally validate a benchmark report."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} report")
    return data


def _metric(report: dict[str, Any], scenario: str, metric: str) -> float | None:
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict):
        return None
    value = scenarios.get(scenario, {}).get(metric)
    return float(value) if isinstance(value, (int, float)) else None


def check_regression(
    current: dict[str, Any], baseline: dict[str, Any], tolerance: float = 0.10
) -> list[str]:
    """Return one failure line per guarded metric that regressed.

    A throughput metric regresses when its calibration-normalized value
    falls more than ``tolerance`` below the baseline's; a ratio metric
    when its raw value does.  A guarded metric missing from ``current``
    is itself a failure (a scenario silently vanishing must not pass).
    """
    failures: list[str] = []
    cur_cal = float(current.get("calibration_score", 0.0)) or 1.0
    base_cal = float(baseline.get("calibration_score", 0.0)) or 1.0
    checks: list[tuple[str, str, float, float]] = []
    for scenario, metric in GUARDED_THROUGHPUT:
        base = _metric(baseline, scenario, metric)
        cur = _metric(current, scenario, metric)
        if base is None:
            continue  # baseline predates the metric: nothing to hold
        if cur is None:
            failures.append(f"{scenario}.{metric}: missing from current run")
            continue
        checks.append((scenario, metric, cur / cur_cal, base / base_cal))
    for scenario, metric in GUARDED_RATIOS:
        base = _metric(baseline, scenario, metric)
        cur = _metric(current, scenario, metric)
        if base is None:
            continue
        if cur is None:
            failures.append(f"{scenario}.{metric}: missing from current run")
            continue
        checks.append((scenario, metric, cur, base))
    for scenario, metric, cur_norm, base_norm in checks:
        floor = base_norm * (1.0 - tolerance)
        if cur_norm < floor:
            drop = 100.0 * (1.0 - cur_norm / base_norm) if base_norm else 0.0
            failures.append(
                f"{scenario}.{metric}: {drop:.1f}% below baseline "
                f"(normalized {cur_norm:.4g} < floor {floor:.4g})"
            )
    return failures
