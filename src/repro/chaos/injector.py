"""Runtime fault injection and trace recording.

A :class:`FaultInjector` is threaded through the hook points (transport
send/receive, channel put, simulator events).  Each hook calls
:meth:`FaultInjector.intercept` with its site name; the injector bumps
the site's interception counter, consults the :class:`FaultPlan`, and
records every fired fault in its :class:`FaultTrace`.

The trace is the reproducibility artifact: its byte serialization
(:meth:`FaultTrace.to_bytes`) and digest (:meth:`FaultTrace.digest`)
are identical across runs with the same plan, because decisions depend
only on ``(seed, site, index)`` and hook sites intercept in a
deterministic per-site order (each site's interceptions are serialized
by the owning component: a transport's send lock, a listener's reader
loop, the simulator's event loop).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.chaos.plan import FaultAction, FaultDecision, FaultPlan
from repro.lz4 import xxh32


@dataclass(frozen=True)
class TraceRecord:
    """One fired fault, as recorded in the trace."""

    site: str
    index: int
    action: str
    param: float

    def to_line(self) -> str:
        """Canonical single-line form (stable across runs/processes)."""
        return f"{self.site} {self.index} {self.action} {self.param!r}"


class FaultTrace:
    """Append-only record of every fault an injector fired."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        self._lock = threading.Lock()

    def append(self, record: TraceRecord) -> None:
        """Record one fired fault (thread-safe)."""
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> list[TraceRecord]:
        """Snapshot of all records so far."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def to_bytes(self) -> bytes:
        """Canonical byte serialization (sorted: order within a site is
        deterministic; interleaving *across* independently-threaded
        sites is not, so the canonical form sorts by site then index)."""
        lines = sorted(r.to_line() for r in self.records)
        return ("\n".join(lines) + ("\n" if lines else "")).encode()

    def digest(self) -> int:
        """xxh32 over the canonical serialization."""
        return xxh32(self.to_bytes())


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at hook points and records a trace.

    One injector per scenario; it may be shared by any number of
    components.  Per-site counters are independent, so adding a new
    hook site never perturbs decisions at existing sites.

    Parameters
    ----------
    plan:
        The deterministic fault plan.
    sleep:
        Injected sleep function for ``delay`` faults (tests substitute
        a no-op to keep suites fast while still tracing the decision).
    observer:
        Optional :class:`~repro.observe.observer.RuntimeObserver`
        (duck-typed — anything with ``event(category, name, **attrs)``).
        Every fired fault is mirrored onto its timeline as a
        ``chaos.fault_injected`` event; node kills additionally record
        ``chaos.node_killed``.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
        observer: Any = None,
    ) -> None:
        self.plan = plan
        self.trace = FaultTrace()
        self._sleep = sleep
        self._observer = observer
        self._counters: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- core -----------------------------------------------------------------
    def intercept(self, site: str) -> FaultDecision | None:
        """Evaluate the next interception at ``site``; record any fault."""
        with self._lock:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
        decision = self.plan.decide(site, index)
        if decision is not None:
            self.trace.append(
                TraceRecord(decision.site, decision.index, decision.action, decision.param)
            )
            if self._observer is not None:
                self._observer.event(
                    "chaos",
                    "fault_injected",
                    site=decision.site,
                    index=decision.index,
                    action=decision.action,
                    param=decision.param,
                )
        return decision

    def interceptions(self, site: str) -> int:
        """How many times ``site`` has been intercepted so far."""
        with self._lock:
            return self._counters.get(site, 0)

    # -- hook helpers -------------------------------------------------------
    def maybe_delay(self, site: str) -> FaultDecision | None:
        """Channel-style hook: only ``delay`` faults apply; others are
        traced but have no effect at this site."""
        decision = self.intercept(site)
        if decision is not None and decision.action == FaultAction.DELAY:
            self._sleep(decision.param)
        return decision

    def apply_to_wire(
        self, site: str, wire: bytes
    ) -> tuple[list[bytes], bool, FaultDecision | None]:
        """Transport-send hook: mutate one outgoing wire frame.

        Returns ``(chunks, kill_after, decision)``: the byte chunks to
        actually write (possibly empty, mutated, or doubled) and
        whether the connection must be severed after writing them.
        """
        decision = self.intercept(site)
        if decision is None:
            return [wire], False, None
        action = decision.action
        if action == FaultAction.DROP:
            return [], False, decision
        if action == FaultAction.DELAY:
            self._sleep(decision.param)
            return [wire], False, decision
        if action == FaultAction.DUPLICATE:
            return [wire, wire], False, decision
        if action == FaultAction.TRUNCATE:
            cut = max(1, min(len(wire) - 1, int(len(wire) * decision.param)))
            return [wire[:cut]], True, decision
        if action == FaultAction.BITFLIP:
            mutated = bytearray(wire)
            bit = int(decision.param * len(mutated) * 8) % (len(mutated) * 8)
            mutated[bit // 8] ^= 1 << (bit % 8)
            return [bytes(mutated)], False, decision
        if action == FaultAction.KILL_CONNECTION:
            return [wire], True, decision
        # Node-level actions are meaningless for a single wire frame;
        # trace-only (the decision was already recorded).
        return [wire], False, decision

    def should_kill_connection(self, site: str) -> bool:
        """Receive-side hook: sever the connection at this interception?

        ``delay`` faults sleep in place; only ``kill_connection`` (and
        ``truncate``, which has no payload to cut here) report True.
        """
        decision = self.intercept(site)
        if decision is None:
            return False
        if decision.action == FaultAction.DELAY:
            self._sleep(decision.param)
            return False
        return decision.action in (FaultAction.KILL_CONNECTION, FaultAction.TRUNCATE)

    def should_kill_node(self, site: str) -> bool:
        """Operator/node hook: crash at this interception?"""
        decision = self.intercept(site)
        killed = decision is not None and decision.action == FaultAction.KILL_NODE
        if killed and self._observer is not None:
            self._observer.event("chaos", "node_killed", site=site)
        return killed
