"""Checkpoint-based job supervision and replay recovery.

The transport layer heals *link* failures in place (reconnect +
replay); a *node* kill — an operator instance crashing mid-stream —
needs coarser machinery: restore the job from its last consistent
checkpoint and replay the sources from their checkpointed positions.
:class:`RecoveryCoordinator` packages that loop:

1. a background thread takes a quiesced checkpoint of the supervised
   job every ``checkpoint_interval`` seconds into a
   :class:`~repro.core.checkpoint.CheckpointStore`;
2. when the job fails (any operator-instance exception, including an
   injected ``kill_node`` fault or an exhausted transport retry budget
   surfaced via :meth:`NeptuneRuntime.notify_link_failure`), the
   coordinator stops the wreck and resubmits the graph with
   ``restore_from=<last checkpoint>``;
3. because quiesced checkpoints are consistent cuts (sources paused,
   pipeline drained) and sources implement
   :class:`~repro.core.checkpoint.ReplayableSource`, the restored run
   re-emits exactly the packets after the cut: zero lost, zero
   duplicated in the recovered operator state.

The coordinator is deliberately runtime-agnostic glue: it only uses
the public ``submit / checkpoint / failures / await_completion`` API.
"""

from __future__ import annotations

import threading
import time

from repro.core.checkpoint import Checkpoint, CheckpointStore
from repro.util.errors import JobStateError


class RecoveryCoordinator:
    """Supervises one job: periodic checkpoints + restore-on-failure.

    Parameters
    ----------
    runtime:
        A :class:`~repro.core.runtime.NeptuneRuntime`.
    graph:
        The graph to run (resubmitted verbatim on recovery).
    store:
        Checkpoint store; defaults to a fresh in-memory store.
    checkpoint_interval:
        Seconds between quiesced checkpoints.
    max_restarts:
        Recovery budget; exceeding it surfaces the last failure set.
    """

    def __init__(
        self,
        runtime,
        graph,
        store: CheckpointStore | None = None,
        checkpoint_interval: float = 0.5,
        max_restarts: int = 3,
    ) -> None:
        self.runtime = runtime
        self.graph = graph
        self.store = store if store is not None else CheckpointStore()
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = max_restarts
        self.handle = None
        self.restarts = 0
        self.last_failures: dict[str, BaseException] = {}
        self._stop = threading.Event()
        self._ckpt_thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        """Submit the job and start the checkpoint thread."""
        if self.handle is not None:
            raise JobStateError("coordinator already started")
        self.handle = self.runtime.submit(self.graph)
        self._ckpt_thread = threading.Thread(
            target=self._checkpoint_loop, name="neptune-recovery-checkpoint", daemon=True
        )
        self._ckpt_thread.start()
        return self.handle

    def _checkpoint_loop(self) -> None:
        while not self._stop.wait(self.checkpoint_interval):
            handle = self.handle
            if handle is None:
                continue
            try:
                if handle.failures:
                    continue  # recovery (not checkpointing) is due
                ckpt = handle.checkpoint(quiesce=True, timeout=10.0)
                self.store.put(ckpt)
            except Exception:
                # A checkpoint racing a crash/drain may legitimately
                # fail; the supervisor loop handles the job state.
                continue

    # -- supervision --------------------------------------------------------
    def run_to_completion(self, timeout: float = 60.0) -> bool:
        """Drive the job to natural completion, recovering on failure.

        Returns True when the job drained cleanly (possibly after
        recoveries); False on timeout or exhausted restart budget (the
        failures are in :attr:`last_failures`).
        """
        deadline = time.monotonic() + timeout
        try:
            while time.monotonic() < deadline:
                remaining = deadline - time.monotonic()
                failures = self.handle.failures
                if failures:
                    if not self._recover(failures):
                        return False
                    continue
                # Probe completion in short slices so a failure during
                # the drain is still noticed and recovered from.
                if self.handle.await_completion(timeout=min(0.25, remaining)):
                    if self.handle.failures:
                        if not self._recover(self.handle.failures):
                            return False
                        continue
                    return True
            return False
        finally:
            self._stop.set()

    def _recover(self, failures: dict[str, BaseException]) -> bool:
        """Restore from the last checkpoint; False when out of budget."""
        self.last_failures = dict(failures)
        if self.restarts >= self.max_restarts:
            return False
        self.restarts += 1
        try:
            self.handle.stop(timeout=5.0)
        except Exception:
            pass  # the job is already a wreck; teardown is best-effort
        ckpt = self.store.latest(self.graph.name)
        self.handle = self.runtime.submit(self.graph, restore_from=ckpt)
        return True

    def latest_checkpoint(self) -> Checkpoint | None:
        """Most recent stored checkpoint for the supervised job."""
        return self.store.latest(self.graph.name)

    def stop(self) -> None:
        """Stop the checkpoint thread (the job is left to its handle)."""
        self._stop.set()
        if self._ckpt_thread is not None:
            self._ckpt_thread.join(5.0)
