"""Node-kill and link-partition events for the discrete-event simulator.

The real runtime's chaos hooks (transport/channel) exercise the
*implementation*; these exercise the *models* in :mod:`repro.sim`, so
failure-mode experiments (what does a 30-second node outage do to
end-to-end latency?) run deterministically on the simulator's virtual
clock.

A :class:`SimFault` is an absolute-time event against a named target:

- ``kill_node`` — interrupt the target's processes with
  :class:`~repro.sim.engine.Interrupt` (cause ``"chaos:kill"``); model
  code catches the interrupt to implement crash/restart behaviour.
- ``partition`` / ``heal`` — toggle a named link; the target is any
  object with a ``set_partitioned(bool)`` method or a plain
  ``callable(bool)``.

:func:`schedule_sim_faults` registers everything up front, so the
schedule is part of the simulation's deterministic event order.  Fired
events are recorded in the injector's trace (sites ``sim.node`` /
``sim.link``) when an injector is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.chaos.plan import FaultAction
from repro.chaos.injector import FaultInjector, TraceRecord
from repro.sim.engine import Process, Simulator

#: Interrupt cause carried into killed processes.
KILL_CAUSE = "chaos:kill"


@dataclass(frozen=True)
class SimFault:
    """One scheduled simulator fault."""

    at: float
    action: str  # FaultAction.KILL_NODE | PARTITION | HEAL
    target: str

    def __post_init__(self) -> None:
        if self.action not in (
            FaultAction.KILL_NODE,
            FaultAction.PARTITION,
            FaultAction.HEAL,
        ):
            raise ValueError(
                f"simulator faults support kill_node/partition/heal, not {self.action!r}"
            )
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0: {self.at}")


def _set_partitioned(link: Any, up: bool) -> None:
    if callable(link) and not hasattr(link, "set_partitioned"):
        link(up)
    else:
        link.set_partitioned(up)


def schedule_sim_faults(
    sim: Simulator,
    faults: Iterable[SimFault],
    processes: Mapping[str, Process | list[Process]] | None = None,
    links: Mapping[str, Any] | None = None,
    injector: FaultInjector | None = None,
    on_fire: Callable[[SimFault], None] | None = None,
    observer: Any = None,
) -> list[SimFault]:
    """Register ``faults`` on the simulator's event heap.

    ``processes`` maps node names to the process(es) a ``kill_node``
    interrupts; ``links`` maps link names to partitionable objects.
    Targets missing from the maps raise ``KeyError`` immediately —
    a silently ignored fault would falsify the scenario.

    When an ``observer`` (duck-typed
    :class:`~repro.observe.observer.RuntimeObserver`) is supplied, each
    fault records a timeline event *at fire time*: ``chaos.node_killed``
    for kills, ``chaos.link_partitioned`` / ``chaos.link_healed`` for
    link toggles, each carrying the virtual fire time in ``sim_time``.

    Returns the faults sorted by fire time (the deterministic order in
    which they will trigger).
    """
    processes = processes or {}
    links = links or {}
    ordered = sorted(faults, key=lambda f: (f.at, f.action, f.target))
    for idx, fault in enumerate(ordered):
        if fault.action == FaultAction.KILL_NODE:
            victims = processes[fault.target]
            victim_list = victims if isinstance(victims, list) else [victims]
            for proc in victim_list:
                sim.schedule_interrupt(fault.at, proc, KILL_CAUSE)
        else:
            link = links[fault.target]
            up = fault.action == FaultAction.PARTITION

            def fire(link=link, up=up):
                _set_partitioned(link, up)

            sim.call_at(fault.at, fire)
        if injector is not None:
            site = (
                "sim.node" if fault.action == FaultAction.KILL_NODE else "sim.link"
            )
            injector.trace.append(TraceRecord(site, idx, fault.action, fault.at))
        if observer is not None:
            if fault.action == FaultAction.KILL_NODE:
                name = "node_killed"
            elif fault.action == FaultAction.PARTITION:
                name = "link_partitioned"
            else:
                name = "link_healed"

            def record(f=fault, name=name):
                observer.event("chaos", name, target=f.target, sim_time=f.at)

            sim.call_at(fault.at, record)
        if on_fire is not None:
            sim.call_at(fault.at, lambda f=fault: on_fire(f))
    return ordered
