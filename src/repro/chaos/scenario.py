"""Canned chaos scenarios: the CLI's and the test-suite's shared driver.

Two scenario shapes, both seeded and reproducible:

- :func:`run_wire_scenario` — a raw :class:`TcpTransport` →
  :class:`TcpListener` link under an injected fault plan.  Every frame
  carries a payload derived from its ``(link, seq)``, so the receiver
  can verify not just exactly-once *delivery* but byte-exact *content*
  after drops, duplicates, truncations, bit flips, and connection
  kills have been healed by the recovery protocol.  Fault decisions
  depend only on ``(seed, site, index)`` and send-side interceptions
  happen in send order, so the fault trace is byte-identical across
  runs with the same seed — the determinism regression anchor.
- :func:`run_pipeline_scenario` — a full two-resource NEPTUNE pipeline
  (source → relay → sink across :class:`DistributedJob` workers) with
  scripted mid-stream connection kills.  The acceptance check for the
  recovery machinery: the sink must observe every sequence number
  exactly once, in order, despite sockets dying under it.

Receive-side (``tcp.recv.*``) faults intercept per received *chunk*;
chunk boundaries depend on kernel scheduling, so rate plans targeting
those sites still heal correctly but are not trace-deterministic.
The determinism guarantee is for send-side and scripted plans.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultAction, FaultPlan, FaultRates
from repro.lz4 import xxh32
from repro.net.framing import Frame
from repro.net.transport import RetryPolicy, TcpListener, TcpTransport


def wire_payload(link_id: int, seq: int, size: int) -> bytes:
    """Deterministic, content-checkable payload for (link, seq)."""
    stamp = xxh32(f"{link_id}:{seq}".encode()).to_bytes(4, "little")
    reps = size // 4 + 1
    return (stamp * reps)[:size]


@dataclass
class WireScenarioResult:
    """Outcome of one :func:`run_wire_scenario` run."""

    seed: int
    frames_sent: int
    delivered: int
    #: (link, seq) pairs never delivered / delivered more than once /
    #: delivered with the wrong bytes.
    lost: list = field(default_factory=list)
    duplicated: list = field(default_factory=list)
    corrupted: list = field(default_factory=list)
    #: Recovery observability.
    reconnects: int = 0
    replayed_frames: int = 0
    duplicates_suppressed: int = 0
    gap_resets: int = 0
    corruption_resets: int = 0
    injected_resets: int = 0
    trace_lines: list = field(default_factory=list)
    trace_digest: int = 0

    @property
    def exactly_once(self) -> bool:
        """Every frame delivered exactly once with correct bytes."""
        return (
            self.delivered == self.frames_sent
            and not self.lost
            and not self.duplicated
            and not self.corrupted
        )

    def summary(self) -> str:
        """Multi-line human-readable report."""
        verdict = "EXACTLY-ONCE" if self.exactly_once else "VIOLATION"
        lines = [
            f"wire scenario seed={self.seed}: {verdict}",
            f"  frames: sent={self.frames_sent} delivered={self.delivered} "
            f"lost={len(self.lost)} duplicated={len(self.duplicated)} "
            f"corrupted={len(self.corrupted)}",
            f"  recovery: reconnects={self.reconnects} "
            f"replayed={self.replayed_frames} "
            f"dup_suppressed={self.duplicates_suppressed} "
            f"gap_resets={self.gap_resets} "
            f"corruption_resets={self.corruption_resets} "
            f"injected_resets={self.injected_resets}",
            f"  faults fired: {len(self.trace_lines)} "
            f"(trace digest {self.trace_digest:#010x})",
        ]
        return "\n".join(lines)


def run_wire_scenario(
    seed: int = 0,
    frames: int = 60,
    payload_size: int = 256,
    links: int = 2,
    rates: FaultRates | None = None,
    plan: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    drain_timeout: float = 15.0,
    observer=None,
) -> WireScenarioResult:
    """Drive one faulty TCP link to completion and audit delivery.

    ``plan`` overrides ``rates``; with neither, a default mixed plan
    (drop/duplicate/truncate/bitflip/kill at a few percent each) is
    derived from ``seed``.  Sends round-robin across ``links`` link
    ids so multi-link replay-window pruning is exercised too.
    """
    if plan is None:
        if rates is None:
            rates = FaultRates(
                drop=0.04,
                duplicate=0.04,
                truncate=0.03,
                bitflip=0.03,
                kill_connection=0.03,
            )
        plan = FaultPlan(seed=seed).with_rates("tcp.send", rates)
    if retry is None:
        retry = RetryPolicy(
            max_retries=8, backoff_base=0.01, backoff_max=0.2, seed=seed
        )
    injector = FaultInjector(plan, observer=observer)

    received: list[Frame] = []
    recv_lock = threading.Lock()

    def sink(frame: Frame) -> None:
        with recv_lock:
            received.append(frame)

    listener = TcpListener(
        "127.0.0.1", 0, sink, ack=True, resume=True, injector=injector
    )
    transport = TcpTransport(
        listener.host,
        listener.port,
        retry=retry,
        injector=injector,
        site="tcp.send",
    )
    try:
        for i in range(frames):
            link_id = 1 + (i % links)
            seq_for_link = i // links
            transport.send(link_id, wire_payload(link_id, seq_for_link, payload_size), 1)
        # Frames still unacked after the drain are lost; the audit
        # below names them.
        transport.ensure_delivered(timeout=drain_timeout, stall=0.25)
        result = WireScenarioResult(seed=seed, frames_sent=frames, delivered=0)
    finally:
        transport.close()
        listener.close()

    # -- audit ------------------------------------------------------------
    seen: dict[tuple[int, int], int] = {}
    with recv_lock:
        for frame in received:
            key = (frame.link_id, frame.seq)
            seen[key] = seen.get(key, 0) + 1
            expected = wire_payload(frame.link_id, frame.seq, payload_size)
            if frame.body != expected and key not in result.corrupted:
                result.corrupted.append(key)
    for i in range(frames):
        key = (1 + (i % links), i // links)
        count = seen.get(key, 0)
        if count == 0:
            result.lost.append(key)
        elif count > 1:
            result.duplicated.append(key)
    result.delivered = len(seen)
    result.reconnects = transport.reconnects
    result.replayed_frames = transport.replayed_frames
    result.duplicates_suppressed = listener.duplicates_suppressed
    result.gap_resets = listener.gap_resets
    result.corruption_resets = listener.corruption_resets
    result.injected_resets = listener.injected_resets
    result.trace_lines = [r.to_line() for r in injector.trace.records]
    result.trace_digest = injector.trace.digest()
    return result


@dataclass
class PipelineScenarioResult:
    """Outcome of one :func:`run_pipeline_scenario` run."""

    seed: int
    total: int
    received: list = field(default_factory=list)
    drained: bool = False
    failures: dict = field(default_factory=dict)
    reconnects: int = 0
    replayed_frames: int = 0
    duplicates_suppressed: int = 0
    trace_lines: list = field(default_factory=list)
    trace_digest: int = 0

    @property
    def exactly_once(self) -> bool:
        """The sink saw 0..total-1 exactly once, in order."""
        return (
            self.drained
            and not self.failures
            and self.received == list(range(self.total))
        )

    def summary(self) -> str:
        """Multi-line human-readable report."""
        verdict = "EXACTLY-ONCE" if self.exactly_once else "VIOLATION"
        missing = self.total - len(set(self.received))
        dupes = len(self.received) - len(set(self.received))
        lines = [
            f"pipeline scenario seed={self.seed}: {verdict}",
            f"  packets: expected={self.total} received={len(self.received)} "
            f"missing={missing} duplicated={dupes} "
            f"in_order={self.received == sorted(self.received)}",
            f"  recovery: reconnects={self.reconnects} "
            f"replayed={self.replayed_frames} "
            f"dup_suppressed={self.duplicates_suppressed} "
            f"drained={self.drained} failures={len(self.failures)}",
            f"  faults fired: {len(self.trace_lines)} "
            f"(trace digest {self.trace_digest:#010x})",
        ]
        return "\n".join(lines)


def run_pipeline_scenario(
    seed: int = 0,
    total: int = 800,
    kill_frames: tuple = (3, 9),
    n_workers: int = 2,
    timeout: float = 60.0,
    observer=None,
) -> PipelineScenarioResult:
    """Run a two-resource relay pipeline with mid-stream socket kills.

    The graph is the paper's Fig. 1 relay (source → relay → sink)
    deployed across ``n_workers`` resources over real TCP.  For every
    cross-worker direction, the ``kill_frames``-th outgoing frames are
    scripted ``kill_connection`` faults; recovery must reconnect and
    replay so the sink still observes every packet exactly once.

    Buffers are sized so flushes are capacity-triggered (the flush
    timer is effectively disabled), making frame counts — and hence
    the fault trace — deterministic for a given (total, seed).
    """
    from repro.core import NeptuneConfig, StreamProcessingGraph
    from repro.core.distributed import DistributedJob
    from repro.workloads import CollectingSink, CountingSource, RelayProcessor

    plan = FaultPlan(seed=seed)
    for src in range(n_workers):
        for dst in range(n_workers):
            if src == dst:
                continue
            site = f"tcp.send.w{src}->w{dst}"
            for idx in kill_frames:
                plan.at(site, idx, FaultAction.KILL_CONNECTION)
    injector = FaultInjector(plan, observer=observer)

    store: list = []
    cfg = NeptuneConfig(
        buffer_capacity=2048,
        buffer_max_delay=30.0,  # capacity-only flushes: deterministic framing
        transport_backoff_base=0.01,
        transport_backoff_max=0.2,
        fault_seed=seed,
    )
    g = StreamProcessingGraph(f"chaos-relay-{seed}", config=cfg)
    g.add_source("sender", lambda: CountingSource(total=total))
    g.add_processor("relay", RelayProcessor)
    g.add_processor("receiver", lambda: CollectingSink(store))
    g.link("sender", "relay").link("relay", "receiver")

    job = DistributedJob(g, n_workers=n_workers, injector=injector, observer=observer)
    job.start()
    drained = job.await_completion(timeout=timeout)
    failures = job.failures()

    result = PipelineScenarioResult(
        seed=seed,
        total=total,
        received=list(store),
        drained=drained,
        failures=failures,
    )
    for w in job.workers:
        for t in w._transports.values():
            result.reconnects += t.reconnects
            result.replayed_frames += t.replayed_frames
        result.duplicates_suppressed += w._listener.duplicates_suppressed
    result.trace_lines = [r.to_line() for r in injector.trace.records]
    result.trace_digest = injector.trace.digest()
    return result
