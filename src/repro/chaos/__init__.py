"""Deterministic fault injection (chaos) subsystem.

NEPTUNE's correctness story (§I-B: no corrupted, dropped, duplicated,
or reordered packets) is only credible if it survives failures that are
*reproducible*: a fault scenario that cannot be replayed cannot be
debugged or regression-tested.  This package provides that substrate:

- :mod:`repro.chaos.plan` — :class:`FaultPlan`: a seeded, deterministic
  description of *which* fault fires at *which* hook point; the n-th
  interception at a site always yields the same decision for the same
  seed, independent of wall-clock timing or thread interleaving.
- :mod:`repro.chaos.injector` — :class:`FaultInjector`: the runtime
  object threaded through the net/sim layers; it evaluates the plan at
  each hook point and records a :class:`FaultTrace` whose byte
  serialization is identical across runs with the same seed.
- :mod:`repro.chaos.simfaults` — node-kill and link-partition events
  for the discrete-event simulator (:mod:`repro.sim.engine`).
- :mod:`repro.chaos.scenario` — canned, seeded end-to-end scenarios
  (wire-level and two-resource pipeline) used by the ``repro chaos``
  CLI subcommand and the chaos test suite.
- :mod:`repro.chaos.recovery` — :class:`RecoveryCoordinator`:
  checkpoint-based job supervision that restores a failed job from its
  last consistent checkpoint (node-kill recovery).

Hook points (site names are stable identifiers recorded in traces):

========================  ====================================================
site                      where / what can fire
========================  ====================================================
``tcp.send``              :meth:`TcpTransport.send`, once per first-time
                          frame send (replays are never re-injected):
                          ``kill_connection``, ``bitflip``, ``truncate``,
                          ``duplicate``, ``delay``, ``drop``
``tcp.recv``              :class:`TcpListener` reader loop, once per
                          received chunk: ``kill_connection``, ``delay``
``channel.put``           :meth:`WatermarkChannel.put`: ``delay``
``sim.node``              simulator node-kill events
``sim.link``              simulator link partition/heal events
========================  ====================================================
"""

from repro.chaos.plan import (
    FaultAction,
    FaultDecision,
    FaultPlan,
    FaultRates,
    ScriptedFault,
)
from repro.chaos.injector import FaultInjector, FaultTrace, TraceRecord
from repro.chaos.simfaults import SimFault, schedule_sim_faults
from repro.chaos.recovery import RecoveryCoordinator

__all__ = [
    "FaultAction",
    "FaultDecision",
    "FaultPlan",
    "FaultRates",
    "ScriptedFault",
    "FaultInjector",
    "FaultTrace",
    "TraceRecord",
    "SimFault",
    "schedule_sim_faults",
    "RecoveryCoordinator",
]
