"""Seeded, deterministic fault plans.

A :class:`FaultPlan` answers one question: *when the injector is asked
for the n-th time at hook point `site`, what fault (if any) fires?*

Determinism is the whole point.  The decision for ``(site, index)``
depends only on the plan — never on wall-clock time, thread
interleaving, or Python's randomized string hashing — so two runs with
the same seed produce byte-identical fault traces.  Randomness is
derived per decision from :func:`repro.lz4.xxh32` over
``f"{site}:{index}"`` with the plan seed, which is stable across
processes and Python versions (unlike ``hash()``).

Two authoring styles compose:

- **Rate-based** (:class:`FaultRates`): each action fires independently
  with a given probability per interception — the soak/chaos mode.
- **Scripted** (:class:`ScriptedFault`): an explicit ``(site, index)``
  → action table — the surgical mode used by regression tests
  ("kill the connection exactly at frame 5").

Scripted entries take precedence over rates at the same ``(site,
index)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lz4 import xxh32


class FaultAction:
    """Namespace of fault action identifiers (stable trace vocabulary)."""

    DROP = "drop"                        # discard the payload silently
    DELAY = "delay"                      # stall the hook for `param` seconds
    DUPLICATE = "duplicate"              # deliver the payload twice
    TRUNCATE = "truncate"                # deliver a `param` fraction, then kill
    BITFLIP = "bitflip"                  # flip one bit of the payload
    KILL_CONNECTION = "kill_connection"  # sever the socket mid-stream
    KILL_NODE = "kill_node"              # crash a node / operator instance
    PARTITION = "partition"              # sever a simulated link
    HEAL = "heal"                        # restore a simulated link

    ALL = (
        DROP,
        DELAY,
        DUPLICATE,
        TRUNCATE,
        BITFLIP,
        KILL_CONNECTION,
        KILL_NODE,
        PARTITION,
        HEAL,
    )


@dataclass(frozen=True)
class FaultDecision:
    """One resolved injection decision at a hook point."""

    site: str
    index: int
    action: str
    #: Action-specific parameter: delay seconds, truncate fraction,
    #: bit position for bitflip.  0.0 when unused.
    param: float = 0.0


@dataclass(frozen=True)
class FaultRates:
    """Independent per-interception fire probabilities for one site.

    Probabilities are evaluated in the declared order below; the first
    action that fires wins (at most one fault per interception, which
    keeps traces readable and recovery behaviour analyzable).
    """

    drop: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    truncate: float = 0.0
    bitflip: float = 0.0
    kill_connection: float = 0.0
    kill_node: float = 0.0
    #: Mean injected delay in seconds when ``delay`` fires.
    delay_seconds: float = 0.005

    def __post_init__(self) -> None:
        for name in (
            "drop",
            "delay",
            "duplicate",
            "truncate",
            "bitflip",
            "kill_connection",
            "kill_node",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]: {p}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0: {self.delay_seconds}")

    def _ordered(self) -> tuple[tuple[str, float], ...]:
        return (
            (FaultAction.KILL_CONNECTION, self.kill_connection),
            (FaultAction.KILL_NODE, self.kill_node),
            (FaultAction.BITFLIP, self.bitflip),
            (FaultAction.TRUNCATE, self.truncate),
            (FaultAction.DUPLICATE, self.duplicate),
            (FaultAction.DROP, self.drop),
            (FaultAction.DELAY, self.delay),
        )


@dataclass(frozen=True)
class ScriptedFault:
    """An explicit fault at an exact ``(site, index)`` interception."""

    site: str
    index: int
    action: str
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in FaultAction.ALL:
            raise ValueError(
                f"unknown action {self.action!r}; expected one of {FaultAction.ALL}"
            )
        if self.index < 0:
            raise ValueError(f"index must be >= 0: {self.index}")


# Derivation domains keep the uniform draw for "does it fire" and the
# draw for "with which parameter" independent.
_FIRE_DOMAIN = 0
_PARAM_DOMAIN = 1


def _uniform(seed: int, site: str, index: int, domain: int) -> float:
    """Deterministic uniform draw in [0, 1) for one decision."""
    h = xxh32(f"{site}:{index}:{domain}".encode(), seed=seed & 0xFFFFFFFF)
    return h / 4294967296.0


@dataclass
class FaultPlan:
    """Deterministic mapping from ``(site, index)`` to fault decisions.

    Parameters
    ----------
    seed:
        Scenario seed; the single knob that must be recorded to
        reproduce a run.
    rates:
        Per-site :class:`FaultRates` (sites absent from the dict never
        fire probabilistically).
    script:
        Explicit :class:`ScriptedFault` entries; they override rates at
        their exact ``(site, index)``.
    """

    seed: int = 0
    rates: dict[str, FaultRates] = field(default_factory=dict)
    script: list[ScriptedFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._scripted: dict[tuple[str, int], ScriptedFault] = {
            (s.site, s.index): s for s in self.script
        }

    # -- authoring ---------------------------------------------------------
    def at(self, site: str, index: int, action: str, param: float = 0.0) -> "FaultPlan":
        """Add one scripted fault; returns self for chaining."""
        entry = ScriptedFault(site, index, action, param)
        self.script.append(entry)
        self._scripted[(site, index)] = entry
        return self

    def with_rates(self, site: str, rates: FaultRates) -> "FaultPlan":
        """Attach probabilistic rates to a site; returns self."""
        self.rates[site] = rates
        return self

    # -- evaluation --------------------------------------------------------
    def decide(self, site: str, index: int) -> FaultDecision | None:
        """The fault (if any) for the ``index``-th interception at ``site``."""
        scripted = self._scripted.get((site, index))
        if scripted is not None:
            return FaultDecision(site, index, scripted.action, scripted.param)
        rates = self.rates.get(site)
        if rates is None:
            return None
        u = _uniform(self.seed, site, index, _FIRE_DOMAIN)
        cumulative = 0.0
        for action, p in rates._ordered():
            cumulative += p
            if u < cumulative:
                return FaultDecision(site, index, action, self._param(site, index, action, rates))
        return None

    def _param(self, site: str, index: int, action: str, rates: FaultRates) -> float:
        v = _uniform(self.seed, site, index, _PARAM_DOMAIN)
        if action == FaultAction.DELAY:
            # 0.5x–1.5x the configured mean: bounded, never pathological.
            return rates.delay_seconds * (0.5 + v)
        if action == FaultAction.TRUNCATE:
            # Keep a strictly partial prefix.
            return 0.1 + 0.8 * v
        if action == FaultAction.BITFLIP:
            # Fractional position within the payload; the injector maps
            # it onto a concrete bit offset.
            return v
        return 0.0

    def describe(self) -> str:
        """One-line human summary (seed + sites)."""
        sites = sorted(set(self.rates) | {s.site for s in self.script})
        return f"FaultPlan(seed={self.seed}, sites={sites}, scripted={len(self.script)})"
