"""Integration tests for the NEPTUNE runtime: end-to-end pipelines,
parallelism, partitioning, batching, backpressure, compression,
correctness guarantees (in-order, exactly-once), and failure handling.
"""

import threading
import time

import pytest

from repro.core import (
    FieldType,
    NeptuneConfig,
    NeptuneRuntime,
    PacketSchema,
    StreamProcessingGraph,
)
from repro.core.job import JobState
from repro.core.operators import StreamProcessor, StreamSource
from repro.util.errors import JobStateError
from repro.workloads import (
    CollectingSink,
    CountingSource,
    LatencySink,
    RelayProcessor,
    VariableRateProcessor,
)


def wait_for_failure(handle, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if handle.failures:
            return
        time.sleep(0.005)


def small_config(**kw):
    defaults = dict(buffer_capacity=2048, buffer_max_delay=0.005)
    defaults.update(kw)
    return NeptuneConfig(**defaults)


class TestLinearPipeline:
    def test_three_stage_relay_exactly_once_in_order(self):
        """The paper's Fig. 1 relay: every packet exactly once, in order."""
        store = []
        g = StreamProcessingGraph("relay", config=small_config())
        g.add_source("sender", lambda: CountingSource(total=2000))
        g.add_processor("relay", RelayProcessor)
        g.add_processor("receiver", lambda: CollectingSink(store))
        g.link("sender", "relay").link("relay", "receiver")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            assert h.await_completion(timeout=60)
        assert h.failures == {}
        assert store == list(range(2000))  # in order, exactly once

    def test_two_stage_minimal(self):
        store = []
        g = StreamProcessingGraph("two", config=small_config())
        g.add_source("src", lambda: CountingSource(total=100))
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        assert store == list(range(100))

    def test_metrics_reflect_flow(self):
        g = StreamProcessingGraph("m", config=small_config())
        g.add_source("src", lambda: CountingSource(total=500))
        g.add_processor("sink", CollectingSink)
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            assert h.await_completion(timeout=30)
        m = h.metrics()
        assert m["src"]["packets_out"] == 500
        assert m["sink"]["packets_in"] == 500
        assert m["sink"]["batches_in"] >= 1
        assert m["sink"]["bytes_in"] > 0
        # Batching: far fewer scheduled batches than packets.
        assert m["sink"]["batches_in"] < 500

    def test_latency_bounded_by_timer_flush(self):
        """A trickle stream must still see ~max_delay latency, not ∞."""
        samples = []
        g = StreamProcessingGraph(
            "lat", config=NeptuneConfig(buffer_capacity=1 << 20, buffer_max_delay=0.02)
        )

        class SlowSource(CountingSource):
            def generate(self, ctx):
                super().generate(ctx)
                time.sleep(0.002)

        g.add_source("src", lambda: SlowSource(total=30))
        g.add_processor("sink", lambda: LatencySink(samples))
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        assert len(samples) == 30
        # Every packet should arrive well under 10x the flush bound.
        assert max(samples) < 0.2


class TestParallelism:
    def test_parallel_processor_receives_all(self):
        store = []
        g = StreamProcessingGraph("par", config=small_config())
        g.add_source("src", lambda: CountingSource(total=1000))
        g.add_processor("sink", lambda: CollectingSink(store), parallelism=4)
        g.link("src", "sink", partitioning="round-robin")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=60)
        assert sorted(store) == list(range(1000))

    def test_fields_partitioning_key_affinity(self):
        """Same key must always land on the same instance."""
        seen: dict[int, set] = {}
        lock = threading.Lock()

        class KeyedSink(StreamProcessor):
            def __init__(self):
                super().__init__()

            def setup(self, ctx):
                self._idx = ctx.instance_index

            def process(self, packet, ctx):
                with lock:
                    seen.setdefault(self._idx, set()).add(packet.get("seq") % 10)

            def output_schema(self, stream):
                raise KeyError(stream)

        class ModSource(CountingSource):
            def generate(self, ctx):
                if self.emitted >= self.total:
                    ctx.finish()
                    return
                pkt = ctx.new_packet()
                pkt.set("seq", self.emitted % 10)  # 10 distinct keys
                pkt.set("emitted_at", time.monotonic())
                pkt.set("payload", b"")
                ctx.emit(pkt)
                self.emitted += 1

        g = StreamProcessingGraph("keyed", config=small_config())
        g.add_source("src", lambda: ModSource(total=500))
        g.add_processor("sink", KeyedSink, parallelism=3)
        g.link("src", "sink", partitioning={"scheme": "fields", "fields": ["seq"]})
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=60)
        # No key appears on two instances.
        all_keys = [k for keys in seen.values() for k in keys]
        assert len(all_keys) == len(set(all_keys))
        assert set(all_keys) == set(range(10))

    def test_broadcast_partitioning(self):
        stores = [[], [], []]

        class IndexedSink(CollectingSink):
            def setup(self, ctx):
                self.store = stores[ctx.instance_index]

        g = StreamProcessingGraph("bcast", config=small_config())
        g.add_source("src", lambda: CountingSource(total=50))
        g.add_processor("sink", IndexedSink, parallelism=3)
        g.link("src", "sink", partitioning="broadcast")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        for store in stores:
            assert store == list(range(50))

    def test_parallel_source_instances(self):
        store = []
        g = StreamProcessingGraph("psrc", config=small_config())
        g.add_source("src", lambda: CountingSource(total=100), parallelism=3)
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        assert len(store) == 300  # each instance emits its own 100
        assert sorted(store) == sorted(list(range(100)) * 3)


class TestFanOutFanIn:
    def test_diamond_topology(self):
        store = []
        g = StreamProcessingGraph("diamond", config=small_config())
        g.add_source("src", lambda: CountingSource(total=200))
        g.add_processor("left", RelayProcessor)
        g.add_processor("right", RelayProcessor)
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "left").link("src", "right")
        g.link("left", "sink").link("right", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=60)
        # Both branches forward every packet → each seq appears twice.
        assert sorted(store) == sorted(list(range(200)) * 2)

    def test_multiple_named_streams(self):
        evens, odds = [], []
        SCHEMA = PacketSchema([("n", FieldType.INT64)])

        class Splitter(StreamProcessor):
            def process(self, packet, ctx):
                out = ctx.new_packet("even" if packet.get("seq") % 2 == 0 else "odd")
                out.set("n", packet.get("seq"))
                ctx.emit(out, "even" if packet.get("seq") % 2 == 0 else "odd")

            def output_schema(self, stream):
                if stream in ("even", "odd"):
                    return SCHEMA
                raise KeyError(stream)

        g = StreamProcessingGraph("split", config=small_config())
        g.add_source("src", lambda: CountingSource(total=100))
        g.add_processor("splitter", Splitter)
        g.add_processor("evens", lambda: CollectingSink(evens, field="n"))
        g.add_processor("odds", lambda: CollectingSink(odds, field="n"))
        g.link("src", "splitter")
        g.link("splitter", "evens", stream="even")
        g.link("splitter", "odds", stream="odd")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=60)
        assert evens == list(range(0, 100, 2))
        assert odds == list(range(1, 100, 2))


class TestBackpressure:
    def test_slow_consumer_throttles_source_without_loss(self):
        """Fig. 3/4: a slow stage C throttles the source; nothing drops."""
        sleep_holder = [0.002]
        store = []

        class SlowSink(CollectingSink):
            def process(self, packet, ctx):
                time.sleep(sleep_holder[0])
                super().process(packet, ctx)

        g = StreamProcessingGraph(
            "bp",
            config=NeptuneConfig(
                buffer_capacity=512,
                buffer_max_delay=0.002,
                inbound_high_watermark=2048,
                inbound_low_watermark=512,
            ),
        )
        g.add_source("src", lambda: CountingSource(total=300, payload_size=100))
        g.add_processor("relay", RelayProcessor)
        g.add_processor("sink", lambda: SlowSink(store))
        g.link("src", "relay").link("relay", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            assert h.await_completion(timeout=120)
        assert store == list(range(300))
        # The source must have been throttled (emit blocked).
        m = h.metrics()
        assert m["src"]["emit_block_seconds"] + m["relay"]["emit_block_seconds"] > 0

    def test_source_rate_tracks_consumer_rate(self):
        """While the consumer is slow, the source cannot run far ahead
        of it (bounded by buffers + channel capacity)."""
        sleep_holder = [0.005]
        g = StreamProcessingGraph(
            "bp2",
            config=NeptuneConfig(
                buffer_capacity=256,
                buffer_max_delay=0.002,
                inbound_high_watermark=1024,
                inbound_low_watermark=256,
            ),
        )
        src = CountingSource(total=None, payload_size=100)
        proc = VariableRateProcessor(sleep_holder)
        g.add_source("src", lambda: src)
        g.add_processor("proc", lambda: proc)
        g.link("src", "proc")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            time.sleep(1.0)
            emitted, processed = src.emitted, proc.processed
            # In-flight bound: channel (1024 B) + one buffer (256 B) +
            # pooled slack; with ~112 B packets that is well under 100.
            assert emitted - processed < 150
            h.stop(timeout=60)
        assert proc.processed == src.emitted  # drained, nothing lost


class TestCompression:
    def test_compressed_link_end_to_end(self):
        store = []
        g = StreamProcessingGraph(
            "comp",
            config=small_config(
                compression_enabled=True, compression_entropy_threshold=8.0
            ),
        )
        # Zero payloads → low entropy → compression engages.
        g.add_source("src", lambda: CountingSource(total=400, payload_size=200))
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            assert h.await_completion(timeout=30)
        assert store == list(range(400))
        m = h.metrics()
        # bytes_in at sink counts the *wire* (compressed) bytes; the
        # source's bytes_out counts serialized (uncompressed) bytes.
        assert m["sink"]["bytes_in"] < m["src"]["bytes_out"]

    def test_per_link_compression_override(self):
        store = []
        g = StreamProcessingGraph("comp-link", config=small_config())
        g.add_source("src", lambda: CountingSource(total=100, payload_size=300))
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "sink", compression=True)
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            assert h.await_completion(timeout=30)
        assert store == list(range(100))
        assert h.metrics()["sink"]["bytes_in"] < h.metrics()["src"]["bytes_out"]


class TestLifecycle:
    def test_stop_drains_in_flight(self):
        store = []
        g = StreamProcessingGraph("stop", config=small_config())
        src = CountingSource(total=None)  # endless
        g.add_source("src", lambda: src)
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            deadline = time.monotonic() + 10
            while src.emitted < 100 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert h.stop(timeout=30)
        assert h.state is JobState.STOPPED
        assert store == list(range(len(store)))  # prefix, in order
        assert len(store) == src.emitted  # everything emitted was processed

    def test_await_completion_timeout_on_endless_source(self):
        g = StreamProcessingGraph("endless", config=small_config())
        g.add_source("src", lambda: CountingSource(total=None))
        g.add_processor("sink", CollectingSink)
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            assert not h.await_completion(timeout=0.3)
            assert h.stop(timeout=30)

    def test_stop_twice_is_safe(self):
        g = StreamProcessingGraph("twice", config=small_config())
        g.add_source("src", lambda: CountingSource(total=10))
        g.add_processor("sink", CollectingSink)
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            assert h.stop(timeout=30)
            assert h.stop(timeout=30)

    def test_operator_lifecycle_hooks(self):
        events = []

        class Hooked(CollectingSink):
            def setup(self, ctx):
                events.append("setup")

            def teardown(self):
                events.append("teardown")

        g = StreamProcessingGraph("hooks", config=small_config())
        g.add_source("src", lambda: CountingSource(total=5))
        g.add_processor("sink", Hooked)
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            rt.submit(g).await_completion(timeout=30)
        assert events == ["setup", "teardown"]

    def test_concurrent_jobs_isolated(self):
        stores = [[], []]
        with NeptuneRuntime() as rt:
            handles = []
            for i in range(2):
                g = StreamProcessingGraph(f"job{i}", config=small_config())
                g.add_source("src", lambda: CountingSource(total=200))
                g.add_processor("sink", lambda i=i: CollectingSink(stores[i]))
                g.link("src", "sink")
                handles.append(rt.submit(g))
            for h in handles:
                assert h.await_completion(timeout=60)
        assert stores[0] == list(range(200))
        assert stores[1] == list(range(200))


class TestFailures:
    def test_processor_exception_fails_job(self):
        class Exploder(StreamProcessor):
            def process(self, packet, ctx):
                raise ValueError("kaboom")

            def output_schema(self, stream):
                raise KeyError(stream)

        g = StreamProcessingGraph("boom", config=small_config())
        g.add_source("src", lambda: CountingSource(total=50))
        g.add_processor("bad", Exploder)
        g.link("src", "bad")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            wait_for_failure(h)
            h.stop(timeout=10)
        assert h.state is JobState.FAILED
        assert any("bad" in k for k in h.failures)
        assert isinstance(list(h.failures.values())[0], ValueError)

    def test_source_exception_fails_job(self):
        class BadSource(StreamSource):
            def generate(self, ctx):
                raise RuntimeError("source died")

            def output_schema(self, stream):
                from repro.workloads import RELAY_SCHEMA

                return RELAY_SCHEMA

        g = StreamProcessingGraph("srcboom", config=small_config())
        g.add_source("src", BadSource)
        g.add_processor("sink", CollectingSink)
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            wait_for_failure(h)
            h.stop(timeout=10)
        assert h.state is JobState.FAILED

    def test_unstarted_job_await_raises(self):
        from repro.core.job import JobHandle
        from repro.core.runtime import _JobRuntime

        g = StreamProcessingGraph("never", config=small_config())
        g.add_source("src", lambda: CountingSource(total=1))
        g.add_processor("sink", CollectingSink)
        g.link("src", "sink")
        g.validate()
        rt = NeptuneRuntime()
        job = _JobRuntime(g)
        with pytest.raises(JobStateError):
            rt._await_job(job, 1.0, force_finish=True)


class TestEmitErrors:
    def test_emit_unknown_stream(self):
        failures = {}

        class WrongStream(CountingSource):
            def generate(self, ctx):
                pkt = ctx.new_packet()
                pkt.set("seq", 0)
                pkt.set("emitted_at", 0.0)
                pkt.set("payload", b"")
                ctx.emit(pkt, "nonexistent")

        g = StreamProcessingGraph("wrongstream", config=small_config())
        g.add_source("src", WrongStream)
        g.add_processor("sink", CollectingSink)
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            wait_for_failure(h)
            h.stop(timeout=10)
        assert h.state is JobState.FAILED
