"""Tests for wire framing: encode/decode, corruption and ordering checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import FrameDecoder, FrameEncoder
from repro.net.framing import HEADER_SIZE, MAX_BODY
from repro.util.errors import SerializationError


class TestEncodeDecode:
    def test_single_frame_roundtrip(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        wire = enc.encode(link_id=3, body=b"payload", count=2)
        frames = dec.feed(wire)
        assert len(frames) == 1
        f = frames[0]
        assert f.link_id == 3 and f.seq == 0 and f.count == 2
        assert f.body == b"payload"

    def test_sequence_increments_per_link(self):
        enc = FrameEncoder()
        dec = FrameDecoder()
        for expected_seq in range(5):
            frames = dec.feed(enc.encode(7, b"x", 1))
            assert frames[0].seq == expected_seq
        # An independent link starts at 0.
        assert dec.feed(enc.encode(8, b"y", 1))[0].seq == 0

    def test_empty_body(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        frames = dec.feed(enc.encode(1, b"", 0))
        assert frames[0].body == b""

    def test_fragmented_feed(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        wire = enc.encode(1, b"A" * 100, 4)
        got = []
        for i in range(0, len(wire), 7):  # drip-feed 7 bytes at a time
            got.extend(dec.feed(wire[i : i + 7]))
        assert len(got) == 1
        assert got[0].body == b"A" * 100
        assert dec.pending_bytes == 0

    def test_multiple_frames_in_one_chunk(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        wire = b"".join(enc.encode(1, bytes([i]), 1) for i in range(10))
        frames = dec.feed(wire)
        assert [f.body for f in frames] == [bytes([i]) for i in range(10)]
        assert [f.seq for f in frames] == list(range(10))

    def test_header_size_constant(self):
        enc = FrameEncoder()
        assert len(enc.encode(0, b"", 0)) == HEADER_SIZE


class TestValidation:
    def test_corrupted_body_detected(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        wire = bytearray(enc.encode(1, b"sensor-data", 1))
        wire[-1] ^= 0xFF
        with pytest.raises(SerializationError, match="checksum"):
            dec.feed(bytes(wire))

    def test_bad_magic_detected(self):
        dec = FrameDecoder()
        with pytest.raises(SerializationError, match="magic"):
            dec.feed(b"\x00" * HEADER_SIZE)

    def test_bad_version_detected(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        wire = bytearray(enc.encode(1, b"", 0))
        wire[2] = 99  # version byte
        with pytest.raises(SerializationError, match="version"):
            dec.feed(bytes(wire))

    def test_dropped_frame_detected(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        enc.encode(1, b"lost", 1)  # seq 0 never delivered
        wire = enc.encode(1, b"arrives", 1)  # seq 1
        with pytest.raises(SerializationError, match="out-of-order"):
            dec.feed(wire)

    def test_duplicate_frame_detected(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        wire = enc.encode(1, b"once", 1)
        dec.feed(wire)
        with pytest.raises(SerializationError, match="out-of-order"):
            dec.feed(wire)

    def test_sequence_check_optional(self):
        enc = FrameEncoder()
        dec = FrameDecoder(verify_sequence=False)
        wire = enc.encode(1, b"x", 1)
        assert len(dec.feed(wire) + dec.feed(wire)) == 2

    def test_oversized_body_rejected_on_encode(self):
        enc = FrameEncoder()
        with pytest.raises(SerializationError):
            enc.encode(1, b"\x00" * (MAX_BODY + 1), 1)

    def test_link_id_range(self):
        enc = FrameEncoder()
        with pytest.raises(SerializationError):
            enc.encode(-1, b"", 0)
        with pytest.raises(SerializationError):
            enc.encode(2**32, b"", 0)


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),
            st.binary(max_size=300),
            st.integers(min_value=0, max_value=100),
        ),
        max_size=20,
    ),
    st.integers(min_value=1, max_value=64),
)
def test_stream_roundtrip_property(batches, chunk):
    """Any batch sequence, any fragmentation → identical frames out."""
    enc, dec = FrameEncoder(), FrameDecoder()
    wire = b"".join(enc.encode(l, b, c) for l, b, c in batches)
    frames = []
    for i in range(0, len(wire), chunk):
        frames.extend(dec.feed(wire[i : i + chunk]))
    assert [(f.link_id, f.body, f.count) for f in frames] == batches


class TestEncoderSequenceQuery:
    def test_sequence_reflects_next_assignment(self):
        enc = FrameEncoder()
        assert enc.sequence(5) == 0
        enc.encode(5, b"x", 1)
        assert enc.sequence(5) == 1
        assert enc.sequence(6) == 0
