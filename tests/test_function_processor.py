"""Tests for FunctionProcessor and miscellaneous operator ergonomics."""

import pytest

from repro.core import (
    FieldType,
    FunctionProcessor,
    NeptuneConfig,
    NeptuneRuntime,
    PacketSchema,
    StreamProcessingGraph,
)
from repro.workloads import CollectingSink, CountingSource, RELAY_SCHEMA

NUM = PacketSchema([("n", FieldType.INT64)])


class TestFunctionProcessor:
    def test_inline_relay(self):
        store = []

        def forward(pkt, ctx):
            out = ctx.new_packet()
            out.set("n", pkt.get("seq") + 1000)
            ctx.emit(out)

        g = StreamProcessingGraph(
            "fn", config=NeptuneConfig(buffer_capacity=1024, buffer_max_delay=0.004)
        )
        g.add_source("src", lambda: CountingSource(total=50))
        g.add_processor("fn", lambda: FunctionProcessor(forward, schema=NUM))
        g.add_processor("sink", lambda: CollectingSink(store, field="n"))
        g.link("src", "fn").link("fn", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        assert store == [1000 + i for i in range(50)]

    def test_terminal_function(self):
        seen = []
        g = StreamProcessingGraph(
            "fn-term",
            config=NeptuneConfig(buffer_capacity=1024, buffer_max_delay=0.004),
        )
        g.add_source("src", lambda: CountingSource(total=20))
        g.add_processor(
            "fn", lambda: FunctionProcessor(lambda p, ctx: seen.append(p.get("seq")))
        )
        g.link("src", "fn")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        assert seen == list(range(20))

    def test_no_schema_means_no_outputs(self):
        fp = FunctionProcessor(lambda p, ctx: None)
        with pytest.raises(KeyError):
            fp.output_schema("default")

    def test_custom_name(self):
        fp = FunctionProcessor(lambda p, ctx: None, name="my-fn")
        assert fp.name == "my-fn"


class TestOperatorDefaults:
    def test_default_name_is_class_name(self):
        from repro.workloads import RelayProcessor

        assert RelayProcessor().name == "RelayProcessor"

    def test_runtime_overrides_name_with_graph_name(self):
        captured = {}

        class Probe(CollectingSink):
            def setup(self, ctx):
                captured["name"] = self.name

        g = StreamProcessingGraph(
            "names", config=NeptuneConfig(buffer_capacity=1024)
        )
        g.add_source("src", lambda: CountingSource(total=1))
        g.add_processor("the-sink", Probe)
        g.link("src", "the-sink")
        with NeptuneRuntime() as rt:
            rt.submit(g).await_completion(timeout=30)
        assert captured["name"] == "the-sink"

    def test_batch_hooks_called(self):
        events = []

        class Hooked(CollectingSink):
            def on_batch_start(self, size, ctx):
                events.append(("start", size))

            def on_batch_end(self, ctx):
                events.append(("end", None))

        g = StreamProcessingGraph(
            "hooks2", config=NeptuneConfig(buffer_capacity=512, buffer_max_delay=0.003)
        )
        g.add_source("src", lambda: CountingSource(total=30))
        g.add_processor("sink", Hooked)
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        starts = [e for e in events if e[0] == "start"]
        ends = [e for e in events if e[0] == "end"]
        assert len(starts) == len(ends) >= 1
        assert sum(size for _, size in starts) == 30
