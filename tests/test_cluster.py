"""Multi-process sharded data plane: planning, spawning, end-to-end flow.

Two tiers live in this module:

- Plain tests exercise the in-process pieces (shard planning, spec
  serialization, port reservation) — they run in tier-1.
- ``@pytest.mark.cluster`` tests spawn real worker processes through
  :mod:`procharness` and are excluded from tier-1 by the ``-m "not
  cluster"`` default (CI runs them in a dedicated job).
"""

import os

import pytest
from procharness import drain, live_cluster, reserve_port, reserve_ports, wait_until

from repro.cluster import ClusterCoordinator, attach_proxies, build_plan
from repro.cluster.spec import WorkerSpec
from repro.core import NeptuneConfig, StreamProcessingGraph
from repro.core.graph import descriptor_factory
from repro.observe import TelemetryRegistry
from repro.util.errors import NeptuneError


def relay_graph(total=400, relay_parallelism=2):
    """source -> relay(xN) -> sink, all operators importable by path
    (worker processes rebuild the graph from its descriptor)."""
    graph = StreamProcessingGraph(
        "cluster-relay",
        config=NeptuneConfig(buffer_capacity=512, buffer_max_delay=0.003),
    )
    graph.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:CountingSource", total=total, payload_size=24
        ),
    )
    graph.add_processor(
        "relay",
        descriptor_factory("repro.workloads.operators:RelayProcessor"),
        parallelism=relay_parallelism,
    )
    graph.add_processor(
        "sink", descriptor_factory("repro.workloads.operators:CollectingSink")
    )
    graph.link("source", "relay").link("relay", "sink")
    return graph


# ---------------------------------------------------------------------------
# in-process: planning / specs / ports (tier-1)
# ---------------------------------------------------------------------------


class TestShardPlanning:
    def test_round_robin_covers_every_instance(self):
        graph = relay_graph(relay_parallelism=3)
        plan = build_plan(graph, n_workers=2)
        instances = {
            (op.name, idx)
            for op in graph.operators.values()
            for idx in range(op.parallelism)
        }
        assert set(plan.assignment) == instances
        assert set(plan.assignment.values()) <= {0, 1}
        # Both workers host something: sharding, not mirroring.
        assert len(set(plan.assignment.values())) == 2

    def test_pin_overrides_every_instance_of_the_operator(self):
        graph = relay_graph(relay_parallelism=3)
        plan = build_plan(graph, n_workers=2, pin={"relay": 1, "source": 0})
        assert plan.assignment[("source", 0)] == 0
        for idx in range(3):
            assert plan.assignment[("relay", idx)] == 1

    def test_pin_rejects_unknown_operator(self):
        graph = relay_graph()
        with pytest.raises(NeptuneError):
            build_plan(graph, n_workers=2, pin={"nope": 0})

    def test_worker_spec_json_roundtrip(self):
        graph = relay_graph()
        coordinator = ClusterCoordinator(graph, n_workers=2)
        try:
            for handle in coordinator.handles:
                spec = WorkerSpec.from_json(handle.spec.to_json())
                assert spec == handle.spec
                rebuilt = spec.deployment_plan()
                assert rebuilt.assignment == coordinator.plan.assignment
                assert rebuilt.n_workers == coordinator.plan.n_workers
        finally:
            coordinator.terminate()


class TestPortReservation:
    def test_batch_is_pairwise_distinct(self):
        ports = reserve_ports(8)
        assert len(set(ports)) == 8

    def test_coordinator_data_and_control_ports_disjoint(self):
        # Regression: data and control ports used to come from two
        # sequential reserve_ports batches — the first batch's probe
        # sockets were already closed, so the kernel could hand a data
        # port back as a control port.  One combined batch guarantees
        # pairwise-distinct ports.
        coordinator = ClusterCoordinator(relay_graph(), n_workers=3)
        try:
            data = {
                handle.spec.endpoints[handle.worker_id][1]
                for handle in coordinator.handles
            }
            control = {handle.spec.control_port for handle in coordinator.handles}
            assert len(data) == 3 and len(control) == 3
            assert not data & control
        finally:
            coordinator.terminate()


class TestLaunchVerification:
    """The NEPG130-139 gate in front of ``launch`` (no processes spawn,
    so these stay tier-1)."""

    def unseeded_graph(self):
        graph = relay_graph()
        # Rebuild the source->relay link with an unseeded shuffle: a
        # NEPG122 warning single-process, promoted to NEPG136 once the
        # plan splits the link across workers.
        graph.links[0].partitioning = {"scheme": "shuffle"}
        graph._validated = False
        graph.validate()
        return graph

    def test_launch_refuses_failing_plan_before_spawning(self):
        from repro.util.errors import PlanVerificationError

        coordinator = ClusterCoordinator(self.unseeded_graph(), n_workers=2)
        try:
            with pytest.raises(PlanVerificationError) as excinfo:
                coordinator.launch()
            # The typed error names the failing rule and carries the
            # full report; nothing was ever spawned.
            assert "NEPG136" in str(excinfo.value)
            assert excinfo.value.report.count("NEPG136") == 1
            assert all(h.process is None for h in coordinator.handles)
        finally:
            coordinator.terminate()

    def test_verify_false_opts_out(self, monkeypatch):
        # With verify=False the gate is skipped and launch() proceeds
        # straight to spawning (stubbed out — tier-1 spawns nothing).
        coordinator = ClusterCoordinator(
            self.unseeded_graph(), n_workers=2, verify=False
        )
        spawned = []
        monkeypatch.setattr(
            ClusterCoordinator, "_spawn", lambda self, h: spawned.append(h)
        )
        monkeypatch.setattr(
            ClusterCoordinator, "_connect", lambda self, h, t: None
        )
        try:
            coordinator.launch()
            assert len(spawned) == 2
        finally:
            coordinator.job = None
            coordinator.terminate()

    def test_clean_plan_passes_the_gate(self, monkeypatch):
        coordinator = ClusterCoordinator(relay_graph(), n_workers=2)
        spawned = []
        monkeypatch.setattr(
            ClusterCoordinator, "_spawn", lambda self, h: spawned.append(h)
        )
        monkeypatch.setattr(
            ClusterCoordinator, "_connect", lambda self, h, t: None
        )
        try:
            coordinator.launch()
            assert len(spawned) == 2
        finally:
            coordinator.job = None
            coordinator.terminate()

    def test_reserved_port_is_immediately_bindable(self):
        import socket

        port = reserve_port()
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", port))
            sock.listen(1)


# ---------------------------------------------------------------------------
# real processes (cluster marker; excluded from tier-1)
# ---------------------------------------------------------------------------


@pytest.mark.cluster
class TestLiveCluster:
    def test_tcp_cluster_delivers_every_packet(self):
        total = 400
        with live_cluster(relay_graph(total=total), n_workers=2) as coordinator:
            drain(coordinator)
            metrics = coordinator.metrics()
            assert metrics["sink"]["packets_in"] == total
            assert metrics["source"]["packets_out"] == total
            assert coordinator.job.failures() == {}

    def test_unix_fabric_delivers_and_cleans_up(self):
        total = 300
        with live_cluster(
            relay_graph(total=total), n_workers=2, fabric="unix"
        ) as coordinator:
            socket_dir = coordinator._socket_dir
            assert any(
                name.endswith(".sock") for name in os.listdir(socket_dir)
            )
            drain(coordinator)
            assert coordinator.metrics()["sink"]["packets_in"] == total
        # terminate() ran on context exit: socket files and dir are gone.
        assert not os.path.exists(socket_dir)

    def test_telemetry_scrape_labels_every_worker(self):
        total = 200
        with live_cluster(relay_graph(total=total), n_workers=2) as coordinator:
            # Scrape while the workers are live (the drain severs the
            # control connections the scrape rides on).
            wait_until(
                lambda: coordinator.job.metrics()
                .get("sink", {})
                .get("packets_in", 0)
                >= total,
                timeout=60.0,
            )
            registry = TelemetryRegistry()
            coordinator.scrape_into(registry)
            drain(coordinator)
            samples = registry.collect()
            workers_seen = {dict(s.labels).get("worker") for s in samples}
            assert {"0", "1"} <= workers_seen
            names = {s.name for s in samples}
            # Operator and transport instruments both crossed the
            # process boundary.
            assert any("operator" in n or "packets" in n for n in names)

    def test_status_and_state_attach(self):
        with live_cluster(relay_graph(total=200), n_workers=2) as coordinator:
            status = coordinator.status()
            assert [entry["worker_id"] for entry in status] == [0, 1]
            assert all(entry["alive"] for entry in status)
            proxies = attach_proxies(coordinator.state())
            try:
                assert sorted(p.worker_id for p in proxies) == [0, 1]
                for proxy in proxies:
                    assert isinstance(proxy.metrics(), dict)
            finally:
                for proxy in proxies:
                    proxy.close()
            drain(coordinator)
