"""Tests for the cluster-scale contention model (Figs. 5, 6, 9, 10)."""

import statistics

import pytest

from repro.sim.cluster import (
    ClusterParams,
    JobProfile,
    NodeSpec,
    job_profile,
    paper_testbed,
    run_cluster,
)

MFG = dict(stages=4, message_size=64, deployment="pipeline", app_cpu_per_message=2.5e-6)


class TestTestbed:
    def test_paper_testbed_composition(self):
        nodes = paper_testbed()
        assert len(nodes) == 50
        assert sum(1 for n in nodes if n.cores == 8) == 46
        assert sum(1 for n in nodes if n.cores == 4) == 4


class TestJobProfile:
    def test_neptune_cheaper_per_message_than_storm(self):
        n = job_profile("neptune", 100, 4)
        s = job_profile("storm", 100, 4)
        assert n.cpu_per_message < s.cpu_per_message
        assert n.peak_rate > s.peak_rate

    def test_storm_wire_overhead_larger(self):
        n = job_profile("neptune", 50, 2)
        s = job_profile("storm", 50, 2)
        assert s.wire_bytes_per_message > n.wire_bytes_per_message

    def test_app_cpu_lowers_peak(self):
        light = job_profile("neptune", 64, 4)
        heavy = job_profile("neptune", 64, 4, app_cpu_per_message=2.5e-6)
        assert heavy.peak_rate < light.peak_rate

    def test_unknown_framework(self):
        with pytest.raises(ValueError):
            job_profile("flink", 100, 2)


class TestValidation:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            ClusterParams(n_jobs=0)
        with pytest.raises(ValueError):
            ClusterParams(nodes=[])
        with pytest.raises(ValueError):
            ClusterParams(deployment="mesh")
        with pytest.raises(ValueError):
            ClusterParams(stages=1)


class TestFig5Shape:
    def test_rises_to_fifty_then_declines(self):
        cums = {}
        for j in (10, 25, 50, 100, 150):
            cums[j] = run_cluster(ClusterParams(n_jobs=j)).cumulative_throughput
        assert cums[10] < cums[25] < cums[50]  # rising phase
        assert cums[100] < cums[50]  # overprovisioned decline
        assert cums[150] < cums[100]

    def test_peak_near_hundred_million(self):
        """§VI headline: 'cumulative throughput closer to 100 million
        packets per-second' at 50 jobs on 50 nodes."""
        r = run_cluster(ClusterParams(n_jobs=50))
        assert 8e7 < r.cumulative_throughput < 1.5e8

    def test_bandwidth_near_optimal_at_peak(self):
        r = run_cluster(ClusterParams(n_jobs=50))
        # 50 nodes x 1 Gbps egress = 50 Gbps ceiling.
        assert r.cumulative_bandwidth_gbps > 40.0

    def test_rise_is_roughly_linear(self):
        r10 = run_cluster(ClusterParams(n_jobs=10)).cumulative_throughput
        r20 = run_cluster(ClusterParams(n_jobs=20)).cumulative_throughput
        assert r20 == pytest.approx(2 * r10, rel=0.15)


class TestFig6Shape:
    def test_linear_in_cluster_size(self):
        testbed = paper_testbed()
        cums = [
            run_cluster(ClusterParams(n_jobs=50, nodes=testbed[:n])).cumulative_throughput
            for n in (10, 20, 40)
        ]
        assert cums[1] == pytest.approx(2 * cums[0], rel=0.15)
        assert cums[2] == pytest.approx(4 * cums[0], rel=0.15)


class TestFig9Shape:
    def test_neptune_roughly_8x_storm_at_32_jobs(self):
        rn = run_cluster(ClusterParams(n_jobs=32, **MFG))
        rs = run_cluster(ClusterParams(framework="storm", n_jobs=32, **MFG))
        ratio = rn.cumulative_throughput / rs.cumulative_throughput
        assert 5 < ratio < 12  # paper: 8x

    def test_both_scale_linearly(self):
        for fw in ("neptune", "storm"):
            r16 = run_cluster(
                ClusterParams(framework=fw, n_jobs=16, **MFG)
            ).cumulative_throughput
            r32 = run_cluster(
                ClusterParams(framework=fw, n_jobs=32, **MFG)
            ).cumulative_throughput
            assert r32 == pytest.approx(2 * r16, rel=0.2), fw

    def test_manufacturing_headline(self):
        """§VI: cumulative throughput of 15 M msgs/s for the 4-stage
        manufacturing application."""
        r = run_cluster(ClusterParams(n_jobs=50, **MFG))
        assert 1.0e7 < r.cumulative_throughput < 2.5e7

    def test_storm_capped_at_node_count(self):
        r = run_cluster(ClusterParams(framework="storm", n_jobs=80, **MFG))
        assert len(r.per_job_rate) == 50  # one worker slot per node


class TestFig10:
    def test_storm_cpu_consistently_higher(self):
        rn = run_cluster(ClusterParams(n_jobs=50, **MFG))
        rs = run_cluster(ClusterParams(framework="storm", n_jobs=50, seed=29, **MFG))
        assert statistics.mean(rs.per_node_cpu_pct) > statistics.mean(
            rn.per_node_cpu_pct
        )

    def test_memory_means_close(self):
        rn = run_cluster(ClusterParams(n_jobs=50, **MFG))
        rs = run_cluster(ClusterParams(framework="storm", n_jobs=50, seed=29, **MFG))
        mn = statistics.mean(rn.per_node_mem_pct)
        ms = statistics.mean(rs.per_node_mem_pct)
        assert abs(mn - ms) / mn < 0.10  # "no noticeable difference"

    def test_per_node_vectors_cover_cluster(self):
        r = run_cluster(ClusterParams(n_jobs=50, **MFG))
        assert len(r.per_node_cpu_pct) == 50
        assert len(r.per_node_mem_pct) == 50
        assert all(0 <= u <= 1 for u in r.per_node_nic_util)

    def test_deterministic_given_seed(self):
        a = run_cluster(ClusterParams(n_jobs=50, seed=5, **MFG))
        b = run_cluster(ClusterParams(n_jobs=50, seed=5, **MFG))
        assert a.per_node_cpu_pct == b.per_node_cpu_pct


class TestHeterogeneousNodes:
    def test_small_nodes_limit_all_pairs_less_with_weighted_spread(self):
        uniform = [NodeSpec(8, 12.0)] * 50
        r_uniform = run_cluster(ClusterParams(n_jobs=50, nodes=uniform))
        r_paper = run_cluster(ClusterParams(n_jobs=50))
        # The 4 weak nodes cost some capacity but not a 2x collapse.
        assert r_paper.cumulative_throughput > 0.7 * r_uniform.cumulative_throughput


class TestCrossValidation:
    def test_profile_peak_agrees_with_relay_des(self):
        """The cluster model's derived single-pipeline peak must agree
        with the discrete-event relay at the same configuration (the
        cluster model is a coarse view of the same cost constants)."""
        from repro.sim.relay import RelayParams, run_relay

        des = run_relay(
            RelayParams(message_size=50, buffer_size=1 << 20, duration=1.5)
        )
        profile = job_profile("neptune", 50, 2)
        ratio = profile.peak_rate / des.throughput
        assert 0.5 < ratio < 2.0, (profile.peak_rate, des.throughput)
