"""Tests for graph construction, validation, and JSON descriptors."""

import json

import pytest

from repro.core import NeptuneConfig, StreamProcessingGraph
from repro.core.graph import descriptor_factory
from repro.util.errors import GraphValidationError
from repro.workloads import CollectingSink, CountingSource, RelayProcessor


def relay_graph():
    g = StreamProcessingGraph("relay")
    g.add_source("sender", CountingSource)
    g.add_processor("relay", RelayProcessor)
    g.add_processor("receiver", CollectingSink)
    g.link("sender", "relay").link("relay", "receiver")
    return g


class TestConstruction:
    def test_fluent_api(self):
        g = relay_graph()
        assert set(g.operators) == {"sender", "relay", "receiver"}
        assert len(g.links) == 2

    def test_duplicate_operator_rejected(self):
        g = StreamProcessingGraph("g")
        g.add_source("a", CountingSource)
        with pytest.raises(GraphValidationError, match="duplicate"):
            g.add_processor("a", RelayProcessor)

    def test_empty_name_rejected(self):
        with pytest.raises(GraphValidationError):
            StreamProcessingGraph("")

    def test_nonpositive_parallelism_rejected(self):
        g = StreamProcessingGraph("g")
        with pytest.raises(GraphValidationError, match="parallelism"):
            g.add_source("a", CountingSource, parallelism=0)


class TestValidation:
    def test_valid_graph_passes(self):
        g = relay_graph().validate()
        assert all(lk.schema is not None for lk in g.links)
        assert [lk.link_id for lk in g.links] == [0, 1]

    def test_no_operators(self):
        with pytest.raises(GraphValidationError, match="no operators"):
            StreamProcessingGraph("g").validate()

    def test_no_source(self):
        g = StreamProcessingGraph("g")
        g.add_processor("p", RelayProcessor)
        with pytest.raises(GraphValidationError, match="no stream source"):
            g.validate()

    def test_undeclared_endpoint(self):
        g = StreamProcessingGraph("g")
        g.add_source("a", CountingSource)
        g.link("a", "ghost")
        with pytest.raises(GraphValidationError, match="undeclared"):
            g.validate()

    def test_link_into_source_rejected(self):
        g = StreamProcessingGraph("g")
        g.add_source("a", CountingSource)
        g.add_source("b", CountingSource)
        g.link("a", "b")
        with pytest.raises(GraphValidationError, match="sources cannot receive"):
            g.validate()

    def test_cycle_rejected(self):
        g = StreamProcessingGraph("g")
        g.add_source("s", CountingSource)
        g.add_processor("p1", RelayProcessor)
        g.add_processor("p2", RelayProcessor)
        g.link("s", "p1").link("p1", "p2").link("p2", "p1")
        with pytest.raises(GraphValidationError, match="cycle"):
            g.validate()

    def test_unreachable_processor_rejected(self):
        g = relay_graph()
        g.add_processor("island", RelayProcessor)
        with pytest.raises(GraphValidationError, match="unreachable"):
            g.validate()

    def test_missing_schema_rejected(self):
        g = StreamProcessingGraph("g")
        g.add_source("s", CountingSource)
        g.add_processor("sink", CollectingSink)
        g.add_processor("beyond", RelayProcessor)
        g.link("s", "sink")
        g.link("sink", "beyond")  # CollectingSink declares no output schema
        with pytest.raises(GraphValidationError, match="declares no schema"):
            g.validate()

    def test_wrong_factory_type_rejected(self):
        g = StreamProcessingGraph("g")
        g.add_source("s", lambda: object())  # type: ignore[arg-type]
        g.add_processor("p", RelayProcessor)
        g.link("s", "p")
        with pytest.raises(GraphValidationError, match="not a StreamOperator"):
            g.validate()

    def test_source_processor_mixup_rejected(self):
        g = StreamProcessingGraph("g")
        g.add_source("s", RelayProcessor)  # processor declared as source
        g.add_processor("p", RelayProcessor)
        g.link("s", "p")
        with pytest.raises(GraphValidationError, match="factory built"):
            g.validate()

    def test_unknown_partitioning_rejected(self):
        g = StreamProcessingGraph("g")
        g.add_source("s", CountingSource)
        g.add_processor("p", RelayProcessor)
        g.link("s", "p", partitioning="bogus")
        with pytest.raises(GraphValidationError, match="unknown partitioning"):
            g.validate()

    def test_validate_idempotent(self):
        g = relay_graph()
        assert g.validate() is g
        assert g.validate() is g


class TestQueries:
    def test_stages_are_topological(self):
        g = relay_graph()
        assert g.stages() == [["sender"], ["relay"], ["receiver"]]

    def test_in_out_links(self):
        g = relay_graph()
        assert [lk.to_op for lk in g.outgoing_links("sender")] == ["relay"]
        assert [lk.from_op for lk in g.incoming_links("receiver")] == ["relay"]

    def test_total_instances(self):
        g = StreamProcessingGraph("g")
        g.add_source("s", CountingSource, parallelism=2)
        g.add_processor("p", RelayProcessor, parallelism=3)
        g.link("s", "p")
        assert g.total_instances() == 5


class TestJsonDescriptor:
    def test_roundtrip(self):
        g = StreamProcessingGraph("json-job")
        g.add_source(
            "src",
            descriptor_factory("repro.workloads.operators:CountingSource", total=10),
            parallelism=2,
        )
        g.add_processor(
            "relay", descriptor_factory("repro.workloads.operators:RelayProcessor")
        )
        g.add_processor(
            "sink", descriptor_factory("repro.workloads.operators:CollectingSink")
        )
        g.link("src", "relay", partitioning="shuffle")
        g.link("relay", "sink", partitioning={"scheme": "fields", "fields": ["seq"]})
        text = g.to_json()
        again = StreamProcessingGraph.from_json(text)
        again.validate()
        assert again.name == "json-job"
        assert again.operators["src"].parallelism == 2
        desc = json.loads(text)
        assert desc["links"][0]["partitioning"] == "shuffle"

    def test_descriptor_factory_builds_with_kwargs(self):
        factory = descriptor_factory(
            "repro.workloads.operators:CountingSource", total=7, payload_size=100
        )
        src = factory()
        assert isinstance(src, CountingSource)
        assert src.total == 7

    def test_descriptor_factory_bad_path(self):
        with pytest.raises(GraphValidationError):
            descriptor_factory("no-colon-path")

    def test_from_descriptor_missing_class(self):
        desc = {
            "name": "x",
            "operators": [{"name": "s", "type": "source", "parallelism": 1}],
            "links": [],
        }
        with pytest.raises(GraphValidationError, match="no class path"):
            StreamProcessingGraph.from_descriptor(desc)

    def test_from_descriptor_unknown_type(self):
        desc = {
            "name": "x",
            "operators": [
                {
                    "name": "s",
                    "type": "magic",
                    "class": "repro.workloads.operators:CountingSource",
                }
            ],
        }
        with pytest.raises(GraphValidationError, match="unknown operator type"):
            StreamProcessingGraph.from_descriptor(desc)

    def test_config_attached(self):
        cfg = NeptuneConfig(buffer_capacity=2048)
        g = StreamProcessingGraph.from_descriptor(
            {"name": "x", "operators": [], "links": []}.copy()
            | {
                "operators": [
                    {
                        "name": "s",
                        "type": "source",
                        "class": "repro.workloads.operators:CountingSource",
                    }
                ]
            },
            config=cfg,
        )
        assert g.config.buffer_capacity == 2048
