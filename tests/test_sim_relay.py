"""Tests for the relay simulation: shapes the paper's claims rest on."""

import pytest

from repro.sim.relay import RelayParams, RelayResult, run_relay


def quick(**kw):
    defaults = dict(duration=0.5, max_events=60_000)
    defaults.update(kw)
    return run_relay(RelayParams(**defaults))


class TestConservation:
    def test_no_message_loss_neptune(self):
        r = quick(message_size=50, buffer_size=1 << 20)
        assert r.messages_delivered <= r.messages_relayed <= r.messages_generated
        # In steady state the pipeline delivers the vast majority.
        assert r.messages_delivered > 0.5 * r.messages_generated

    def test_throughput_positive(self):
        r = quick()
        assert r.throughput > 0
        assert r.sim_seconds > 0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            RelayParams(framework="flink")
        with pytest.raises(ValueError):
            RelayParams(message_size=0)
        with pytest.raises(ValueError):
            RelayParams(buffer_size=0)
        with pytest.raises(ValueError):
            RelayParams(duration=0)

    def test_storm_forces_no_object_reuse(self):
        p = RelayParams(framework="storm", object_reuse=True)
        assert p.object_reuse is False


class TestFig2Shapes:
    def test_throughput_rises_with_buffer_size(self):
        small = quick(message_size=50, buffer_size=1024)
        large = quick(message_size=50, buffer_size=1 << 20, duration=2.0)
        assert large.throughput > 2 * small.throughput

    def test_latency_grows_with_large_buffers(self):
        mid = quick(message_size=50, buffer_size=16 * 1024, duration=2.0)
        large = quick(message_size=50, buffer_size=1 << 20, duration=2.0)
        assert large.mean_latency > mid.mean_latency

    def test_mid_buffer_latency_under_paper_bound(self):
        """Paper: 'with a 16 KB buffer the observed latency is less
        than 10 ms for all message sizes' — allow a small margin."""
        for msg in (50, 1024, 10240):
            r = quick(message_size=msg, buffer_size=16 * 1024, duration=1.0)
            assert r.mean_latency < 0.015, f"msg={msg}: {r.mean_latency}"

    def test_bandwidth_saturates_at_large_buffers(self):
        r = quick(message_size=50, buffer_size=1 << 20, duration=2.0)
        assert r.bandwidth_gbps > 0.9

    def test_bandwidth_in_valid_range(self):
        for buf in (1024, 65536, 1 << 20):
            r = quick(message_size=50, buffer_size=buf)
            assert 0.0 <= r.bandwidth_gbps <= 1.0


class TestTable1:
    def test_batched_scheduling_cuts_context_switches(self):
        batched = quick(message_size=50, buffer_size=1 << 20, batched=True, duration=2.0)
        individual = quick(
            message_size=50, buffer_size=1 << 20, batched=False, duration=2.0
        )
        ratio = (
            individual.context_switches_per_5s_relay
            / batched.context_switches_per_5s_relay
        )
        # Paper's Table I ratio is ~22x; require the same regime.
        assert 10 < ratio < 40

    def test_batched_absolute_regime(self):
        r = quick(message_size=50, buffer_size=1 << 20, batched=True, duration=2.0)
        # Paper: ~4085 per 5 seconds.
        assert 1000 < r.context_switches_per_5s_relay < 12_000


class TestObjectReuse:
    def test_gc_fraction_drops_with_reuse(self):
        reuse = quick(message_size=50, object_reuse=True, duration=2.0)
        no_reuse = quick(message_size=50, object_reuse=False, duration=2.0)
        # Paper: 8.63% -> 0.79%.
        assert no_reuse.gc_fraction_relay > 5 * reuse.gc_fraction_relay
        assert 0.001 < reuse.gc_fraction_relay < 0.05
        assert 0.04 < no_reuse.gc_fraction_relay < 0.25


class TestFig7Contrast:
    def test_neptune_beats_storm_on_small_messages(self):
        n = quick(message_size=50, duration=1.0)
        s = quick(framework="storm", message_size=50, duration=1.0)
        assert n.throughput > 5 * s.throughput

    def test_storm_latency_explodes_without_backpressure(self):
        n = quick(message_size=1024, duration=1.5)
        s = quick(framework="storm", message_size=1024, duration=1.5)
        assert s.mean_latency > 2 * n.mean_latency
        # Storm's unbounded queues keep growing at the bottleneck stage
        # (the sender's transfer queue for 1 KB tuples), while NEPTUNE's
        # are bounded by watermarks.
        assert s.max_queue_peak_bytes > 4 * n.max_queue_peak_bytes

    def test_storm_latency_grows_with_message_size(self):
        small = quick(framework="storm", message_size=50, duration=1.0)
        large = quick(framework="storm", message_size=10240, duration=1.0)
        assert large.mean_latency > small.mean_latency

    def test_neptune_backpressure_bounds_queues(self):
        r = quick(message_size=50, buffer_size=1 << 20, duration=2.0)
        assert r.relay_queue_peak_bytes <= r.params.inbound_high_watermark * 2


class TestHeadline:
    def test_two_million_messages_per_second_regime(self):
        """§VI: '~2 million stream packets per-second' at one pipeline."""
        r = quick(message_size=50, buffer_size=1 << 20, duration=2.0)
        assert 1.5e6 < r.throughput < 3.5e6

    def test_p99_latency_bound_10kb(self):
        """§VI: 99% of 10 KB packets under 87.8 ms (high-throughput
        config); our max-latency proxy should be in that regime."""
        r = quick(message_size=10240, buffer_size=1 << 20, duration=2.0)
        assert r.max_latency < 0.15

    def test_event_budget_respected(self):
        r = quick(duration=10.0, max_events=5_000, buffer_size=1024)
        assert r.events_processed <= 6_000  # budget plus small overshoot
        assert r.sim_seconds < 10.0
