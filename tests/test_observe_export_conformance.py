"""Prometheus text-format conformance: escaping, name grammar, and the
timeline drop accounting the doctor's completeness warning rests on."""

import re

import pytest

from repro.observe import EventTimeline, RuntimeObserver, TelemetryRegistry
from repro.observe import bridge
from repro.observe.export import snapshot, to_prometheus

#: Text format 0.0.4 grammar (what a scraper's parser enforces).
METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*\})? \S+$"
)


class TestLabelValueEscaping:
    def test_backslash_quote_newline_escaped(self):
        reg = TelemetryRegistry()
        nasty = 'a\\b"c\nd'
        reg.counter("neptune_test_total", {"op": nasty}, "help").inc()
        text = to_prometheus(reg)
        assert 'op="a\\\\b\\"c\\nd"' in text
        # The raw forms must be gone: an unescaped backslash, quote, or
        # newline inside a label value corrupts the exposition stream.
        assert '"a\\b"' not in text
        assert "\nd\"" not in text

    def test_every_sample_line_parses(self):
        reg = TelemetryRegistry()
        reg.counter("neptune_a_total", {"k": 'x"y'}, "h").inc()
        reg.gauge("neptune_b", {"k": "p\\q", "op": "line1\nline2"}, "h").set(2)
        reg.histogram("neptune_c_seconds", {"k": "plain"}, "h").observe(0.5)
        for line in to_prometheus(reg).splitlines():
            if line.startswith("#") or not line:
                continue
            assert SAMPLE_LINE.match(line), f"unparseable sample line: {line!r}"


class TestHelpEscaping:
    def test_backslash_and_newline_escaped_quote_literal(self):
        reg = TelemetryRegistry()
        reg.counter("neptune_test_total", None, 'back\\slash "quoted"\nnext').inc()
        help_line = next(
            l for l in to_prometheus(reg).splitlines() if l.startswith("# HELP")
        )
        assert "back\\\\slash" in help_line
        assert "\\n" in help_line
        # Per the format spec HELP text keeps double quotes literal.
        assert '"quoted"' in help_line
        assert "\n" not in help_line.replace("\\n", "")


class TestNameValidation:
    def test_invalid_metric_name_rejected(self):
        reg = TelemetryRegistry()
        with pytest.raises(ValueError, match="metric name"):
            reg.counter("neptune-bad-total", None, "h")
        with pytest.raises(ValueError, match="metric name"):
            reg.gauge("0starts_with_digit", None, "h")

    def test_colons_and_underscores_allowed(self):
        reg = TelemetryRegistry()
        reg.counter("neptune:job:packets_total", None, "h").inc()
        assert "neptune:job:packets_total 1" in to_prometheus(reg)

    def test_invalid_label_name_rejected(self):
        reg = TelemetryRegistry()
        with pytest.raises(ValueError, match="label name"):
            reg.gauge("neptune_g", {"bad-label": "v"}, "h")

    def test_exported_names_conform(self):
        # Meta-check: everything the observer self-scrape exports obeys
        # the grammar (guards future metric additions).
        obs = RuntimeObserver()
        obs.event("runtime", "batch_executed", operator="relay[0]")
        bridge.scrape_observer(obs)
        for sample in obs.registry.collect():
            assert METRIC_NAME.match(sample.name), sample.name


class TestTimelineDropAccounting:
    def test_ring_wrap_counts_drops(self):
        tl = EventTimeline(capacity=4)
        for i in range(7):
            tl.record("t", "e", i=i)
        assert tl.dropped == 3
        assert tl.evicted == 3
        assert len(tl) == 4

    def test_within_capacity_drops_zero(self):
        tl = EventTimeline(capacity=8)
        for i in range(8):
            tl.record("t", "e", i=i)
        assert tl.dropped == 0

    def test_snapshot_and_scrape_carry_drops(self):
        obs = RuntimeObserver(timeline_capacity=2)
        for i in range(5):
            obs.event("t", "e", i=i)
        snap = snapshot(obs)
        assert snap["timeline_dropped"] == 3
        bridge.scrape_observer(obs)
        text = to_prometheus(obs.registry)
        assert "neptune_timeline_dropped_total 3" in text
