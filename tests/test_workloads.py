"""Tests for workload generators: IoT fleet, DEBS manufacturing, operators."""

import pytest

from repro.compression import shannon_entropy
from repro.core.serde import PacketCodec
from repro.workloads import RELAY_SCHEMA, CountingSource, ReplaySource
from repro.workloads.debs import (
    MANUFACTURING_SCHEMA,
    ManufacturingStream,
)
from repro.workloads.iot import SENSOR_SCHEMA, SensorFleet


class TestSensorFleet:
    def test_generates_requested_count(self):
        fleet = SensorFleet(n_sensors=4)
        pkts = list(fleet.packets(100))
        assert len(pkts) == 100
        assert all(p.schema == SENSOR_SCHEMA for p in pkts)
        assert all(p.is_complete() for p in pkts)

    def test_round_robin_sensor_ids(self):
        fleet = SensorFleet(n_sensors=3)
        ids = [p["sensor_id"] for p in fleet.packets(6)]
        assert ids == [f"sensor-{i:04d}" for i in (0, 1, 2, 0, 1, 2)]

    def test_timestamps_monotone_per_sensor(self):
        fleet = SensorFleet(n_sensors=2, period_ms=500)
        ts = [p["ts"] for p in fleet.packets(8) if p["sensor_id"] == "sensor-0000"]
        assert ts == sorted(ts)
        assert ts[1] - ts[0] == 500

    def test_small_packet_regime(self):
        """IoT packets should be in the paper's 50-400 B range."""
        fleet = SensorFleet()
        codec = PacketCodec(SENSOR_SCHEMA)
        sizes = [len(codec.encode(p)) for p in fleet.packets(20)]
        assert all(50 <= s <= 400 for s in sizes)

    def test_temperature_physically_plausible(self):
        fleet = SensorFleet(n_sensors=8)
        temps = [p["temperature"] for p in fleet.packets(500)]
        assert all(-10 < t < 40 for t in temps)

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorFleet(n_sensors=0)
        with pytest.raises(ValueError):
            SensorFleet(period_ms=0)


class TestManufacturingStream:
    def test_66_fields(self):
        assert len(MANUFACTURING_SCHEMA) == 66

    def test_generates_complete_packets(self):
        stream = ManufacturingStream()
        pkts = list(stream.packets(50))
        assert len(pkts) == 50
        assert all(p.is_complete() for p in pkts)

    def test_low_entropy_serialized_stream(self):
        """§III-B5: 'sensor readings do not change frequently over time
        which results in a low entropy when consecutive stream packets
        are buffered together'."""
        stream = ManufacturingStream()
        body = stream.serialized_stream(500)
        assert shannon_entropy(body) < 6.0

    def test_compresses_much_better_than_random(self):
        import random

        from repro.lz4 import compress

        stream = ManufacturingStream()
        body = stream.serialized_stream(300)
        rng = random.Random(0)
        noise = bytes(rng.getrandbits(8) for _ in range(len(body)))
        assert len(compress(body)) < 0.35 * len(body)
        assert len(compress(noise)) > 0.95 * len(noise)

    def test_valve_actuates_after_sensor_change(self):
        stream = ManufacturingStream(state_change_prob=0.05, seed=3)
        list(stream.packets(2000))
        assert stream.actuation_log, "no state changes generated"
        for _sensor, change_ms, actuation_ms in stream.actuation_log:
            assert actuation_ms > change_ms
            delay = actuation_ms - change_ms
            assert 10 <= delay <= 60 + 1  # 40ms ± 50%

    def test_actuation_visible_in_stream(self):
        stream = ManufacturingStream(state_change_prob=0.05, seed=5)
        pkts = list(stream.packets(3000))
        # Find a logged actuation and confirm valve matches sensor after.
        sensor, change_ms, act_ms = stream.actuation_log[0]
        after = [p for p in pkts if p["ts"] > act_ms][:5]
        assert after
        for p in after[:1]:
            assert p[f"valve_{sensor + 1}"] == p[f"additive_sensor_{sensor + 1}"]

    def test_timestamps_sequential(self):
        stream = ManufacturingStream(period_ms=10)
        ts = [p["ts"] for p in stream.packets(10)]
        assert all(b - a == 10 for a, b in zip(ts, ts[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ManufacturingStream(period_ms=0)
        with pytest.raises(ValueError):
            ManufacturingStream(state_change_prob=1.5)


class TestReferenceOperators:
    def test_counting_source_payload_size(self):
        src = CountingSource(total=5, payload_size=128)
        codec = PacketCodec(RELAY_SCHEMA)

        class Ctx:
            def __init__(self):
                self.emitted = []

            def new_packet(self, stream=None):
                from repro.core.packet import StreamPacket

                return StreamPacket(RELAY_SCHEMA)

            def emit(self, pkt, stream=None):
                self.emitted.append(pkt)

            def finish(self):
                self.finished = True

        ctx = Ctx()
        for _ in range(6):
            src.generate(ctx)
        assert len(ctx.emitted) == 5
        assert getattr(ctx, "finished", False)
        assert len(ctx.emitted[0]["payload"]) == 128
        assert [p["seq"] for p in ctx.emitted] == list(range(5))
        assert len(codec.encode(ctx.emitted[0])) >= 128

    def test_replay_source_finishes(self):
        pkts = [RELAY_SCHEMA.new_packet(seq=i, emitted_at=0.0, payload=b"") for i in range(3)]
        src = ReplaySource(pkts, RELAY_SCHEMA)

        class Ctx:
            emitted = []

            def emit(self, pkt, stream=None):
                self.emitted.append(pkt)

            def finish(self):
                self.finished = True

        ctx = Ctx()
        for _ in range(4):
            src.generate(ctx)
        assert len(ctx.emitted) == 3
        assert getattr(ctx, "finished", False)


class TestBatchOverheadSink:
    def test_pays_per_batch_not_per_packet(self, monkeypatch):
        from repro.workloads import BatchOverheadSink

        sleeps = []
        sink = BatchOverheadSink(overhead=0.25)
        monkeypatch.setattr(
            "repro.workloads.operators.time.sleep", lambda s: sleeps.append(s)
        )
        pkt = RELAY_SCHEMA.new_packet(seq=0, emitted_at=0.0, payload=b"")
        # Two batches of very different sizes cost the same overhead.
        sink.on_batch_start(1, None)
        sink.process(pkt, None)
        sink.on_batch_start(500, None)
        for _ in range(3):
            sink.process(pkt, None)
        assert sleeps == [0.25, 0.25]
        assert sink.batches == 2
        assert sink.seen == 4

    def test_audit_file_records_selected_fields(self, tmp_path):
        from repro.workloads import BatchOverheadSink

        path = tmp_path / "audit.txt"
        sink = BatchOverheadSink(overhead=0.0, path=str(path), field="seq,emitted_at")
        for i in range(3):
            pkt = RELAY_SCHEMA.new_packet(seq=i, emitted_at=float(i), payload=b"")
            sink.process(pkt, None)
        assert path.read_text().splitlines() == [
            "0,0.0",
            "1,1.0",
            "2,2.0",
        ]
