"""Condition-based wait helpers shared by the networking tests.

Sleep-polling (``while not done: time.sleep(...)``) makes suites both
slow (fixed sleeps sized for the worst machine) and flaky (sleeps sized
for the best one).  These helpers block on conditions instead: tests
wake the moment the state they await materializes, and time out loudly
when it never does.
"""

import threading
import time


def wait_until(predicate, timeout=5.0, interval=0.002):
    """Poll ``predicate`` until truthy or ``timeout``; returns its last value.

    The fallback for states with no event to wait on (e.g. another
    component's counter).  The interval is short because the predicate
    is assumed cheap.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return predicate()


def wait_stalled(sample, quiet=0.25, timeout=10.0):
    """Block until ``sample()`` stops changing for ``quiet`` seconds.

    Returns the stable value (or the latest one on timeout).  Used for
    "the sender must stall under backpressure" assertions: instead of
    sleeping a fixed guess and hoping the stall happened, wait for the
    counter to actually flatline.
    """
    deadline = time.monotonic() + timeout
    last = sample()
    last_change = time.monotonic()
    while time.monotonic() < deadline:
        time.sleep(quiet / 10)
        current = sample()
        if current != last:
            last = current
            last_change = time.monotonic()
        elif time.monotonic() - last_change >= quiet:
            return current
    return last


class FrameCollector:
    """A transport/listener sink that supports waiting for arrivals.

    Use as ``TcpListener(..., sink=collector)``; tests then block on
    :meth:`wait` instead of sleep-polling a plain list.
    """

    def __init__(self):
        self.frames = []
        self._cond = threading.Condition()

    def __call__(self, frame):
        with self._cond:
            self.frames.append(frame)
            self._cond.notify_all()

    def __len__(self):
        with self._cond:
            return len(self.frames)

    def wait(self, n, timeout=10.0):
        """Block until at least ``n`` frames arrived; True on success."""
        with self._cond:
            return self._cond.wait_for(lambda: len(self.frames) >= n, timeout)

    def snapshot(self):
        """A consistent copy of the frames received so far."""
        with self._cond:
            return list(self.frames)
