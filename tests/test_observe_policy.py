"""The elasticity policy engine: doctor → policy handoff, the decision
table, cooldown/cap suppression, recovery reverts, and the byte-identical
action-log determinism contract."""

import json

import pytest

from repro.observe import (
    PolicyConfig,
    PolicyEngine,
    ReconfigAction,
    RuntimeObserver,
    action_to_changes,
    apply_action,
    diagnose,
)
from repro.observe.export import snapshot


def _event(ts, category, name, **attrs):
    return {"ts": ts, "category": category, "name": name, "attrs": attrs}


def _snap(events, **extra):
    snap = {"instruments": [], "timeline": events, "traces": {}}
    snap.update(extra)
    return snap


def stalled_sink_snapshot():
    """A seeded stalled-sink episode: the sink's inbound gate closes,
    throttles the relay, and the relay's p99 SLO breaches — the doctor
    must blame the sink's backpressure cascade."""
    return _snap(
        [
            _event(
                5.0, "flowcontrol", "gate_closed",
                operator="sink[0]", throttles=["relay"],
            ),
            _event(
                6.0, "health", "slo_breach",
                slo="relay.p99_latency", kind="p99_latency", operator="relay",
                value=0.5, threshold=0.01,
            ),
        ]
    )


def no_cause_snapshot():
    """A breach with nothing on the timeline to blame."""
    return _snap(
        [
            _event(
                6.0, "health", "slo_breach",
                slo="relay.p99_latency", kind="p99_latency", operator="relay",
                value=0.5, threshold=0.01,
            ),
        ]
    )


class TestDoctorHandoff:
    def test_stalled_sink_root_cause_drives_exactly_one_retune(self):
        report = diagnose(stalled_sink_snapshot())
        assert report["root_cause"]["type"] == "backpressure_cascade"
        assert report["root_cause"]["operator"] == "sink"
        engine = PolicyEngine()
        actions = engine.observe(10, [("relay.p99_latency", "breach")], report)
        assert len(actions) == 1
        action = actions[0]
        assert action.kind == "retune"
        assert action.operator == "sink"
        assert action.params["where"] == "into"
        assert action.params["max_delay"] == engine.config.retune_max_delay
        assert action.params["capacity"] == engine.config.retune_capacity
        # The same breach re-reported next scan is inside the cooldown:
        # exactly one retune total.
        again = engine.observe(11, [("relay.p99_latency", "breach")], report)
        assert again == []
        assert len(engine.decisions) == 1
        assert engine.suppressed == 1

    def test_breach_without_attributable_cause_takes_no_action(self):
        report = diagnose(no_cause_snapshot())
        assert report["root_cause"] is None
        observer = RuntimeObserver()
        engine = PolicyEngine()
        actions = engine.observe(
            10, [("relay.p99_latency", "breach")], report, observer
        )
        assert actions == []
        assert engine.decisions == []
        assert engine.no_cause == 1
        assert engine.warnings and "no attributable root cause" in engine.warnings[0]
        events = [
            e for e in snapshot(observer)["timeline"] if e["category"] == "policy"
        ]
        assert any(e["name"] == "no_action" for e in events)

    def test_policy_action_lands_on_the_timeline(self):
        observer = RuntimeObserver()
        engine = PolicyEngine()
        report = diagnose(stalled_sink_snapshot())
        engine.observe(10, [("relay.p99_latency", "breach")], report, observer)
        events = [
            e for e in snapshot(observer)["timeline"] if e["category"] == "policy"
        ]
        assert any(
            e["name"] == "action" and e["attrs"]["kind"] == "retune" for e in events
        )


class TestDecisionTable:
    def _report(self, cause_type, operator="sink", worker=None, stage=None):
        episode = {
            "slo": "s.p99_latency",
            "operator": operator,
            "causes": [
                {
                    "type": cause_type,
                    "operator": operator,
                    "worker": worker,
                    "score": 3.0,
                    "detail": "synthetic",
                    "rank": 1,
                }
            ],
            "dominant_stage": stage,
        }
        return {
            "healthy": False,
            "breaches": [episode],
            "root_cause": dict(episode["causes"][0]),
        }

    def test_execute_bound_breach_scales_then_reverts_on_recover(self):
        report = self._report(
            "backpressure_cascade",
            worker=1,
            stage={"stage": "execute", "seconds": 1.0, "fraction": 0.9},
        )
        engine = PolicyEngine()
        actions = engine.observe(5, [("s.p99_latency", "breach")], report)
        assert [a.kind for a in actions] == ["scale"]
        assert actions[0].params["workers_delta"] == engine.config.scale_step
        assert actions[0].worker == 1
        revert = engine.observe(40, [("s.p99_latency", "recover")], report)
        assert [a.kind for a in revert] == ["scale"]
        assert revert[0].params["workers_delta"] == -engine.config.scale_step
        assert revert[0].cause == "recovered"

    def test_buffer_bound_breach_retunes_not_scales(self):
        report = self._report(
            "backpressure_cascade",
            stage={"stage": "flush", "seconds": 1.0, "fraction": 0.9},
        )
        actions = PolicyEngine().observe(5, [("s.p99_latency", "breach")], report)
        assert [a.kind for a in actions] == ["retune"]

    def test_compute_bound_breach_scales_then_reverts_on_recover(self):
        # The profiler's attribution is direct evidence the operator is
        # burning CPU, so the policy scales without needing a dominant
        # execute stage from the traces.
        report = self._report("compute_bound", operator="spin", worker="1")
        engine = PolicyEngine()
        actions = engine.observe(5, [("s.p99_latency", "breach")], report)
        assert [a.kind for a in actions] == ["scale"]
        assert actions[0].operator == "spin"
        assert actions[0].worker == 1  # engine normalizes worker ids to int
        assert actions[0].params["workers_delta"] == engine.config.scale_step
        assert "dominates sampled CPU" in actions[0].reason
        revert = engine.observe(40, [("s.p99_latency", "recover")], report)
        assert [a.kind for a in revert] == ["scale"]
        assert revert[0].params["workers_delta"] == -engine.config.scale_step
        assert revert[0].cause == "recovered"

    def test_injected_fault_with_worker_migrates(self):
        report = self._report("injected_fault", worker="2")
        actions = PolicyEngine().observe(5, [("s.p99_latency", "breach")], report)
        assert [a.kind for a in actions] == ["migrate"]
        assert actions[0].params == {"operator": "sink", "from_worker": 2}

    def test_injected_fault_without_worker_warns(self):
        report = self._report("injected_fault", worker=None)
        engine = PolicyEngine()
        assert engine.observe(5, [("s.p99_latency", "breach")], report) == []
        assert engine.warnings and "cannot migrate" in engine.warnings[0]

    def test_transport_cause_is_not_actionable(self):
        report = self._report("transport")
        engine = PolicyEngine()
        assert engine.observe(5, [("s.p99_latency", "breach")], report) == []
        assert engine.warnings and "not actionable" in engine.warnings[0]

    def test_per_operator_cap_is_a_lifetime_brake(self):
        report = self._report("backpressure_cascade")
        engine = PolicyEngine(PolicyConfig(cooldown_scans=0, max_actions_per_operator=2))
        for scan in range(5):
            engine.observe(scan, [("s.p99_latency", "breach")], report)
        assert len(engine.decisions) == 2
        assert engine.suppressed == 3

    def test_status_summarizes(self):
        report = self._report("backpressure_cascade")
        engine = PolicyEngine()
        engine.observe(5, [("s.p99_latency", "breach")], report)
        status = engine.status()
        assert status["actions"] == 1
        assert status["actions_by_kind"] == {"retune": 1}
        assert status["last_actions"][0]["kind"] == "retune"
        assert status["scans"] == 1


class TestDeterminism:
    def _drive(self):
        """One synthetic breach/recover schedule over several scans."""
        engine = PolicyEngine(PolicyConfig(cooldown_scans=3))
        stalled = diagnose(stalled_sink_snapshot())
        empty = diagnose(no_cause_snapshot())
        schedule = [
            (1, [], stalled),
            (2, [("relay.p99_latency", "breach")], stalled),
            (3, [("relay.p99_latency", "breach")], stalled),
            (4, [], stalled),
            (5, [("other.p99_latency", "breach")], empty),
            (6, [("relay.p99_latency", "recover")], stalled),
            (9, [("relay.p99_latency", "breach")], stalled),
        ]
        for scan, transitions, report in schedule:
            engine.observe(scan, transitions, report)
        return engine

    def test_identical_runs_produce_byte_identical_action_logs(self):
        log_a = self._drive().action_log()
        log_b = self._drive().action_log()
        assert log_a == log_b
        assert "\n".join(log_a).encode() == "\n".join(log_b).encode()
        assert log_a  # the schedule does produce actions

    def test_action_line_is_canonical_json(self):
        action = ReconfigAction(
            scan=3,
            kind="retune",
            operator="sink",
            slo="s",
            cause="backpressure_cascade",
            reason="r",
            params={"b": 2, "a": 1},
        )
        line = action.as_line()
        assert json.loads(line)["params"] == {"a": 1, "b": 2}
        # Sorted keys, fixed separators: canonical bytes.
        assert line.index('"cause"') < line.index('"kind"') < line.index('"scan"')
        assert ", " not in line


class _FakeTarget:
    def __init__(self):
        self.calls = []

    def reconfigure(self, changes):
        self.calls.append(changes)
        return {"worker": 0, "applied": [{"kind": "noop"}]}


class TestApply:
    def test_action_to_changes_retune_and_scale(self):
        retune = ReconfigAction(
            scan=1, kind="retune", operator="sink", slo="s", cause="c", reason="r",
            params={"operator": "sink", "where": "into", "max_delay": 0.05,
                    "capacity": 1024},
        )
        assert action_to_changes(retune) == {
            "retune": {
                "operator": "sink",
                "where": "into",
                "max_delay": 0.05,
                "capacity": 1024,
            }
        }
        scale = ReconfigAction(
            scan=1, kind="scale", operator="sink", slo="s", cause="c", reason="r",
            params={"workers_delta": 2},
        )
        assert action_to_changes(scale) == {"scale": {"workers_delta": 2}}

    def test_migrate_is_not_worker_local(self):
        migrate = ReconfigAction(
            scan=1, kind="migrate", operator="sink", slo="s", cause="c", reason="r",
            params={"operator": "sink", "from_worker": 0},
        )
        with pytest.raises(ValueError, match="not a worker-local"):
            action_to_changes(migrate)

    def test_apply_action_calls_reconfigure(self):
        target = _FakeTarget()
        action = ReconfigAction(
            scan=1, kind="scale", operator="sink", slo="s", cause="c", reason="r",
            params={"workers_delta": 1},
        )
        report = apply_action(target, action)
        assert target.calls == [{"scale": {"workers_delta": 1}}]
        assert report["applied"] == [{"kind": "noop"}]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cooldown_scans": -1},
            {"max_actions_per_operator": 0},
            {"retune_max_delay": 0.0},
            {"retune_capacity": 0},
            {"scale_step": 0},
            {"execute_stage_fraction": 0.0},
            {"execute_stage_fraction": 1.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            PolicyConfig(**kwargs)
