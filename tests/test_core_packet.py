"""Tests for field types, packet schemas, and stream packets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FieldType, PacketSchema, StreamPacket
from repro.core.fieldtypes import decode_field, encode_field, validate_value
from repro.util.errors import SerializationError


SENSOR = PacketSchema(
    [
        ("ts", FieldType.INT64),
        ("sensor_id", FieldType.STRING),
        ("value", FieldType.FLOAT64),
        ("ok", FieldType.BOOL),
    ]
)


class TestFieldTypes:
    @pytest.mark.parametrize(
        "ftype,value",
        [
            (FieldType.BOOL, True),
            (FieldType.BOOL, False),
            (FieldType.INT32, -(2**31)),
            (FieldType.INT32, 2**31 - 1),
            (FieldType.INT64, 2**62),
            (FieldType.FLOAT32, 0.5),
            (FieldType.FLOAT64, 3.141592653589793),
            (FieldType.STRING, ""),
            (FieldType.STRING, "温度計"),
            (FieldType.BYTES, b"\x00\xff"),
            (FieldType.FLOAT64_LIST, [1.0, -2.5, 3.75]),
            (FieldType.INT64_LIST, [1, 2, 3]),
            (FieldType.FLOAT64_LIST, []),
        ],
    )
    def test_roundtrip(self, ftype, value):
        buf = bytearray()
        encode_field(ftype, value, buf)
        decoded, end = decode_field(ftype, bytes(buf), 0)
        assert end == len(buf)
        assert decoded == value

    def test_int32_overflow_rejected(self):
        with pytest.raises(SerializationError):
            encode_field(FieldType.INT32, 2**31, bytearray())

    def test_int64_overflow_rejected(self):
        with pytest.raises(SerializationError):
            encode_field(FieldType.INT64, 2**63, bytearray())

    def test_wrong_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_field(FieldType.STRING, 42, bytearray())

    def test_truncated_string(self):
        buf = bytearray()
        encode_field(FieldType.STRING, "hello", buf)
        with pytest.raises(SerializationError):
            decode_field(FieldType.STRING, bytes(buf[:-2]), 0)

    def test_truncated_fixed(self):
        with pytest.raises(SerializationError):
            decode_field(FieldType.INT64, b"\x01\x02", 0)

    def test_fixed_sizes(self):
        assert FieldType.INT64.fixed_size == 8
        assert FieldType.BOOL.fixed_size == 1
        assert FieldType.STRING.fixed_size is None

    def test_validate_value_bool_not_int(self):
        assert validate_value(FieldType.BOOL, True)
        assert not validate_value(FieldType.INT64, True)  # bool is not an int here
        assert not validate_value(FieldType.BOOL, 1)


class TestPacketSchema:
    def test_basic_properties(self):
        assert SENSOR.names == ("ts", "sensor_id", "value", "ok")
        assert len(SENSOR) == 4
        assert SENSOR.type_of("value") is FieldType.FLOAT64
        assert SENSOR.index_of("ok") == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PacketSchema([("a", FieldType.INT64), ("a", FieldType.BOOL)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PacketSchema([])

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            PacketSchema([("", FieldType.INT64)])

    def test_unknown_field_keyerror(self):
        with pytest.raises(KeyError, match="no field"):
            SENSOR.index_of("nope")

    def test_equality_and_hash(self):
        again = PacketSchema(list(SENSOR))
        assert again == SENSOR
        assert hash(again) == hash(SENSOR)
        other = PacketSchema([("x", FieldType.INT64)])
        assert other != SENSOR

    def test_string_types_accepted(self):
        s = PacketSchema([("a", "int64"), ("b", "string")])
        assert s.type_of("a") is FieldType.INT64

    def test_dict_roundtrip(self):
        assert PacketSchema.from_dict(SENSOR.to_dict()) == SENSOR

    def test_new_packet_prefilled(self):
        pkt = SENSOR.new_packet(ts=5, sensor_id="s1", value=1.5, ok=True)
        assert pkt.is_complete()
        assert pkt["ts"] == 5


class TestStreamPacket:
    def test_set_get(self):
        pkt = StreamPacket(SENSOR)
        pkt.set("ts", 100).set("sensor_id", "a").set("value", 2.0).set("ok", False)
        assert pkt.get("ts") == 100
        assert pkt["sensor_id"] == "a"
        assert pkt.get_at(2) == 2.0

    def test_setitem(self):
        pkt = StreamPacket(SENSOR)
        pkt["ts"] = 7
        assert pkt["ts"] == 7

    def test_type_enforcement(self):
        pkt = StreamPacket(SENSOR)
        with pytest.raises(SerializationError):
            pkt.set("ts", "not-an-int")
        with pytest.raises(SerializationError):
            pkt.set("ok", 1)

    def test_is_complete(self):
        pkt = StreamPacket(SENSOR)
        assert not pkt.is_complete()
        pkt.set("ts", 1).set("sensor_id", "x").set("value", 0.0).set("ok", True)
        assert pkt.is_complete()

    def test_reset_for_reuse(self):
        pkt = SENSOR.new_packet(ts=1, sensor_id="x", value=0.0, ok=True)
        pkt.reset()
        assert not pkt.is_complete()
        assert pkt.get("ts") is None

    def test_clone_is_detached(self):
        pkt = SENSOR.new_packet(ts=1, sensor_id="x", value=0.0, ok=True)
        twin = pkt.clone()
        pkt.set("ts", 99)
        assert twin["ts"] == 1
        assert twin == SENSOR.new_packet(ts=1, sensor_id="x", value=0.0, ok=True)

    def test_copy_from_schema_mismatch(self):
        other = PacketSchema([("z", FieldType.INT64)]).new_packet(z=1)
        with pytest.raises(SerializationError):
            StreamPacket(SENSOR).copy_from(other)

    def test_to_dict(self):
        pkt = SENSOR.new_packet(ts=1, sensor_id="x", value=0.5, ok=True)
        assert pkt.to_dict() == {"ts": 1, "sensor_id": "x", "value": 0.5, "ok": True}


@settings(max_examples=100, deadline=None)
@given(
    ts=st.integers(min_value=-(2**63), max_value=2**63 - 1),
    sid=st.text(max_size=50),
    value=st.floats(allow_nan=False, allow_infinity=False),
    ok=st.booleans(),
)
def test_packet_values_property(ts, sid, value, ok):
    pkt = SENSOR.new_packet(ts=ts, sensor_id=sid, value=value, ok=ok)
    assert pkt.values == (ts, sid, value, ok)
    assert pkt.clone() == pkt
