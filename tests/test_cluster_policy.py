"""Live elasticity: SLO breach → policy action → measurable heal.

Two real-process scenarios close the loop the unit suites verify in
pieces (`test_observe_policy` for decisions, `test_control_plane` for
the reconfigure command, `test_granules` for pool resize):

- **Self-healing retune** — a sink that pays a fixed per-*batch*
  overhead drowns in the tiny frames a small capacity cut produces.
  Its inbound backlog breaches a ``buffer_occupancy`` SLO, the doctor
  blames the sink's backpressure cascade, and the policy engine issues
  one ``batch_up`` retune of the legs feeding the sink.  The backlog
  then drains *without restarting anything* and the monitor recovers.
  Exactly-once is audited from the sink's on-disk record.

- **Operator migration** — `migrate_operator` moves a mid-pipeline
  relay to another worker by re-verified re-plan + kill/restart
  splicing of the replay closure.  The surviving sink worker's
  link-id-keyed trackers suppress the replayed prefix, so the on-disk
  record still holds exactly one line per packet.  The NEPG138 safety
  interlocks (never restart a sink host, never migrate a sink) are
  asserted on the same live cluster before the real move.

Everything here imports :mod:`procharness`, so it stays behind
``@pytest.mark.cluster`` — tier-1 never spawns processes.
"""

import json
from pathlib import Path

import pytest
from procharness import drain, live_cluster, wait_until

from repro.cluster import build_plan
from repro.core import NeptuneConfig, StreamProcessingGraph
from repro.core.graph import descriptor_factory
from repro.observe import SLO
from repro.util.errors import NeptuneError

pytestmark = pytest.mark.cluster


# ---------------------------------------------------------------------------
# self-healing retune: breach -> policy -> drain -> recover, no restart
# ---------------------------------------------------------------------------

HEAL_TOTAL = 4000

#: Fixed cost the sink pays per BATCH (not per packet): tiny frames
#: multiply it, big frames amortize it — the retune is a genuine cure,
#: not a coincidence of the workload finishing.
BATCH_OVERHEAD = 0.015

#: Bytes of sink inbound backlog that count as a breach; well under the
#: high watermark so the gauge can actually cross it.
OCCUPANCY_THRESHOLD = 2048.0


def heal_graph(audit_path):
    # Small capacity cut => frames of a handful of packets => the sink
    # spends almost all its time in per-batch overhead and its inbound
    # channel backs up against the watermark.
    graph = StreamProcessingGraph(
        "cluster-policy-heal",
        config=NeptuneConfig(
            buffer_capacity=256,
            buffer_max_delay=0.5,
            inbound_high_watermark=16384,
        ),
    )
    graph.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:CountingSource",
            total=HEAL_TOTAL,
            payload_size=24,
        ),
    )
    graph.add_processor(
        "relay", descriptor_factory("repro.workloads.operators:RelayProcessor")
    )
    graph.add_processor(
        "sink",
        descriptor_factory(
            "repro.workloads.operators:BatchOverheadSink",
            overhead=BATCH_OVERHEAD,
            path=str(audit_path),
        ),
    )
    graph.link("source", "relay")
    graph.link("relay", "sink")
    return graph


@pytest.mark.slow
def test_policy_heals_stalled_sink_without_restart(tmp_path):
    audit_path = tmp_path / "delivered.txt"
    log_dir = tmp_path / "logs"
    log_dir.mkdir()
    graph = heal_graph(audit_path)
    plan = build_plan(graph, n_workers=2, pin={"source": 0, "relay": 0, "sink": 1})

    slo = SLO(
        "sink-backlog",
        "buffer_occupancy",
        threshold=OCCUPANCY_THRESHOLD,
        operator="sink",
        for_scans=2,
        clear_scans=2,
        warmup_scans=1,
    )

    with live_cluster(
        graph,
        n_workers=2,
        plan=plan,
        observe={},
        slos=[slo],
        collect_interval=0.1,
        policy=True,
        log_dir=str(log_dir),
    ) as coordinator:
        engine = coordinator.policy
        assert engine is not None
        monitor = coordinator.collector.health.monitors[0]

        # Breach fires, the doctor attributes it, and the engine acts.
        assert wait_until(
            lambda: len(engine.decisions) >= 1, timeout=60.0
        ), f"policy never acted; warnings={engine.warnings!r}"

        # The heal: backlog drains below the SLO and the monitor
        # returns to "ok" — with every worker's original process.
        assert wait_until(
            lambda: monitor.breaches >= 1 and monitor.status == "ok",
            timeout=90.0,
        ), f"monitor never recovered: {monitor.as_dict()!r}"

        drain(coordinator)
        assert coordinator.job.failures() == {}
        assert all(h.restarts == 0 for h in coordinator.handles), (
            "the heal must come from reconfiguration, not a restart"
        )

    # Decision plane: the stalled sink maps to batch_up retunes of the
    # legs INTO the sink — never a migrate or restart.
    assert {a.kind for a in engine.decisions} == {"retune"}
    first = engine.decisions[0]
    assert first.operator == "sink"
    assert first.cause == "backpressure_cascade"
    assert first.params["where"] == "into"
    assert coordinator.policy_errors == 0

    # Act plane: some worker really retuned a `...->sink[...]` buffer
    # to the policy's deadline target, live.
    retuned = [
        change
        for entry in coordinator.policy_applied
        for report in entry["applied"]
        for change in report.get("applied", [])
        if change["kind"] == "retune" and "->sink[" in change["buffer"]
    ]
    assert retuned, f"no sink leg was retuned: {coordinator.policy_applied!r}"
    assert retuned[0]["max_delay"][1] == first.params["max_delay"]

    # Action log: one canonical JSON line per decision, byte-equal to
    # the engine's own log (the determinism contract's observable).
    log_lines = Path(coordinator.policy_log_path).read_text().splitlines()
    assert log_lines == engine.action_log()
    assert json.loads(log_lines[0])["kind"] == "retune"
    assert coordinator.state()["policy"]["enabled"] is True

    # Data plane: reconfiguration lost and duplicated nothing.
    delivered = [int(line) for line in audit_path.read_text().splitlines()]
    assert sorted(delivered) == list(range(HEAL_TOTAL))


# ---------------------------------------------------------------------------
# operator migration: verified re-plan + replay-closure restart
# ---------------------------------------------------------------------------

MIGRATE_TOTAL = 2000
MIGRATE_AT = 200  # sink packets observed before the move


def migrate_graph(audit_path):
    # Chaos-suite determinism contract: fixed-size records, frames cut
    # by capacity only (huge flush timer), so the restarted shards'
    # replay reproduces the first run's frame boundaries and the
    # surviving sink worker suppresses the duplicated prefix wholesale.
    graph = StreamProcessingGraph(
        "cluster-policy-migrate",
        config=NeptuneConfig(buffer_capacity=2048, buffer_max_delay=3600.0),
    )
    graph.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:CountingSource",
            total=MIGRATE_TOTAL,
            payload_size=24,
        ),
    )
    graph.add_processor(
        "relayA", descriptor_factory("repro.workloads.operators:RelayProcessor")
    )
    graph.add_processor(
        "relayB", descriptor_factory("repro.workloads.operators:RelayProcessor")
    )
    graph.add_processor(
        "sink",
        descriptor_factory("repro.workloads.operators:FileSink", path=str(audit_path)),
    )
    graph.link("source", "relayA")
    graph.link("relayA", "relayB")
    graph.link("relayB", "sink")
    return graph


def _sink_packets(handle):
    try:
        return handle.proxy.metrics().get("sink", {}).get("packets_in", 0)
    except Exception:
        return 0


@pytest.mark.chaos
def test_migrate_operator_preserves_exactly_once(tmp_path):
    audit_path = tmp_path / "delivered.txt"
    graph = migrate_graph(audit_path)
    # relayB shares worker 1 with relayA: it is restarted as collateral
    # (same shard) even though only {source, relayA} form the replay
    # closure — its own replayed output is suppressed by the surviving
    # sink worker's trackers.
    plan = build_plan(
        graph,
        n_workers=3,
        pin={"source": 0, "relayA": 1, "relayB": 1, "sink": 2},
    )

    with live_cluster(graph, n_workers=3, plan=plan) as coordinator:
        sink_handle = coordinator.handles[2]
        assert wait_until(
            lambda: _sink_packets(sink_handle) >= MIGRATE_AT, timeout=90.0
        ), "sink never reached the migration threshold"

        # Interlock 1: a sink's effects already escaped — migrating it
        # is refused before any process is touched.
        with pytest.raises(NeptuneError, match="sink"):
            coordinator.migrate_operator("sink", 0)

        # Interlock 2: the target worker joins the restart set; if it
        # hosts a sink, the move is refused.
        with pytest.raises(NeptuneError, match="restart set"):
            coordinator.migrate_operator("relayA", 2)

        # Interlocks must be pure checks: nothing died, plan unchanged.
        assert all(h.alive for h in coordinator.handles)
        assert all(h.restarts == 0 for h in coordinator.handles)
        assert coordinator.plan.assignment[("relayA", 0)] == 1

        # The real move: relayA from worker 1 to worker 0.  Replay
        # closure {source, relayA} lives on {0, 1}; the sink's worker 2
        # survives with its tracker state intact.
        result = coordinator.migrate_operator("relayA", 0)
        assert result["operator"] == "relayA"
        assert result["from"] == [1]
        assert result["to"] == 0
        assert result["restarted"] == [0, 1]
        assert coordinator.handles[0].restarts == 1
        assert coordinator.handles[1].restarts == 1
        assert coordinator.handles[2].restarts == 0
        assert coordinator.plan.assignment[("relayA", 0)] == 0
        # The committed specs carry the converged plan: any future
        # restart (crash or policy) respawns into the new placement.
        raw = dict(coordinator.handles[2].spec.plan or {})
        assert ["relayA", 0, 0] in raw["assignment"]

        drain(coordinator)
        assert coordinator.job.failures() == {}

    # Exactly-once across the move: the replayed prefix was suppressed
    # by the surviving sink worker, the continuation was accepted.
    delivered = [int(line) for line in audit_path.read_text().splitlines()]
    assert sorted(delivered) == list(range(MIGRATE_TOTAL))
    assert len(delivered) == MIGRATE_TOTAL
