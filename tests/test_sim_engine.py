"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import Interrupt, Simulator


class TestScheduling:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        log = []

        def proc():
            yield 1.5
            log.append(sim.now)
            yield 0.5
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [1.5, 2.0]

    def test_deterministic_tie_break(self):
        sim = Simulator()
        log = []

        def proc(tag):
            yield 1.0
            log.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert log == ["a", "b", "c"]  # schedule order breaks ties

    def test_run_until(self):
        sim = Simulator()
        log = []

        def ticker():
            while True:
                yield 1.0
                log.append(sim.now)

        sim.process(ticker())
        sim.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def bad():
            yield -1.0

        sim.process(bad())
        with pytest.raises(ValueError):
            sim.run()

    def test_bad_yield_type_rejected(self):
        sim = Simulator()

        def bad():
            yield "nope"

        sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()

    def test_call_at(self):
        sim = Simulator()
        hits = []
        sim.call_at(2.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [2.0]

    def test_call_at_past_rejected(self):
        sim = Simulator()

        def idle():
            yield 5.0

        sim.process(idle())
        sim.run()
        assert sim.now == 5.0
        with pytest.raises(ValueError):
            sim.call_at(1.0, lambda: None)


class TestEvents:
    def test_wait_on_event_receives_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter():
            value = yield ev
            got.append((sim.now, value))

        def trigger():
            yield 2.0
            ev.succeed("payload")

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert got == [(2.0, "payload")]

    def test_wait_on_already_triggered_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(42)
        got = []

        def waiter():
            got.append((yield ev))

        sim.process(waiter())
        sim.run()
        assert got == [42]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_timeout_event_value(self):
        sim = Simulator()
        got = []

        def waiter():
            got.append((yield sim.timeout(3.0, "late")))

        sim.process(waiter())
        sim.run()
        assert got == ["late"]
        assert sim.now == 3.0

    def test_any_of_first_wins(self):
        sim = Simulator()
        got = []

        def waiter():
            got.append((yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])))

        sim.process(waiter())
        sim.run()
        assert got == ["fast"]


class TestProcesses:
    def test_wait_on_process_result(self):
        sim = Simulator()

        def child():
            yield 1.0
            return "done"

        got = []

        def parent():
            result = yield sim.process(child())
            got.append((sim.now, result))

        sim.process(parent())
        sim.run()
        assert got == [(1.0, "done")]

    def test_wait_on_finished_process(self):
        sim = Simulator()

        def child():
            return "fast"
            yield  # pragma: no cover

        proc = sim.process(child())
        sim.run()
        got = []

        def parent():
            got.append((yield proc))

        sim.process(parent())
        sim.run()
        assert got == ["fast"]

    def test_interrupt_raises_in_process(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield 100.0
            except Interrupt as i:
                log.append(("interrupted", sim.now, i.cause))

        proc = sim.process(sleeper())

        def killer():
            yield 2.0
            proc.interrupt("shutdown")

        sim.process(killer())
        sim.run()
        assert log == [("interrupted", 2.0, "shutdown")]

    def test_interrupt_while_waiting_on_event(self):
        sim = Simulator()
        ev = sim.event()
        log = []

        def waiter():
            try:
                yield ev
            except Interrupt:
                log.append(sim.now)

        proc = sim.process(waiter())

        def killer():
            yield 1.0
            proc.interrupt()

        sim.process(killer())
        sim.run()
        assert log == [1.0]
        # The interrupted process must no longer be woken by the event.
        ev.succeed()
        sim.run()
        assert log == [1.0]

    def test_unhandled_interrupt_terminates_quietly(self):
        sim = Simulator()

        def sleeper():
            yield 100.0

        proc = sim.process(sleeper())
        proc.interrupt()
        sim.run()
        assert proc.finished

    def test_yield_none_reschedules(self):
        sim = Simulator()
        order = []

        def a():
            order.append("a1")
            yield None
            order.append("a2")

        def b():
            order.append("b1")
            yield None
            order.append("b2")

        sim.process(a())
        sim.process(b())
        sim.run()
        assert order == ["a1", "b1", "a2", "b2"]
        assert sim.now == 0.0
