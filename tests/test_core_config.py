"""Tests for runtime configuration."""

import pytest

from repro.core import NeptuneConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = NeptuneConfig()
        assert cfg.buffer_capacity == 1 << 20  # "buffer size is set to 1 MB"
        assert cfg.buffer_max_delay == 0.010
        assert cfg.compression_enabled is False
        assert cfg.emit_timeout is None  # never drop by default

    def test_low_watermark_default_is_half(self):
        cfg = NeptuneConfig(inbound_high_watermark=1000)
        assert cfg.low_watermark() == 500

    def test_low_watermark_explicit(self):
        cfg = NeptuneConfig(inbound_high_watermark=1000, inbound_low_watermark=100)
        assert cfg.low_watermark() == 100


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"buffer_capacity": 0},
            {"buffer_capacity": -1},
            {"buffer_max_delay": 0},
            {"inbound_high_watermark": 0},
            {"inbound_low_watermark": 100, "inbound_high_watermark": 100},
            {"inbound_low_watermark": -1},
            {"worker_threads": 0},
            {"batch_max_packets": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NeptuneConfig(**kwargs)


class TestEffectiveWorkers:
    def test_auto_covers_hosted_instances(self):
        cfg = NeptuneConfig()
        # Never fewer workers than hosted instances: a blocked emit
        # must not starve its downstream consumer (deadlock freedom).
        assert cfg.effective_workers(100) >= 100

    def test_auto_at_least_one(self):
        assert NeptuneConfig().effective_workers(0) >= 1

    def test_explicit_floored_at_instances(self):
        cfg = NeptuneConfig(worker_threads=2)
        assert cfg.effective_workers(10) == 10
        assert cfg.effective_workers(1) == 2
