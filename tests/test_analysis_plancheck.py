"""Plan-verifier tests: the seeded-bad cluster corpus and the APIs.

Each cluster spec under ``tests/fixtures/cluster/`` is named for the
one diagnostic code it must trigger — the parametrized test asserts
that code fires exactly once and nothing else does (the same contract
``tests/fixtures/graphs/`` holds for the graph verifier).  The shipped
specs under ``examples/cluster_specs/`` must verify clean.
"""

import glob
import json
import os

import pytest

from repro.analysis import (
    Severity,
    verify_cluster,
    verify_cluster_file,
    verify_descriptor,
    verify_plan,
)
from repro.cluster.spec import build_plan
from repro.core.graph import StreamProcessingGraph

HERE = os.path.dirname(__file__)
REPO = os.path.dirname(HERE)
FIXTURES = sorted(glob.glob(os.path.join(HERE, "fixtures", "cluster", "nepg*.json")))

#: Codes whose finding is advisory, not a launch-blocking error.
WARNING_CODES = {"NEPG139"}


def _expected_code(path: str) -> str:
    # nepg133_port_collision.json -> NEPG133
    return os.path.basename(path).split("_", 1)[0].upper()


@pytest.mark.parametrize("path", FIXTURES, ids=[os.path.basename(p) for p in FIXTURES])
def test_bad_fixture_fires_its_code_exactly_once(path):
    code = _expected_code(path)
    report = verify_cluster_file(path)
    assert report.count(code) == 1, report.render()
    assert len(report) == 1, f"unexpected extra findings:\n{report.render()}"
    diag = report.diagnostics[0]
    expected = Severity.WARNING if code in WARNING_CODES else Severity.ERROR
    assert diag.severity is expected
    assert diag.message


def test_fixture_corpus_covers_every_plan_code():
    covered = {_expected_code(p) for p in FIXTURES}
    assert covered == {f"NEPG{n}" for n in range(130, 140)}


def test_shipped_cluster_specs_verify_clean():
    specs = sorted(glob.glob(os.path.join(REPO, "examples", "cluster_specs", "*.json")))
    assert specs, "cluster spec corpus missing"
    for path in specs:
        report = verify_cluster_file(path)
        assert not report.diagnostics, report.render()


# ---------------------------------------------------------------------------
# NEPG122 -> NEPG136 promotion
# ---------------------------------------------------------------------------


def _unseeded_relay_descriptor():
    return {
        "name": "relay-unseeded",
        "operators": [
            {
                "name": "sender",
                "type": "source",
                "class": "repro.workloads.operators:CountingSource",
                "kwargs": {"total": 100, "payload_size": 16},
            },
            {
                "name": "relay",
                "type": "processor",
                "class": "repro.workloads.operators:RelayProcessor",
                "parallelism": 2,
            },
            {
                "name": "latency",
                "type": "processor",
                "class": "repro.workloads.operators:LatencySink",
            },
        ],
        "links": [
            {"from": "sender", "to": "relay", "partitioning": {"scheme": "shuffle"}},
            {"from": "relay", "to": "latency", "partitioning": "round-robin"},
        ],
    }


def test_unseeded_shuffle_stays_a_warning_single_process():
    # Inside one process the unseeded shuffle is merely non-reproducible:
    # NEPG122 warns and validate() still passes.
    report = verify_descriptor(_unseeded_relay_descriptor())
    assert report.count("NEPG122") == 1, report.render()
    assert not report.errors()


def test_unseeded_shuffle_promotes_to_error_across_workers():
    # The same link split across worker processes is an exactly-once
    # hazard: NEPG136 fires as an error and supersedes (suppresses) the
    # single-process NEPG122 warning for that link.
    report = verify_cluster({"descriptor": _unseeded_relay_descriptor(), "workers": 2})
    assert report.count("NEPG136") == 1, report.render()
    assert report.count("NEPG122") == 0, report.render()
    (diag,) = report.diagnostics
    assert diag.severity is Severity.ERROR
    assert "supersedes" in diag.message


def test_promotion_skips_links_hosted_on_one_worker():
    # Pin every operator onto worker 0: nothing crosses a process
    # boundary, so the warning is not promoted (workers 1.. are merely
    # idle, which is its own advisory finding).
    report = verify_cluster(
        {
            "descriptor": _unseeded_relay_descriptor(),
            "workers": 2,
            "pin": {"sender": 0, "relay": 0, "latency": 0},
        }
    )
    assert report.count("NEPG136") == 0, report.render()
    assert report.count("NEPG122") == 1
    assert report.count("NEPG139") == 1  # worker 1 hosts nothing


# ---------------------------------------------------------------------------
# verify_plan (the coordinator's gate) and spec plumbing
# ---------------------------------------------------------------------------


def _pair_graph():
    descriptor = {
        "name": "pair",
        "operators": [
            {
                "name": "sender",
                "type": "source",
                "class": "repro.workloads.operators:CountingSource",
                "kwargs": {"total": 100, "payload_size": 16},
            },
            {
                "name": "sink",
                "type": "processor",
                "class": "repro.workloads.operators:LatencySink",
            },
        ],
        "links": [{"from": "sender", "to": "sink", "partitioning": "round-robin"}],
    }
    return StreamProcessingGraph.from_descriptor(descriptor, validate_wiring=False)


def test_verify_plan_clean_deployment():
    graph = _pair_graph()
    report = verify_plan(graph, build_plan(graph, 2))
    assert not report.diagnostics, report.render()


def test_verify_plan_reserved_port_collision():
    # reserved_ports only matter when specs expose real endpoints, so
    # route through verify_cluster's synthesized-spec path.
    report = verify_cluster(
        {
            "descriptor": {
                "name": "pair",
                "operators": [
                    {
                        "name": "sender",
                        "type": "source",
                        "class": "repro.workloads.operators:CountingSource",
                        "kwargs": {"total": 100, "payload_size": 16},
                    },
                    {
                        "name": "sink",
                        "type": "processor",
                        "class": "repro.workloads.operators:LatencySink",
                    },
                ],
                "links": [
                    {"from": "sender", "to": "sink", "partitioning": "round-robin"}
                ],
            },
            "workers": 2,
            "endpoints": {"0": ["127.0.0.1", 7001], "1": ["127.0.0.1", 7002]},
            "control_ports": [7101, 7102],
            "reserved_ports": [7002],
        }
    )
    assert report.count("NEPG133") == 1, report.render()
    assert "reserved" in report.diagnostics[0].message


def test_verify_plan_broken_assignment_short_circuits():
    # An unsound assignment gates the placement-dependent passes: one
    # NEPG130 per defect and nothing derived from the bogus placement.
    graph = _pair_graph()
    plan = build_plan(graph, 2)
    assignment = dict(plan.assignment)
    del assignment[("sink", 0)]
    plan = type(plan)(n_workers=plan.n_workers, assignment=assignment)
    report = verify_plan(graph, plan)
    assert report.count("NEPG130") == 1, report.render()
    assert {d.code for d in report.diagnostics} == {"NEPG130"}


def test_verify_cluster_rejects_non_dict():
    report = verify_cluster(["not", "a", "spec"])
    assert report.count("NEPG130") == 1
    assert report.exit_code() == 1


def test_verify_cluster_file_parse_error(tmp_path):
    bad = tmp_path / "broken.json"
    bad.write_text("{ not json", encoding="utf-8")
    report = verify_cluster_file(str(bad))
    assert report.count("NEPG130") == 1


def test_verify_cluster_surfaces_graph_errors_first():
    # A descriptor the graph verifier rejects never reaches the plan
    # passes: the cluster report carries the NEPG1xx findings verbatim.
    report = verify_cluster(
        {"descriptor": {"name": "empty", "operators": []}, "workers": 2}
    )
    assert report.errors()
    assert all(d.code.startswith("NEPG1") for d in report.diagnostics)
    assert not any(d.code.startswith("NEPG13") for d in report.diagnostics)


def test_verify_cluster_descriptor_path_round_trip(tmp_path):
    descriptor = _unseeded_relay_descriptor()
    desc_path = tmp_path / "relay.json"
    desc_path.write_text(json.dumps(descriptor), encoding="utf-8")
    spec_path = tmp_path / "cluster.json"
    spec_path.write_text(
        json.dumps({"descriptor_path": "relay.json", "workers": 2}),
        encoding="utf-8",
    )
    report = verify_cluster_file(str(spec_path))
    assert report.count("NEPG136") == 1, report.render()
