"""xxHash32 verified against published test vectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lz4 import xxh32


class TestKnownVectors:
    """Vectors from the xxHash reference implementation's sanity checks."""

    def test_empty_seed0(self):
        assert xxh32(b"") == 0x02CC5D05

    def test_empty_seed_prime(self):
        assert xxh32(b"", seed=2654435761) == 0x36B78AE7

    def test_abc(self):
        # Published sanity vector from the xxHash repository.
        assert xxh32(b"abc") == 0x32D153FF

    def test_regression_pins(self):
        # Not published vectors — pinned outputs guarding against
        # accidental changes to the (vector-verified) implementation.
        assert xxh32(b"Hello, world!") == 0x31B7405D
        data = bytes(range(256)) * 16
        assert xxh32(data) == xxh32(bytearray(data))
        assert xxh32(data) == 0x693C0BC2


class TestProperties:
    def test_seed_changes_hash(self):
        assert xxh32(b"payload", seed=0) != xxh32(b"payload", seed=1)

    def test_deterministic(self):
        data = b"sensor-reading-42"
        assert xxh32(data) == xxh32(data)

    @pytest.mark.parametrize("n", [0, 1, 3, 4, 15, 16, 17, 31, 32, 33, 100])
    def test_length_boundaries(self, n):
        data = bytes(range(n % 256 or 1)) * (n // max(1, n % 256 or 1) + 1)
        h = xxh32(data[:n])
        assert 0 <= h <= 0xFFFFFFFF

    def test_accepts_memoryview(self):
        data = b"0123456789abcdef" * 4
        assert xxh32(memoryview(data)) == xxh32(data)


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=256), st.integers(min_value=0, max_value=2**32 - 1))
def test_range_property(data, seed):
    assert 0 <= xxh32(data, seed) <= 0xFFFFFFFF


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=1, max_size=128))
def test_single_bit_flip_changes_hash(data):
    flipped = bytearray(data)
    flipped[0] ^= 0x01
    assert xxh32(bytes(flipped)) != xxh32(data)
