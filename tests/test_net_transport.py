"""Tests for in-process, TCP, and Unix-domain transports, including
TCP backpressure."""

import os
import threading

import pytest

from repro.net import (
    ChannelClosed,
    InProcessTransport,
    TcpListener,
    TcpTransport,
    WatermarkChannel,
    is_unix_endpoint,
)
from repro.util.errors import TransportError

from procharness import reserve_port
from waiters import FrameCollector, wait_stalled, wait_until


class TestInProcessTransport:
    def test_delivery_order(self):
        ch = WatermarkChannel(high_watermark=1 << 20)
        tx = InProcessTransport(ch)
        for i in range(10):
            tx.send(link_id=1, body=bytes([i]), count=1)
        frames = ch.drain()
        assert [f.body for f in frames] == [bytes([i]) for i in range(10)]
        assert [f.seq for f in frames] == list(range(10))

    def test_blocks_on_gated_channel(self):
        ch = WatermarkChannel(high_watermark=10, low_watermark=1)
        tx = InProcessTransport(ch)
        tx.send(1, b"0123456789", 1)  # fills to high watermark
        done = threading.Event()

        def sender():
            tx.send(1, b"x", 1)
            done.set()

        t = threading.Thread(target=sender)
        t.start()
        assert not done.wait(0.05)  # gated: the send must not complete
        ch.drain()
        assert done.wait(2.0)
        t.join(2.0)

    def test_closed_channel_raises_transport_error(self):
        ch = WatermarkChannel(high_watermark=10)
        ch.close()
        with pytest.raises(TransportError):
            InProcessTransport(ch).send(1, b"x", 1)


class TestTcpTransport:
    def test_end_to_end_frames(self):
        got = FrameCollector()
        lst = TcpListener("127.0.0.1", 0, sink=got)
        try:
            tx = TcpTransport("127.0.0.1", lst.port)
            for i in range(20):
                tx.send(link_id=5, body=f"msg-{i}".encode(), count=1)
            assert got.wait(20, timeout=5.0)
            frames = got.snapshot()
            assert [f.body.decode() for f in frames] == [f"msg-{i}" for i in range(20)]
            assert [f.seq for f in frames] == list(range(20))
            assert tx.frames_sent == 20
            tx.close()
        finally:
            lst.close()

    def test_multiple_links_multiplexed(self):
        got = FrameCollector()
        lst = TcpListener("127.0.0.1", 0, sink=got)
        try:
            tx = TcpTransport("127.0.0.1", lst.port)
            for i in range(10):
                tx.send(link_id=i % 3, body=bytes([i]), count=1)
            assert got.wait(10, timeout=5.0)
            by_link = {}
            for f in got.snapshot():
                by_link.setdefault(f.link_id, []).append(f.seq)
            assert by_link == {0: [0, 1, 2, 3], 1: [0, 1, 2], 2: [0, 1, 2]}
            tx.close()
        finally:
            lst.close()

    def test_connect_refused(self):
        with pytest.raises(TransportError):
            TcpTransport("127.0.0.1", 1)  # nothing listens on port 1

    def test_send_after_close(self):
        lst = TcpListener("127.0.0.1", 0, sink=lambda f: None)
        try:
            tx = TcpTransport("127.0.0.1", lst.port)
            tx.close()
            tx.close()  # idempotent
            with pytest.raises(TransportError):
                tx.send(1, b"x", 1)
        finally:
            lst.close()

    def test_concurrent_senders_no_interleaving(self):
        got = FrameCollector()
        lst = TcpListener("127.0.0.1", 0, sink=got)
        try:
            tx = TcpTransport("127.0.0.1", lst.port)

            def sender(link):
                for i in range(50):
                    tx.send(link, f"{link}:{i}".encode() * 20, 1)

            threads = [threading.Thread(target=sender, args=(l,)) for l in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10.0)
            assert got.wait(200, timeout=5.0)
            frames = got.snapshot()
            assert len(frames) == 200
            # Frame decoding would have raised on interleaved bytes; also
            # verify per-link ordering.
            for link in range(4):
                seqs = [f.seq for f in frames if f.link_id == link]
                assert seqs == sorted(seqs)
            tx.close()
        finally:
            lst.close()


class TestReservedPorts:
    def test_listener_binds_a_reserved_port(self):
        """The shared helper's reservation survives the probe socket's
        close (SO_REUSEADDR): the listener binds the exact port without
        a TIME_WAIT race — the fix for the old hardcoded-port flake."""
        port = reserve_port()
        lst = TcpListener("127.0.0.1", port, sink=lambda f: None)
        try:
            assert lst.port == port
            tx = TcpTransport("127.0.0.1", port)
            tx.send(1, b"hello", 1)
            tx.close()
        finally:
            lst.close()


class TestUnixTransport:
    def test_endpoint_detection(self):
        assert is_unix_endpoint("unix:/tmp/x.sock")
        assert not is_unix_endpoint("127.0.0.1")
        assert not is_unix_endpoint("example.org")

    def test_end_to_end_frames(self, tmp_path):
        endpoint = f"unix:{tmp_path / 'fabric.sock'}"
        got = FrameCollector()
        lst = TcpListener(endpoint, 0, sink=got)
        try:
            assert lst.host == endpoint and lst.port == 0
            tx = TcpTransport(endpoint, 0)
            for i in range(20):
                tx.send(link_id=7, body=f"msg-{i}".encode(), count=1)
            assert got.wait(20, timeout=5.0)
            frames = got.snapshot()
            assert [f.body.decode() for f in frames] == [
                f"msg-{i}" for i in range(20)
            ]
            assert [f.seq for f in frames] == list(range(20))
            tx.close()
        finally:
            lst.close()

    def test_socket_file_lifecycle(self, tmp_path):
        """Bind replaces stale residue from a crashed listener; close
        removes the socket file."""
        path = tmp_path / "w0.sock"
        endpoint = f"unix:{path}"
        lst = TcpListener(endpoint, 0, sink=lambda f: None)
        lst.close()
        assert not path.exists()
        # Simulate a crash leaving the file behind: rebinding must work.
        path.touch()
        lst = TcpListener(endpoint, 0, sink=lambda f: None)
        try:
            tx = TcpTransport(endpoint, 0)
            tx.send(1, b"x", 1)
            tx.close()
        finally:
            lst.close()
        assert not path.exists()

    def test_connect_refused(self, tmp_path):
        with pytest.raises(TransportError):
            TcpTransport(f"unix:{tmp_path / 'absent.sock'}", 0)


class TestTcpBackpressure:
    def test_gated_sink_throttles_sender(self):
        """A slow/gated receiver must stall the TCP sender (no drops)."""
        ch = WatermarkChannel(high_watermark=4096, low_watermark=512)

        def sink(frame):
            try:
                ch.put(len(frame.body), frame)
            except ChannelClosed:
                pass

        lst = TcpListener("127.0.0.1", 0, sink=sink, recv_buffer=4096)
        sent_count = [0]
        done = [False]

        def sender():
            tx = TcpTransport("127.0.0.1", lst.port)
            # Keep kernel-side buffering small so pressure appears fast.
            import socket as _socket

            tx._sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_SNDBUF, 4096)
            body = b"z" * 2048
            try:
                for _ in range(500):
                    tx.send(1, body, 1)
                    sent_count[0] += 1
                done[0] = True
            except TransportError:
                pass
            finally:
                tx.close()

        t = threading.Thread(target=sender)
        try:
            t.start()
            # Wait for the send counter to flatline: the channel gates
            # after ~2 frames, kernel buffers absorb a few more, and the
            # sender must then be fully stalled, far from finished.
            stalled_at = wait_stalled(lambda: sent_count[0], quiet=0.3, timeout=10.0)
            assert not done[0]
            assert stalled_at < 400

            # Drain continuously → sender completes, nothing lost.
            received = [len(ch.drain())]

            def drainer():
                # Drain until every frame has crossed (the reader thread
                # may still be blocked in put() after the sender's last
                # send returns, so "sender done" alone is not enough).
                # This loop IS the consumer, so it polls by necessity.
                import time as _time

                deadline = _time.monotonic() + 30
                while received[0] < 500 and _time.monotonic() < deadline:
                    received[0] += len(ch.drain())
                    _time.sleep(0.005)

            d = threading.Thread(target=drainer)
            d.start()
            t.join(30.0)
            d.join(35.0)
            assert done[0]
            assert received[0] == 500
        finally:
            ch.close()
            lst.close()
