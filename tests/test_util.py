"""Tests for clocks and the token-bucket rate limiter."""

import pytest

from repro.util import ManualClock, MonotonicClock, TokenBucket


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(5.0).now() == 5.0

    def test_advance(self):
        clk = ManualClock()
        clk.advance(2.5)
        assert clk.now() == 2.5

    def test_sleep_advances(self):
        clk = ManualClock()
        clk.sleep(1.0)
        assert clk.now() == 1.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_wait_until_already_reached(self):
        clk = ManualClock(10.0)
        assert clk.wait_until(5.0, timeout=0.1)

    def test_wait_until_timeout(self):
        clk = ManualClock()
        assert not clk.wait_until(100.0, timeout=0.05)


class TestMonotonicClock:
    def test_monotone(self):
        clk = MonotonicClock()
        a = clk.now()
        b = clk.now()
        assert b >= a

    def test_sleep_zero_is_noop(self):
        MonotonicClock().sleep(0)
        MonotonicClock().sleep(-1)  # must not raise


class TestTokenBucket:
    def test_initial_burst_available(self):
        tb = TokenBucket(rate=10, burst=5, clock=ManualClock())
        assert tb.available == pytest.approx(5)

    def test_try_acquire_drains(self):
        tb = TokenBucket(rate=10, burst=5, clock=ManualClock())
        assert tb.try_acquire(5)
        assert not tb.try_acquire(1)

    def test_refill_over_time(self):
        clk = ManualClock()
        tb = TokenBucket(rate=10, burst=10, clock=clk)
        assert tb.try_acquire(10)
        clk.advance(0.5)
        assert tb.available == pytest.approx(5)
        assert tb.try_acquire(5)

    def test_refill_capped_at_burst(self):
        clk = ManualClock()
        tb = TokenBucket(rate=100, burst=10, clock=clk)
        clk.advance(100)
        assert tb.available == pytest.approx(10)

    def test_acquire_blocks_until_refill(self):
        clk = ManualClock()
        tb = TokenBucket(rate=10, burst=1, clock=clk)
        assert tb.try_acquire(1)
        waited = tb.acquire(1)  # ManualClock.sleep advances the clock
        assert waited == pytest.approx(0.1)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=-5)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)

    def test_sustained_rate_converges(self):
        clk = ManualClock()
        tb = TokenBucket(rate=100, burst=1, clock=clk)
        start = clk.now()
        for _ in range(50):
            tb.acquire(1)
        elapsed = clk.now() - start
        # 50 tokens at 100/s with burst 1: ~0.49s of simulated waiting.
        assert elapsed == pytest.approx(0.49, abs=0.02)
