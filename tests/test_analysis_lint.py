"""Concurrency-lint tests: rule fixtures and the clean-tree gate."""

import glob
import os
import textwrap

import pytest

from repro.analysis import Severity, lint_paths
from repro.analysis.lintrules import evaluate
from repro.analysis.threadmodel import build_models

HERE = os.path.dirname(__file__)
REPO = os.path.dirname(HERE)
FIXTURES = sorted(glob.glob(os.path.join(HERE, "fixtures", "lint", "*")))

WARNING_CODES = {"NEPL204", "NEPL205", "NEPL213", "NEPL214"}


def _expected_code(path: str) -> str:
    # nepl204_blocking_under_lock.py -> NEPL204
    return os.path.basename(path).split("_", 1)[0].upper()


@pytest.mark.parametrize("path", FIXTURES, ids=[os.path.basename(p) for p in FIXTURES])
def test_lint_fixture_fires_its_code_exactly_once(path):
    code = _expected_code(path)
    report = lint_paths([path])
    assert report.count(code) == 1, report.render()
    assert len(report) == 1, f"unexpected extra findings:\n{report.render()}"
    diag = report.diagnostics[0]
    expected = Severity.WARNING if code in WARNING_CODES else Severity.ERROR
    assert diag.severity is expected


def test_fixture_corpus_covers_every_lint_code():
    covered = {_expected_code(p) for p in FIXTURES}
    expected = {f"NEPL{n}" for n in range(200, 206)}  # thread-model rules
    expected |= {f"NEPL{n}" for n in range(210, 215)}  # process-model rules
    assert covered == expected


def test_runtime_source_tree_lints_clean():
    """The satellite invariant: the lint gates src/repro at zero findings."""
    report = lint_paths([os.path.join(REPO, "src", "repro")])
    assert not report.diagnostics, report.render()
    assert report.exit_code(fail_on=Severity.WARNING) == 0


def _lint_source(source: str):
    from repro.analysis.diagnostics import DiagnosticReport

    report = DiagnosticReport(subject="<inline>")
    evaluate(build_models("<inline>", textwrap.dedent(source)), report)
    return report


def test_condition_aliases_join_the_lock_group():
    # A Condition wrapping self._lock guards the same state: holding
    # the condition counts as holding the lock.
    report = _lint_source(
        """
        import threading

        class Channel:
            def __init__(self):
                self._lock = threading.Lock()
                self._ready = threading.Condition(self._lock)
                self.items = []
                self._t = threading.Thread(target=self._loop)

            def _loop(self):
                with self._ready:
                    self.items.append(1)

            def put(self, item):
                with self._lock:
                    self.items.append(item)
        """
    )
    assert not report.diagnostics, report.render()


def test_must_hold_docstring_suppresses_helper_findings():
    # A helper annotated "Caller must hold ``_lock``" is analyzed as if
    # the lock were held at entry.
    report = _lint_source(
        """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self.rows = []
                self._t = threading.Thread(target=self._loop)

            def _loop(self):
                with self._lock:
                    self._append_locked(0)

            def _append_locked(self, row):
                \"\"\"Caller must hold ``_lock``.\"\"\"
                self.rows.append(row)

            def add(self, row):
                with self._lock:
                    self._append_locked(row)
        """
    )
    assert not report.diagnostics, report.render()


def test_condition_wait_is_not_blocking_under_its_own_lock():
    # Waiting on a condition releases the wrapped lock — the one
    # blocking call that is legal (and necessary) under it.
    report = _lint_source(
        """
        import threading

        class Gate:
            def __init__(self):
                self._lock = threading.Lock()
                self._ready = threading.Condition(self._lock)
                self.opens = []

            def await_open(self):
                with self._ready:
                    self._ready.wait()
                    self.opens.append(1)
        """
    )
    assert report.count("NEPL204") == 0, report.render()


def test_init_mutations_are_exempt():
    # __init__ runs before the object is shared; bare container setup
    # there is not a finding even in a threaded class.
    report = _lint_source(
        """
        import threading

        class Boot:
            def __init__(self):
                self._lock = threading.Lock()
                self.slots = []
                self.slots.append(0)
                self._t = threading.Thread(target=self._loop)

            def _loop(self):
                with self._lock:
                    self.slots.append(1)
        """
    )
    assert not report.diagnostics, report.render()


def test_forward_ref_annotation_resolves_peer_class():
    # Regression: a quoted ctor-parameter annotation (`hub: "Hub"`)
    # must still bind the stored attribute to its class, or cross-class
    # cycles through mutually-referencing classes go undetected.
    report = _lint_source(
        """
        import threading

        class Peer:
            def __init__(self, hub: "Hub"):
                self._plock = threading.Lock()
                self.inbox = []
                self._hub = hub

            def deliver(self, msg):
                with self._plock:
                    self.inbox.append(msg)
                    self._hub.route(msg)

        class Hub:
            def __init__(self, peer: "Peer"):
                self._hlock = threading.Lock()
                self.routed = []
                self._peer = peer

            def route(self, msg):
                with self._hlock:
                    self.routed.append(msg)

            def broadcast(self, msg):
                with self._hlock:
                    self._peer.deliver(msg)
        """
    )
    assert report.count("NEPL203") == 1, report.render()


def test_cross_class_lock_order_cycle_detected():
    report = _lint_source(
        """
        import threading

        class Peer:
            def __init__(self):
                self._plock = threading.Lock()
                self.inbox = []
                self._hub = Hub()

            def deliver(self, msg):
                with self._plock:
                    self.inbox.append(msg)
                    self._hub.route(msg)

        class Hub:
            def __init__(self):
                self._hlock = threading.Lock()
                self.routed = []
                self._peer = Peer()

            def route(self, msg):
                with self._hlock:
                    self.routed.append(msg)

            def broadcast(self, msg):
                with self._hlock:
                    self._peer.deliver(msg)
        """
    )
    assert report.count("NEPL203") == 1, report.render()
