"""Tests for the reusable packet codec (object reuse, §III-B3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FieldType, PacketCodec, PacketSchema, StreamPacket
from repro.util.errors import SerializationError

SCHEMA = PacketSchema(
    [
        ("ts", FieldType.INT64),
        ("name", FieldType.STRING),
        ("reading", FieldType.FLOAT64),
    ]
)


def make(ts, name, reading):
    return SCHEMA.new_packet(ts=ts, name=name, reading=reading)


class TestEncodeDecode:
    def test_single_roundtrip(self):
        codec = PacketCodec(SCHEMA)
        pkt = make(123, "valve-1", 0.75)
        body = codec.encode(pkt)
        decoded, end = codec.decode_one(body)
        assert end == len(body)
        assert decoded == pkt

    def test_batch_roundtrip_fresh(self):
        codec = PacketCodec(SCHEMA)
        pkts = [make(i, f"s{i}", i / 7) for i in range(50)]
        body = codec.encode_batch(pkts)
        out = list(codec.iter_decode(body, count=50, reuse=False))
        assert out == pkts

    def test_batch_reuse_yields_same_object(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode_batch([make(1, "a", 0.0), make(2, "b", 1.0)])
        seen_ids = set()
        values = []
        for pkt in codec.iter_decode(body, reuse=True):
            seen_ids.add(id(pkt))
            values.append(pkt.to_dict())
        assert len(seen_ids) == 1  # the pooled packet is reused
        assert values == [
            {"ts": 1, "name": "a", "reading": 0.0},
            {"ts": 2, "name": "b", "reading": 1.0},
        ]

    def test_reuse_clone_detaches(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode_batch([make(1, "a", 0.0), make(2, "b", 1.0)])
        retained = [p.clone() for p in codec.iter_decode(body, reuse=True)]
        assert [p["ts"] for p in retained] == [1, 2]

    def test_count_mismatch_detected(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode_batch([make(1, "a", 0.0)])
        with pytest.raises(SerializationError, match="declared 2"):
            list(codec.iter_decode(body, count=2))

    def test_incomplete_packet_rejected(self):
        codec = PacketCodec(SCHEMA)
        pkt = StreamPacket(SCHEMA).set("ts", 1)
        with pytest.raises(SerializationError, match="unset fields"):
            codec.encode(pkt)

    def test_schema_mismatch_rejected(self):
        other = PacketSchema([("x", FieldType.INT64)])
        codec = PacketCodec(SCHEMA)
        with pytest.raises(SerializationError, match="does not match"):
            codec.encode(other.new_packet(x=1))

    def test_truncated_body_rejected(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode(make(1, "abc", 0.5))
        with pytest.raises(SerializationError):
            list(codec.iter_decode(body[:-3]))

    def test_counters(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode_batch([make(i, "x", 0.0) for i in range(5)])
        list(codec.iter_decode(body))
        assert codec.packets_encoded == 5
        assert codec.packets_decoded == 5

    def test_encode_into_returns_size(self):
        codec = PacketCodec(SCHEMA)
        out = bytearray()
        n = codec.encode_into(make(1, "ab", 0.0), out)
        assert n == len(out) == 8 + 4 + 2 + 8

    def test_encoded_size_matches(self):
        codec = PacketCodec(SCHEMA)
        for pkt in (make(1, "", 0.0), make(2, "日本語", 1.5), make(3, "x" * 100, -2.0)):
            assert codec.encoded_size(pkt) == len(codec.encode(pkt))

    def test_encode_view_roundtrip(self):
        codec = PacketCodec(SCHEMA)
        pkt = make(7, "v", 0.25)
        view = codec.encode_view(pkt)
        assert bytes(view) == codec.encode(pkt)

    def test_encode_survives_a_held_view(self):
        # A frame holder (the sampling profiler walking
        # sys._current_frames, a debugger, a stored traceback) can keep
        # a previous encode_view() result alive past its contract
        # window.  A bytearray with live exports cannot be resized, so
        # the codec must retire the old scratch instead of raising
        # BufferError on the data plane.
        codec = PacketCodec(SCHEMA)
        first = make(1, "held", 0.5)
        held = codec.encode_view(first)
        expected_held = bytes(held)
        second = make(2, "next", 1.5)
        for encode_again in (
            codec.encode_view,
            codec.encode,
            lambda p: codec.encode_batch([p]),
        ):
            out = encode_again(second)  # must not raise BufferError
            assert bytes(out) == codec.encode(second)
        # The retired buffer stays alive through the export: the held
        # view still reads the bytes it was handed.
        assert bytes(held) == expected_held


LIST_SCHEMA = PacketSchema(
    [("vals", FieldType.FLOAT64_LIST), ("tags", FieldType.INT64_LIST), ("blob", FieldType.BYTES)]
)


class TestVariableWidth:
    def test_lists_and_bytes(self):
        codec = PacketCodec(LIST_SCHEMA)
        pkt = LIST_SCHEMA.new_packet(vals=[1.5, 2.5], tags=[7, 8, 9], blob=b"\x00\x01")
        decoded, _ = codec.decode_one(codec.encode(pkt))
        assert decoded == pkt

    def test_encoded_size_variable(self):
        codec = PacketCodec(LIST_SCHEMA)
        pkt = LIST_SCHEMA.new_packet(vals=[0.0] * 3, tags=[], blob=b"abcd")
        assert codec.encoded_size(pkt) == len(codec.encode(pkt))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            st.text(max_size=30),
            st.floats(allow_nan=False, allow_infinity=False),
        ),
        max_size=30,
    )
)
def test_batch_roundtrip_property(rows):
    codec = PacketCodec(SCHEMA)
    pkts = [make(*row) for row in rows]
    body = codec.encode_batch(pkts)
    assert list(codec.iter_decode(body, count=len(rows), reuse=False)) == pkts

FIXED_SCHEMA = PacketSchema(
    [("a", FieldType.INT32), ("b", FieldType.INT64), ("c", FieldType.FLOAT64)]
)


class TestEncodeExceptionSafety:
    """Regression: a mid-record encode failure must not strand partial
    bytes in the shared stream buffer (they corrupt every later packet
    on the link)."""

    @pytest.mark.parametrize("compiled", [True, False])
    def test_failed_encode_leaves_no_partial_bytes(self, compiled):
        codec = PacketCodec(SCHEMA, compiled=compiled)
        out = bytearray()
        codec.encode_into(make(1, "ok", 0.5), out)
        clean = len(out)
        # int64 range is checked at encode time, after earlier fields
        # of the record may already have been appended.
        bad = SCHEMA.new_packet(ts=2**70, name="boom", reading=1.0)
        with pytest.raises(SerializationError):
            codec.encode_into(bad, out)
        assert len(out) == clean, "partial record bytes left in buffer"
        codec.encode_into(make(2, "after", 1.5), out)
        decoded = list(codec.iter_decode(out, count=2, reuse=False))
        assert [p["ts"] for p in decoded] == [1, 2]
        assert [p["name"] for p in decoded] == ["ok", "after"]

    @pytest.mark.parametrize("compiled", [True, False])
    def test_bad_list_element_after_length_prefix(self, compiled):
        # The length prefix is written before the elements are packed,
        # so an un-encodable element used to leave prefix + partial
        # elements behind.
        codec = PacketCodec(LIST_SCHEMA, compiled=compiled)
        out = bytearray()
        good = LIST_SCHEMA.new_packet(vals=[1.0], tags=[1, 2], blob=b"ok")
        codec.encode_into(good, out)
        clean = len(out)
        bad = LIST_SCHEMA.new_packet(vals=[0.5], tags=[1, 2**70], blob=b"x")
        with pytest.raises(SerializationError):
            codec.encode_into(bad, out)
        assert len(out) == clean
        codec.encode_into(good, out)
        decoded = list(codec.iter_decode(out, count=2, reuse=False))
        assert decoded == [good, good]


class TestEagerCountValidation:
    """Regression: a consumer that stops iterating early (operator
    raising mid-batch) must still observe a short/corrupt batch."""

    def test_fixed_schema_short_body_raises_before_first_yield(self):
        codec = PacketCodec(FIXED_SCHEMA)
        pkt = FIXED_SCHEMA.new_packet(a=1, b=2, c=3.0)
        body = codec.encode_batch([pkt, pkt])
        it = codec.iter_decode(body, count=3)
        with pytest.raises(SerializationError, match="declared 3"):
            next(it)  # exact-size check fires before any record decodes

    def test_variable_schema_short_body_raises_at_last_record(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode_batch([make(1, "a", 0.0), make(2, "b", 1.0)])
        it = codec.iter_decode(body, count=3)
        assert next(it)["ts"] == 1
        # The body ends after record 2 of a declared 3: the error must
        # surface here, not only after full exhaustion.
        with pytest.raises(SerializationError, match="declared 3"):
            next(it)

    def test_variable_schema_overlong_body_raises_at_extra_record(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode_batch([make(1, "a", 0.0), make(2, "b", 1.0)])
        it = codec.iter_decode(body, count=1)
        assert next(it)["ts"] == 1
        with pytest.raises(SerializationError, match="declared 1"):
            next(it)


_VALUE_STRATEGIES = {
    FieldType.BOOL: st.booleans(),
    FieldType.INT32: st.integers(min_value=-(2**31), max_value=2**31 - 1),
    FieldType.INT64: st.integers(min_value=-(2**63), max_value=2**63 - 1),
    FieldType.FLOAT32: st.floats(width=32, allow_nan=False),
    FieldType.FLOAT64: st.floats(allow_nan=False),
    FieldType.STRING: st.text(max_size=20),
    FieldType.BYTES: st.binary(max_size=20),
    FieldType.FLOAT64_LIST: st.lists(st.floats(allow_nan=False), max_size=5),
    FieldType.INT64_LIST: st.lists(
        st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=5
    ),
}


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_compiled_codec_byte_identical_to_per_field(data):
    """The fused fixed-width-run codec is a pure optimization: byte-for-
    byte the same wire format as the per-field reference, decoding to
    the same values, across all FieldTypes and random schemas."""
    types = data.draw(
        st.lists(st.sampled_from(list(FieldType)), min_size=1, max_size=8)
    )
    schema = PacketSchema([(f"f{i}", t) for i, t in enumerate(types)])
    packets = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
        pkt = StreamPacket(schema)
        for i, ftype in enumerate(types):
            pkt.set_at(i, data.draw(_VALUE_STRATEGIES[ftype]))
        packets.append(pkt)
    compiled = PacketCodec(schema, compiled=True)
    legacy = PacketCodec(schema, compiled=False)
    body = compiled.encode_batch(packets)
    assert body == legacy.encode_batch(packets)
    via_compiled = list(compiled.iter_decode(body, count=len(packets), reuse=False))
    via_legacy = list(legacy.iter_decode(body, count=len(packets), reuse=False))
    assert via_compiled == via_legacy
    # Re-encoding the decoded packets reproduces the body on both paths
    # (catches float32 widening / bool canonicalization divergence).
    assert compiled.encode_batch(via_compiled) == body
    assert legacy.encode_batch(via_legacy) == body
