"""Tests for the reusable packet codec (object reuse, §III-B3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FieldType, PacketCodec, PacketSchema, StreamPacket
from repro.util.errors import SerializationError

SCHEMA = PacketSchema(
    [
        ("ts", FieldType.INT64),
        ("name", FieldType.STRING),
        ("reading", FieldType.FLOAT64),
    ]
)


def make(ts, name, reading):
    return SCHEMA.new_packet(ts=ts, name=name, reading=reading)


class TestEncodeDecode:
    def test_single_roundtrip(self):
        codec = PacketCodec(SCHEMA)
        pkt = make(123, "valve-1", 0.75)
        body = codec.encode(pkt)
        decoded, end = codec.decode_one(body)
        assert end == len(body)
        assert decoded == pkt

    def test_batch_roundtrip_fresh(self):
        codec = PacketCodec(SCHEMA)
        pkts = [make(i, f"s{i}", i / 7) for i in range(50)]
        body = codec.encode_batch(pkts)
        out = list(codec.iter_decode(body, count=50, reuse=False))
        assert out == pkts

    def test_batch_reuse_yields_same_object(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode_batch([make(1, "a", 0.0), make(2, "b", 1.0)])
        seen_ids = set()
        values = []
        for pkt in codec.iter_decode(body, reuse=True):
            seen_ids.add(id(pkt))
            values.append(pkt.to_dict())
        assert len(seen_ids) == 1  # the pooled packet is reused
        assert values == [
            {"ts": 1, "name": "a", "reading": 0.0},
            {"ts": 2, "name": "b", "reading": 1.0},
        ]

    def test_reuse_clone_detaches(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode_batch([make(1, "a", 0.0), make(2, "b", 1.0)])
        retained = [p.clone() for p in codec.iter_decode(body, reuse=True)]
        assert [p["ts"] for p in retained] == [1, 2]

    def test_count_mismatch_detected(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode_batch([make(1, "a", 0.0)])
        with pytest.raises(SerializationError, match="declared 2"):
            list(codec.iter_decode(body, count=2))

    def test_incomplete_packet_rejected(self):
        codec = PacketCodec(SCHEMA)
        pkt = StreamPacket(SCHEMA).set("ts", 1)
        with pytest.raises(SerializationError, match="unset fields"):
            codec.encode(pkt)

    def test_schema_mismatch_rejected(self):
        other = PacketSchema([("x", FieldType.INT64)])
        codec = PacketCodec(SCHEMA)
        with pytest.raises(SerializationError, match="does not match"):
            codec.encode(other.new_packet(x=1))

    def test_truncated_body_rejected(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode(make(1, "abc", 0.5))
        with pytest.raises(SerializationError):
            list(codec.iter_decode(body[:-3]))

    def test_counters(self):
        codec = PacketCodec(SCHEMA)
        body = codec.encode_batch([make(i, "x", 0.0) for i in range(5)])
        list(codec.iter_decode(body))
        assert codec.packets_encoded == 5
        assert codec.packets_decoded == 5

    def test_encode_into_returns_size(self):
        codec = PacketCodec(SCHEMA)
        out = bytearray()
        n = codec.encode_into(make(1, "ab", 0.0), out)
        assert n == len(out) == 8 + 4 + 2 + 8

    def test_encoded_size_matches(self):
        codec = PacketCodec(SCHEMA)
        for pkt in (make(1, "", 0.0), make(2, "日本語", 1.5), make(3, "x" * 100, -2.0)):
            assert codec.encoded_size(pkt) == len(codec.encode(pkt))


LIST_SCHEMA = PacketSchema(
    [("vals", FieldType.FLOAT64_LIST), ("tags", FieldType.INT64_LIST), ("blob", FieldType.BYTES)]
)


class TestVariableWidth:
    def test_lists_and_bytes(self):
        codec = PacketCodec(LIST_SCHEMA)
        pkt = LIST_SCHEMA.new_packet(vals=[1.5, 2.5], tags=[7, 8, 9], blob=b"\x00\x01")
        decoded, _ = codec.decode_one(codec.encode(pkt))
        assert decoded == pkt

    def test_encoded_size_variable(self):
        codec = PacketCodec(LIST_SCHEMA)
        pkt = LIST_SCHEMA.new_packet(vals=[0.0] * 3, tags=[], blob=b"abcd")
        assert codec.encoded_size(pkt) == len(codec.encode(pkt))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            st.text(max_size=30),
            st.floats(allow_nan=False, allow_infinity=False),
        ),
        max_size=30,
    )
)
def test_batch_roundtrip_property(rows):
    codec = PacketCodec(SCHEMA)
    pkts = [make(*row) for row in rows]
    body = codec.encode_batch(pkts)
    assert list(codec.iter_decode(body, count=len(rows), reuse=False)) == pkts
