"""`repro doctor` root-cause correlation: episode pairing, cascade
closure, cause ranking, the stalled-sink acceptance scenario, and the
chaos/SLO shared-clock regression (NEPTUNE §III-B4 backpressure made
diagnosable)."""

import json
import time

import pytest

from repro.chaos.plan import FaultAction
from repro.chaos.simfaults import SimFault, schedule_sim_faults
from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.observe import (
    SLO,
    HealthEngine,
    RuntimeObserver,
    bridge,
    diagnose,
    diagnose_observer,
    render_report,
)
from repro.observe.doctor import DOCTOR_SCHEMA, _bare, _gate_cascades, _pair_episodes
from repro.observe.export import snapshot
from repro.sim import SimClock, Simulator
from repro.workloads import CountingSource, RelayProcessor, VariableRateProcessor


def _event(ts, category, name, **attrs):
    return {"ts": ts, "category": category, "name": name, "attrs": attrs}


def _snap(events, **extra):
    snap = {"instruments": [], "timeline": events, "traces": {}}
    snap.update(extra)
    return snap


class TestHelpers:
    def test_bare_strips_instance_suffix(self):
        assert _bare("sink[0]") == "sink"
        assert _bare("sink[12]") == "sink"
        assert _bare("sink") == "sink"
        assert _bare("v2[beta]") == "v2[beta]"  # only numeric suffixes

    def test_pair_episodes_fifo_per_key(self):
        events = [
            _event(1.0, "flowcontrol", "gate_closed", operator="a"),
            _event(2.0, "flowcontrol", "gate_closed", operator="a"),
            _event(3.0, "flowcontrol", "gate_opened", operator="a", gated_seconds=2.0),
            _event(4.0, "flowcontrol", "gate_closed", operator="b"),
        ]
        eps = _pair_episodes(events, "gate_closed", "gate_opened", "operator")
        assert [(e.start, e.end) for e in eps] == [(1.0, 3.0), (2.0, None), (4.0, None)]
        # Closing attrs merge into the paired episode without clobbering.
        assert eps[0].attrs["gated_seconds"] == 2.0

    def test_gate_cascades_transitive_closure(self):
        events = [
            _event(1.0, "f", "gate_closed", operator="sink[0]", throttles=["relay"]),
            _event(1.5, "f", "gate_closed", operator="relay[0]", throttles=["src"]),
        ]
        eps = _pair_episodes(events, "gate_closed", "gate_opened", "operator")
        cascades = _gate_cascades(eps)
        assert cascades["sink"] == {"sink", "relay", "src"}
        assert cascades["relay"] == {"relay", "src"}


class TestDiagnoseSynthetic:
    def _breach_events(self):
        return [
            _event(
                6.0, "health", "slo_breach",
                slo="relay.p99", kind="p99_latency", operator="relay",
                value=0.5, threshold=0.01,
            ),
            _event(
                9.0, "health", "slo_recover",
                slo="relay.p99", kind="p99_latency", operator="relay",
                value=0.001, duration=3.0,
            ),
        ]

    def test_healthy_when_no_breaches(self):
        report = diagnose(_snap([_event(1.0, "runtime", "batch_executed")]))
        assert report["schema"] == DOCTOR_SCHEMA
        assert report["healthy"] is True
        assert report["breaches"] == []
        assert report["root_cause"] is None

    def test_cascade_outranks_fault_and_transport(self):
        events = self._breach_events() + [
            _event(5.0, "chaos", "node_killed", target="nodeB"),
            _event(
                5.5, "flowcontrol", "gate_closed",
                operator="sink[0]", throttles=["relay"], buffered_bytes=9000,
            ),
            _event(
                8.5, "flowcontrol", "gate_opened",
                operator="sink[0]", gated_seconds=3.0,
            ),
            _event(5.8, "transport", "send_stall", endpoint="127.0.0.1:7001"),
        ]
        report = diagnose(_snap(events))
        assert report["healthy"] is False
        (ep,) = report["breaches"]
        assert ep["slo"] == "relay.p99"
        assert ep["duration"] == pytest.approx(3.0)
        kinds = [c["type"] for c in ep["causes"]]
        # The gate covers the breach window: score 3.0 beats the
        # fault's 3.0/(1+1.0)=1.5 and the stall's 1.5/(1+0.2)=1.25.
        assert kinds[0] == "backpressure_cascade"
        assert ep["causes"][0]["operator"] == "sink"
        assert "throttled 'relay'" in ep["causes"][0]["detail"]
        assert [c["rank"] for c in ep["causes"]] == [1, 2, 3]
        assert report["root_cause"]["operator"] == "sink"
        assert report["gate_episodes"] == 1
        assert report["chaos_events"] == 1

    def test_most_downstream_gate_wins_the_cascade(self):
        # Sink gates -> relay blocks -> relay's own gate closes.  The
        # relay gate is a symptom; the sink must stay the root cause
        # even though 'relay' sorts before 'sink' alphabetically.
        events = self._breach_events() + [
            _event(
                5.5, "flowcontrol", "gate_closed",
                operator="sink[0]", throttles=["relay"],
            ),
            _event(
                5.6, "flowcontrol", "gate_closed",
                operator="relay[0]", throttles=["src"],
            ),
        ]
        (ep,) = diagnose(_snap(events))["breaches"]
        cascade = [c for c in ep["causes"] if c["type"] == "backpressure_cascade"]
        assert [c["operator"] for c in cascade] == ["sink", "relay"]
        assert "itself throttled downstream" in cascade[1]["detail"]

    def test_gate_on_unrelated_branch_is_not_blamed(self):
        events = self._breach_events() + [
            _event(
                5.5, "flowcontrol", "gate_closed",
                operator="other[0]", throttles=["elsewhere"],
            ),
        ]
        (ep,) = diagnose(_snap(events))["breaches"]
        # 'relay' is not in other's cascade -> no cascade candidate.
        assert all(c["type"] != "backpressure_cascade" for c in ep["causes"])

    def test_unrecovered_breach_runs_to_horizon(self):
        events = [
            self._breach_events()[0],
            _event(12.0, "runtime", "batch_executed"),
        ]
        (ep,) = diagnose(_snap(events))["breaches"]
        assert ep["end"] is None
        assert ep["duration"] is None

    def test_max_causes_truncates(self):
        events = self._breach_events() + [
            _event(5.0 + i * 0.1, "chaos", "node_killed", target=f"n{i}")
            for i in range(5)
        ]
        (ep,) = diagnose(_snap(events), max_causes=2)["breaches"]
        assert len(ep["causes"]) == 2

    def test_drop_warnings(self):
        report = diagnose(_snap([], timeline_dropped=7, traces_dropped_spans=3))
        assert any("7 events" in w for w in report["warnings"])
        assert any("3 spans" in w for w in report["warnings"])
        # Pre-drop-counter dumps still warn via the evicted count.
        legacy = diagnose(_snap([], timeline_evicted=4))
        assert any("4 events" in w for w in legacy["warnings"])

    def test_report_is_json_serializable_and_renders(self):
        events = self._breach_events() + [
            _event(5.0, "chaos", "node_killed", target="nodeB"),
        ]
        report = diagnose(_snap(events, timeline_dropped=2))
        json.dumps(report)  # CLI --json contract
        text = render_report(report)
        assert "1 SLO breach episode(s)" in text
        assert "injected_fault" in text
        assert "root cause:" in text
        assert "warning:" in text

    def test_render_healthy(self):
        assert "no SLO breach" in render_report(diagnose(_snap([])))


class TestStalledSinkAcceptance:
    """ISSUE acceptance: a chaos-stalled sink must be named root cause
    of the upstream SLO breaches in the doctor's JSON report."""

    def test_doctor_names_stalled_sink(self):
        sleep_holder = [0.004]  # stalled sink: 4 ms/packet
        obs = RuntimeObserver(sample_every=8)
        g = StreamProcessingGraph(
            "stalled-sink",
            config=NeptuneConfig(
                buffer_capacity=2048,
                buffer_max_delay=0.002,
                inbound_high_watermark=8192,
            ),
        )
        g.add_source("src", lambda: CountingSource(total=600, payload_size=512))
        g.add_processor("relay", RelayProcessor)
        g.add_processor("sink", lambda: VariableRateProcessor(sleep_holder))
        g.link("src", "relay").link("relay", "sink")
        slos = [
            SLO(
                "relay.p99_latency", "p99_latency", 1e-6, operator="relay",
                for_scans=1, warmup_scans=0,
            ),
            SLO(
                "sink.backlog", "buffer_occupancy", 4096.0, operator="sink",
                for_scans=1, warmup_scans=0,
            ),
        ]
        with NeptuneRuntime(observer=obs) as rt:
            handle = rt.submit(g)
            engine = HealthEngine(
                obs,
                slos,
                scrape=lambda: bridge.scrape_job(obs.registry, handle),
            )
            deadline = time.monotonic() + 60.0
            while not handle.await_completion(timeout=0.05):
                engine.scan_once()
                if time.monotonic() > deadline:
                    pytest.fail("stalled-sink job did not drain in 60s")
            engine.scan_once()

        gates = obs.timeline.snapshot("flowcontrol", "gate_closed")
        assert gates, "sink inbound channel never crossed the high watermark"
        assert any(
            _bare(str(e.attrs["operator"])) == "sink"
            and "relay" in [_bare(str(t)) for t in e.attrs.get("throttles", [])]
            for e in gates
        )
        assert any(m.breaches > 0 for m in engine.monitors)

        report = diagnose_observer(obs)
        json.dumps(report, default=str)  # what `repro doctor --json` emits
        assert report["healthy"] is False
        cascade_causes = [
            c
            for ep in report["breaches"]
            for c in ep["causes"]
            if c["type"] == "backpressure_cascade"
        ]
        assert cascade_causes, "no backpressure cause correlated with the breaches"
        top_cascade = max(cascade_causes, key=lambda c: c["score"])
        assert top_cascade["operator"] == "sink"
        assert report["root_cause"]["type"] == "backpressure_cascade"
        assert report["root_cause"]["operator"] == "sink"

    def test_post_hoc_dump_diagnoses_identically(self):
        # diagnose() consumes the snapshot dict, so a JSON round-trip
        # (what --dump / --from-dump do) must not change the verdict.
        obs = RuntimeObserver()
        obs.event(
            "flowcontrol", "gate_closed", operator="sink[0]", throttles=["relay"]
        )
        obs.event(
            "health", "slo_breach",
            slo="relay.p99_latency", kind="p99_latency", operator="relay",
            value=0.5, threshold=0.01,
        )
        live = diagnose(snapshot(obs))
        dumped = diagnose(json.loads(json.dumps(snapshot(obs), default=str)))
        assert dumped["root_cause"]["operator"] == "sink"
        assert dumped["root_cause"] == live["root_cause"]


class TestComputeBound:
    """The profiler-backed cause class: a breach with no overlapping
    gate episode and one operator dominating sampled CPU is diagnosed
    compute_bound, naming operator, worker, and hottest frame."""

    def _profile_series(self, rows, frames=()):
        series = [
            {
                "name": "neptune_profile_cpu_seconds_total",
                "kind": "counter",
                "help": "h",
                "labels": {"operator": op, "kind": "operator", "worker": worker},
                "value": cpu,
            }
            for worker, op, cpu in rows
        ]
        series += [
            {
                "name": "neptune_profile_top_frame_samples_total",
                "kind": "counter",
                "help": "h",
                "labels": {"operator": op, "frame": frame, "worker": worker},
                "value": count,
            }
            for worker, op, frame, count in frames
        ]
        return series

    def _breach_events(self, operator="spin"):
        return [
            _event(
                6.0, "health", "slo_breach",
                slo=f"{operator}.p99_latency", kind="p99_latency",
                operator=operator, value=0.04, threshold=0.01,
            ),
            _event(
                9.0, "health", "slo_recover",
                slo=f"{operator}.p99_latency", kind="p99_latency",
                operator=operator, value=0.001, duration=3.0,
            ),
        ]

    def test_hot_operator_without_gate_is_compute_bound(self):
        snap = _snap(
            self._breach_events(),
            instruments=self._profile_series(
                [("1", "spin", 5.0), ("0", "relay", 0.5)],
                frames=[("1", "spin", "operators.py:SpinProcessor._spin", 120)],
            ),
        )
        report = diagnose(snap)
        (ep,) = report["breaches"]
        (cause,) = [c for c in ep["causes"] if c["type"] == "compute_bound"]
        assert cause["operator"] == "spin"
        assert cause["worker"] == "1"
        assert "91% of sampled CPU" in cause["detail"]
        assert "top frame operators.py:SpinProcessor._spin" in cause["detail"]
        assert report["root_cause"]["type"] == "compute_bound"

    def test_overlapping_gate_suppresses_compute_bound(self):
        events = self._breach_events() + [
            _event(5.5, "flowcontrol", "gate_closed", operator="spin[0]",
                   throttles=["src"]),
            _event(8.5, "flowcontrol", "gate_opened", operator="spin[0]",
                   gated_seconds=3.0),
        ]
        snap = _snap(
            events, instruments=self._profile_series([("1", "spin", 5.0)])
        )
        (ep,) = diagnose(snap)["breaches"]
        assert all(c["type"] != "compute_bound" for c in ep["causes"])

    def test_share_below_threshold_is_not_compute_bound(self):
        snap = _snap(
            self._breach_events(),
            instruments=self._profile_series(
                [("1", "spin", 1.0), ("0", "relay", 1.0)]
            ),
        )
        (ep,) = diagnose(snap)["breaches"]
        assert all(c["type"] != "compute_bound" for c in ep["causes"])

    def test_duplicate_worker_series_use_max_not_sum(self):
        # Merged flight dumps repeat one worker's cumulative counters
        # (periodic + on-request dump); summing would double-count.
        snap = _snap(
            self._breach_events(),
            instruments=self._profile_series(
                [("1", "spin", 5.0), ("1", "spin", 5.0), ("0", "relay", 2.0)]
            ),
        )
        (ep,) = diagnose(snap)["breaches"]
        (cause,) = [c for c in ep["causes"] if c["type"] == "compute_bound"]
        # max() keeps spin at 5.0 of 7.0 total = 71%; a sum would have
        # reported 10.0 of 12.0 = 83%.
        assert "71% of sampled CPU (5.00s)" in cause["detail"]

    def test_non_execute_dominant_stage_suppresses(self):
        traces = {
            "t1": [
                {"operator": "spin[0]", "stage": "flush", "start": 6.0, "end": 8.0},
                {"operator": "spin[0]", "stage": "execute", "start": 6.0, "end": 6.1},
            ]
        }
        snap = _snap(
            self._breach_events(),
            instruments=self._profile_series([("1", "spin", 5.0)]),
        )
        snap["traces"] = traces
        (ep,) = diagnose(snap)["breaches"]
        assert all(c["type"] != "compute_bound" for c in ep["causes"])

    def test_runtime_kind_series_do_not_count(self):
        # Only kind="operator" CPU participates: a busy transport reader
        # must not be promoted to a compute-bound operator diagnosis.
        series = self._profile_series([("1", "spin", 0.1)])
        series.append(
            {
                "name": "neptune_profile_cpu_seconds_total",
                "kind": "counter",
                "help": "h",
                "labels": {
                    "operator": "neptune-tcp-reader",
                    "kind": "runtime",
                    "worker": "1",
                },
                "value": 50.0,
            }
        )
        (ep,) = diagnose(_snap(self._breach_events(), instruments=series))["breaches"]
        causes = [c for c in ep["causes"] if c["type"] == "compute_bound"]
        # spin holds 100% of *operator* CPU; the runtime series is inert.
        assert causes and causes[0]["operator"] == "spin"

    def test_render_names_compute_bound(self):
        snap = _snap(
            self._breach_events(),
            instruments=self._profile_series([("1", "spin", 5.0)]),
        )
        text = render_report(diagnose(snap))
        assert "compute_bound" in text


class TestChaosClockUnification:
    """Satellite 6: injected faults and SLO breaches share one clock."""

    def test_sim_fault_stamped_at_virtual_fire_time(self):
        sim = Simulator()
        obs = RuntimeObserver(clock=SimClock(sim))
        link_state = []
        schedule_sim_faults(
            sim,
            [SimFault(at=5.0, action=FaultAction.PARTITION, target="uplink")],
            links={"uplink": link_state.append},
            observer=obs,
        )
        sim.run(until=10.0)
        assert link_state == [True]
        (event,) = obs.timeline.snapshot("chaos")
        assert event.name == "link_partitioned"
        assert event.ts == 5.0  # virtual time, not wall time
        assert event.attrs["sim_time"] == 5.0

    def test_doctor_attributes_breach_to_sim_fault(self):
        sim = Simulator()
        obs = RuntimeObserver(clock=SimClock(sim))
        schedule_sim_faults(
            sim,
            [SimFault(at=5.0, action=FaultAction.PARTITION, target="uplink")],
            links={"uplink": lambda up: None},
            observer=obs,
        )
        # A breach the partition plausibly caused, 1s later on the SAME
        # virtual clock (a real-clock observer would stamp the fault
        # with wall seconds and the lookback window would never match).
        sim.call_at(
            6.0,
            lambda: obs.event(
                "health", "slo_breach",
                slo="relay.p99_latency", kind="p99_latency", operator="relay",
                value=0.5, threshold=0.01,
            ),
        )
        sim.run(until=10.0)
        report = diagnose_observer(obs)
        assert report["root_cause"]["type"] == "injected_fault"
        assert report["root_cause"]["operator"] == "uplink"
        assert "1.000s before breach" in report["root_cause"]["detail"]

    def test_simclock_refuses_to_sleep(self):
        clock = SimClock(Simulator())
        assert clock.now() == 0.0
        with pytest.raises(RuntimeError, match="yield the delay"):
            clock.sleep(1.0)
