"""Shared test setup.

The graph-verifier fixture descriptors reference deliberately-broken
operator classes by import path (``badops:...``); make that module
importable without polluting the installed package.
"""

import os
import sys

_FIXTURE_OPS = os.path.join(os.path.dirname(__file__), "fixtures", "graphs")
if _FIXTURE_OPS not in sys.path:
    sys.path.insert(0, _FIXTURE_OPS)
