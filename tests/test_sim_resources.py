"""Tests for simulated CPUs, queues, links, TCP, and the GC model."""

import pytest

from repro.sim import Calibration, Simulator
from repro.sim.resources import ByteQueue, CpuScheduler, GcModel, Link, TcpConnection

CAL = Calibration()


class TestCpuScheduler:
    def test_single_thread_no_extra_switches(self):
        sim = Simulator()
        cpu = CpuScheduler(sim, cores=1, cal=CAL)

        def worker():
            for _ in range(10):
                yield cpu.execute("t1", 1e-3)

        sim.process(worker())
        sim.run()
        assert cpu.context_switches == 1  # only the initial dispatch
        assert cpu.busy_seconds == pytest.approx(10e-3 + CAL.context_switch)

    def test_alternating_threads_switch_every_item(self):
        sim = Simulator()
        cpu = CpuScheduler(sim, cores=1, cal=CAL)
        done = []

        def worker(tid):
            for _ in range(5):
                yield cpu.execute(tid, 1e-3)
                yield 1e-3  # let the other thread interleave
            done.append(tid)

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert done == ["a", "b"]
        assert cpu.context_switches == 10  # a/b alternate on the core

    def test_parallel_cores(self):
        sim = Simulator()
        cpu = CpuScheduler(sim, cores=2, cal=CAL)
        finish = {}

        def worker(tid):
            yield cpu.execute(tid, 1.0)
            finish[tid] = sim.now

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        # Both ran concurrently on separate cores.
        assert finish["a"] == pytest.approx(1.0 + CAL.context_switch)
        assert finish["b"] == pytest.approx(1.0 + CAL.context_switch)

    def test_utilization(self):
        sim = Simulator()
        cpu = CpuScheduler(sim, cores=2, cal=CAL)

        def worker():
            yield cpu.execute("t", 1.0)
            yield 1.0  # idle second

        sim.process(worker())
        sim.run()
        assert cpu.utilization() == pytest.approx(0.25, rel=0.01)  # 1s of 4 core-s

    def test_per_thread_accounting(self):
        sim = Simulator()
        cpu = CpuScheduler(sim, cores=1, cal=CAL)

        def worker():
            yield cpu.execute("x", 0.5)
            yield cpu.execute("x", 0.25)

        sim.process(worker())
        sim.run()
        assert cpu.per_thread_seconds["x"] == pytest.approx(0.75 + CAL.context_switch)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CpuScheduler(sim, cores=0, cal=CAL)
        cpu = CpuScheduler(sim, cores=1, cal=CAL)
        with pytest.raises(ValueError):
            cpu.execute("t", -1.0)


class TestByteQueue:
    def test_put_get_all(self):
        sim = Simulator()
        q = ByteQueue(sim, high_watermark=1000)
        got = []

        def producer():
            for i in range(3):
                yield q.put(10, i)

        def consumer():
            items = yield q.get_all()
            got.extend(item for _, item in items)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2] or got == [0]  # consumer may win the race
        assert q.bytes == 0 or len(q) > 0

    def test_gate_blocks_put_until_drain(self):
        sim = Simulator()
        q = ByteQueue(sim, high_watermark=100, low_watermark=20)
        timeline = []

        def producer():
            yield q.put(100, "fill")  # trips the gate
            t0 = sim.now
            yield q.put(10, "blocked")
            timeline.append(("accepted", sim.now - t0))

        def consumer():
            yield 5.0
            items = yield q.get_all()
            timeline.append(("drained", len(items)))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        # Both fire at t=5.0; intra-tick order is a scheduling detail.
        assert sorted(timeline) == [("accepted", 5.0), ("drained", 1)]
        assert q.writer_blocks == 1
        assert q.gate_trips == 1

    def test_get_all_waits_for_data(self):
        sim = Simulator()
        q = ByteQueue(sim, high_watermark=100)
        got = []

        def consumer():
            items = yield q.get_all()
            got.append((sim.now, [i for _, i in items]))

        def producer():
            yield 3.0
            yield q.put(5, "late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(3.0, ["late"])]

    def test_peak_tracking(self):
        sim = Simulator()
        q = ByteQueue(sim, high_watermark=10_000)

        def producer():
            yield q.put(100, "a")
            yield q.put(200, "b")

        sim.process(producer())
        sim.run()
        assert q.peak_bytes == 300
        assert q.total_put == 2

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ByteQueue(sim, high_watermark=0)
        with pytest.raises(ValueError):
            ByteQueue(sim, high_watermark=10, low_watermark=10)


class TestLink:
    def test_transfer_time_includes_framing(self):
        sim = Simulator()
        link = Link(sim, CAL)
        arrivals = []

        def sender():
            yield link.transfer(1460)  # exactly one MSS
            arrivals.append(sim.now)

        sim.process(sender())
        sim.run()
        wire = 1460 + 40 + 38
        assert arrivals[0] == pytest.approx(wire * 8 / 1e9 + CAL.propagation)

    def test_fifo_serialization(self):
        sim = Simulator()
        link = Link(sim, CAL)
        arrivals = []

        def sender():
            e1 = link.transfer(1_000_000)
            e2 = link.transfer(1_000_000)
            yield e1
            arrivals.append(sim.now)
            yield e2
            arrivals.append(sim.now)

        sim.process(sender())
        sim.run()
        # Second transfer waits for the first to clock out.
        assert arrivals[1] - arrivals[0] == pytest.approx(
            CAL.wire_bytes(1_000_000) * 8 / 1e9
        )

    def test_small_messages_waste_bandwidth(self):
        """The §III-B1 premise: tiny payloads → low goodput efficiency."""
        assert CAL.goodput_efficiency(50, batch=1) < 0.45
        assert CAL.goodput_efficiency(50, batch=1000) > 0.90

    def test_utilization_and_goodput(self):
        sim = Simulator()
        link = Link(sim, CAL)

        def sender():
            for _ in range(100):
                yield link.transfer(100_000)

        sim.process(sender())
        sim.run()
        assert 0.85 < link.utilization() <= 1.01
        assert link.goodput_bps() < CAL.link_rate_bps


class TestTcpConnection:
    def test_window_limits_in_flight(self):
        sim = Simulator()
        link = Link(sim, CAL)
        q = ByteQueue(sim, high_watermark=10**9)
        tcp = TcpConnection(sim, link, q, CAL, window=10_000)
        accepted = []

        def sender():
            for i in range(5):
                yield tcp.send(8000, i)
                accepted.append((i, sim.now))

        sim.process(sender())
        sim.run()
        assert len(accepted) == 5
        assert tcp.sender_stalls >= 4  # every send after the first waited
        assert tcp.in_flight == 0  # all delivered and credited

    def test_gated_receiver_stalls_sender(self):
        """Receiver app not draining → zero window → sender blocked."""
        sim = Simulator()
        link = Link(sim, CAL)
        q = ByteQueue(sim, high_watermark=5000, low_watermark=1000)
        tcp = TcpConnection(sim, link, q, CAL, window=8000)
        progress = []

        def sender():
            for i in range(10):
                yield tcp.send(4000, i)
                progress.append((i, sim.now))

        def lazy_consumer():
            yield 1.0  # app sleeps; queue gates at 5000 bytes
            while True:
                items = yield q.get_all()
                if not items:
                    return
                yield 0.01

        sim.process(sender())
        sim.process(lazy_consumer())
        sim.run(until=5.0)
        # Before the consumer wakes at t=1.0 only the sends that fit in
        # the window plus early credits complete (4 of 10).
        early = [i for i, t in progress if t < 1.0]
        assert len(early) <= 4
        assert len(progress) == 10  # all complete after draining


class TestGcModel:
    def test_cost_proportional_to_garbage(self):
        gc = GcModel(CAL)
        gc.allocate(4_000_000)
        cost = gc.drain_gc_cost()
        assert cost == pytest.approx(4_000_000 / CAL.gc_bytes_per_second)
        assert gc.drain_gc_cost() == 0.0  # drained

    def test_heap_pressure_inflates_cost(self):
        gc = GcModel(CAL)
        gc.allocate(1_000_000)
        base = gc.drain_gc_cost()
        gc.allocate(1_000_000)
        gc.set_live(int(CAL.heap_bytes * 0.9))
        pressured = gc.drain_gc_cost()
        assert pressured > 5 * base

    def test_accrual(self):
        gc = GcModel(CAL)
        gc.allocate(1000)
        gc.drain_gc_cost()
        gc.allocate(1000)
        gc.drain_gc_cost()
        assert gc.gc_seconds_accrued == pytest.approx(2000 / CAL.gc_bytes_per_second)
