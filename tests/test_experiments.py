"""Tests for the experiment drivers (quick-budget sanity of each)."""

import math

from repro.sim import experiments as exp


QUICK = dict(duration=0.4, max_events=30_000)


class TestFormatRows:
    def test_alignment_and_title(self):
        text = exp.format_rows(
            [{"a": 1, "bb": 2.5}, {"a": 100, "bb": 0.001234}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert len(lines) == 4

    def test_empty(self):
        assert exp.format_rows([], title="x") == "x"

    def test_float_formatting(self):
        text = exp.format_rows([{"v": 1234567.0}, {"v": 0.000123}, {"v": 0.0}])
        assert "1.235e+06" in text
        assert "0.000123" in text


class TestDrivers:
    def test_fig2_rows_complete(self):
        rows = exp.fig2_buffer_sweep(
            buffer_sizes=(1024, 1 << 20), message_sizes=(50,), **QUICK
        )
        assert len(rows) == 2
        assert all(
            {"message_B", "buffer_B", "throughput_msg_s", "latency_ms", "bandwidth_gbps"}
            == set(r)
            for r in rows
        )
        assert all(r["throughput_msg_s"] > 0 for r in rows)

    def test_table1_has_ratio_row(self):
        rows = exp.table1_context_switches(repeats=2, duration=0.5)
        assert [r["mode"] for r in rows][:2] == ["batched", "individual"]
        assert rows[2]["ctx_switches_per_5s_mean"] > 1

    def test_gc_rows(self):
        rows = exp.gc_object_reuse(duration=0.5)
        assert rows[0]["mode"] == "object reuse"
        assert rows[1]["gc_time_pct_of_processing"] > rows[0][
            "gc_time_pct_of_processing"
        ]

    def test_fig4_rows(self):
        from repro.sim.backpressure import BackpressureParams, run_backpressure

        params = BackpressureParams(
            sleep_schedule=((0.0, 0.0), (3.0, 0.002)),
            duration=6.0,
            probe_interval=0.5,
        )
        result = run_backpressure(params)
        # The free-running phase is much faster than the throttled one.
        assert result.source_rate[1] > 5 * max(result.source_rate[-1], 1)
        rows = exp.fig4_backpressure()
        assert math.isnan(rows[0]["expected_service_rate"])
        assert rows[0]["source_rate_msg_s"] > rows[-1]["source_rate_msg_s"]

    def test_fig5_rows(self):
        rows = exp.fig5_concurrent_jobs(job_counts=(1, 50))
        assert rows[1]["cumulative_throughput_msg_s"] > rows[0][
            "cumulative_throughput_msg_s"
        ]

    def test_fig6_rows(self):
        rows = exp.fig6_cluster_size(node_counts=(10, 50))
        assert rows[1]["cumulative_throughput_msg_s"] > rows[0][
            "cumulative_throughput_msg_s"
        ]

    def test_fig7_rows(self):
        rows = exp.fig7_neptune_vs_storm(message_sizes=(50,), **QUICK)
        frameworks = {r["framework"] for r in rows}
        assert frameworks == {"neptune", "storm"}

    def test_fig9_rows(self):
        rows = exp.fig9_manufacturing(job_counts=(8, 32))
        assert all(r["speedup"] > 1 for r in rows)

    def test_fig10_keys(self):
        out = exp.fig10_resource_usage()
        assert len(out["neptune_cpu_pct"]) == 50
        assert 0 <= out["cpu_one_tailed_p"] <= 1
        assert 0 <= out["mem_two_tailed_p"] <= 1

    def test_headline_keys(self):
        head = exp.headline_numbers()
        assert set(head) == {
            "single_pipeline_msg_s",
            "single_pipeline_bandwidth_gbps",
            "cluster_cumulative_msg_s",
            "latency_p99_ms_10KB",
            "manufacturing_cumulative_msg_s",
        }
        assert all(v > 0 for v in head.values())
