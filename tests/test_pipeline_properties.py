"""Property-based end-to-end tests: randomized pipeline shapes must
always preserve the §I-B guarantees (exactly-once, per-sender order)."""

import threading

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    NeptuneConfig,
    NeptuneRuntime,
    StreamProcessingGraph,
)
from repro.core.operators import StreamProcessor
from repro.workloads import CountingSource, RELAY_SCHEMA


class OrderCheckingSink(StreamProcessor):
    """Records sequence numbers and verifies per-upstream-leg order."""

    def __init__(self, store, lock):
        super().__init__()
        self.store = store
        self.lock = lock

    def process(self, packet, ctx):
        with self.lock:
            self.store.append(packet.get("seq"))

    def output_schema(self, stream):
        raise KeyError(stream)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    total=st.integers(min_value=1, max_value=400),
    source_par=st.integers(min_value=1, max_value=2),
    sink_par=st.integers(min_value=1, max_value=3),
    buffer_capacity=st.sampled_from([64, 512, 4096]),
    partitioning=st.sampled_from(["round-robin", "shuffle", "broadcast"]),
    payload=st.integers(min_value=0, max_value=200),
)
def test_random_pipeline_exactly_once(
    total, source_par, sink_par, buffer_capacity, partitioning, payload
):
    """For any (parallelism, buffer, partitioning, size) combination:
    every emitted packet arrives the exact expected number of times."""
    store = []
    lock = threading.Lock()
    g = StreamProcessingGraph(
        "prop",
        config=NeptuneConfig(buffer_capacity=buffer_capacity, buffer_max_delay=0.002),
    )
    g.add_source(
        "src",
        lambda: CountingSource(total=total, payload_size=payload),
        parallelism=source_par,
    )
    g.add_processor(
        "sink", lambda: OrderCheckingSink(store, lock), parallelism=sink_par
    )
    g.link("src", "sink", partitioning=partitioning)
    with NeptuneRuntime() as rt:
        handle = rt.submit(g)
        assert handle.await_completion(timeout=120)
        assert handle.failures == {}
    copies = sink_par if partitioning == "broadcast" else 1
    expected = sorted(list(range(total)) * source_par * copies)
    assert sorted(store) == expected
