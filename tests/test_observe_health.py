"""Health engine: SLO state machines, value extraction, exports, and
the adaptive trace-sampling controller (including its determinism
guarantee)."""

import pytest

from repro.core.graph import StreamProcessingGraph
from repro.observe import (
    SLO,
    AdaptiveSampler,
    HealthEngine,
    RuntimeObserver,
    Tracer,
    default_slos,
    graph_regions,
)
from repro.observe.export import to_prometheus
from repro.observe.health import SLO_KINDS
from repro.util.clock import ManualClock
from repro.workloads import CountingSource, RelayProcessor, VariableRateProcessor


def _observer(clock=None):
    return RuntimeObserver(clock=clock or ManualClock())


class TestSLOValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SLO("x", "p50_latency", 0.1, operator="a")

    def test_operator_required_except_e2e(self):
        with pytest.raises(ValueError, match="target operator"):
            SLO("x", "p99_latency", 0.1)
        assert SLO("x", "e2e_delay", 0.1).operator is None

    def test_thresholds_and_hysteresis_validated(self):
        with pytest.raises(ValueError):
            SLO("x", "p99_latency", 0.0, operator="a")
        with pytest.raises(ValueError):
            SLO("x", "p99_latency", 0.1, operator="a", for_scans=0)

    def test_duplicate_names_rejected(self):
        obs = _observer()
        slos = [
            SLO("dup", "p99_latency", 0.1, operator="a"),
            SLO("dup", "p99_latency", 0.2, operator="b"),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            HealthEngine(obs, slos)

    def test_default_slos_cover_operators(self):
        slos = default_slos(["snk", "src"], latency_budget=0.1, e2e_budget=1.0)
        names = [s.name for s in slos]
        assert names == ["snk.p99_latency", "src.p99_latency", "job.e2e_delay"]
        assert all(s.kind in SLO_KINDS for s in slos)


class TestBreachRecoverStateMachine:
    def _engine(self, clock, threshold=0.01):
        obs = _observer(clock)
        gauge = obs.registry.gauge(
            "neptune_operator_batch_latency_seconds",
            {"operator": "relay", "quantile": "p99"},
            "test",
        )
        slo = SLO(
            "relay.p99", "p99_latency", threshold, operator="relay",
            for_scans=2, clear_scans=2, warmup_scans=1,
        )
        return obs, gauge, HealthEngine(obs, [slo])

    def test_hysteresis_breach_then_recover(self):
        clock = ManualClock()
        obs, gauge, engine = self._engine(clock)
        gauge.set(0.5)  # way over the 10 ms budget
        assert engine.scan_once() == []  # scan 1: warmup
        clock.advance(1.0)
        assert engine.scan_once() == []  # scan 2: bad_scans=1 < for_scans
        clock.advance(1.0)
        assert engine.scan_once() == [("relay.p99", "breach")]
        assert engine.breached_monitors()[0].slo.name == "relay.p99"
        gauge.set(0.001)
        clock.advance(1.0)
        assert engine.scan_once() == []  # good_scans=1 < clear_scans
        clock.advance(1.0)
        assert engine.scan_once() == [("relay.p99", "recover")]
        assert engine.breached_monitors() == []

    def test_transitions_land_on_timeline_with_engine_clock(self):
        clock = ManualClock(start=100.0)
        obs, gauge, engine = self._engine(clock)
        gauge.set(0.5)
        for _ in range(3):
            engine.scan_once()
            clock.advance(1.0)
        breach_events = obs.timeline.snapshot("health", "slo_breach")
        assert len(breach_events) == 1
        assert breach_events[0].ts == 102.0  # third scan's clock reading
        assert breach_events[0].attrs["slo"] == "relay.p99"
        assert breach_events[0].attrs["operator"] == "relay"
        gauge.set(0.001)
        for _ in range(2):
            engine.scan_once()
            clock.advance(1.0)
        recover = obs.timeline.snapshot("health", "slo_recover")
        assert len(recover) == 1
        assert recover[0].attrs["duration"] == pytest.approx(2.0)

    def test_flapping_value_never_breaches(self):
        clock = ManualClock()
        obs, gauge, engine = self._engine(clock)
        for i in range(10):  # alternates: bad_scans never reaches 2
            gauge.set(0.5 if i % 2 == 0 else 0.001)
            engine.scan_once()
            clock.advance(1.0)
        assert engine.breached_monitors() == []
        assert obs.timeline.snapshot("health", "slo_breach") == []

    def test_exports_slo_series(self):
        clock = ManualClock()
        obs, gauge, engine = self._engine(clock)
        gauge.set(0.5)
        for _ in range(3):
            engine.scan_once()
            clock.advance(1.0)
        text = to_prometheus(obs.registry)
        assert 'neptune_slo_breached{slo="relay.p99"} 1' in text
        assert 'neptune_slo_breaches_total{slo="relay.p99"} 1' in text
        assert "neptune_health_scans_total 3" in text
        assert 'neptune_slo_value{slo="relay.p99"}' in text


class TestThroughputFloor:
    def test_rate_is_a_clock_delta(self):
        clock = ManualClock()
        obs = _observer(clock)
        counter = obs.registry.counter(
            "neptune_operator_packets_in_total", {"operator": "src"}, "test"
        )
        slo = SLO(
            "src.rate", "throughput_floor", 100.0, operator="src",
            for_scans=1, clear_scans=1, warmup_scans=0,
        )
        engine = HealthEngine(obs, [slo])
        counter.set_total(0)
        assert engine.scan_once() == []  # first sighting: no delta yet
        clock.advance(1.0)
        counter.set_total(200)  # 200 pkt/s >= 100 floor
        assert engine.scan_once() == []
        clock.advance(1.0)
        counter.set_total(210)  # 10 pkt/s < 100 floor
        assert engine.scan_once() == [("src.rate", "breach")]
        assert engine.monitors[0].last_value == pytest.approx(10.0)


class TestScanRobustness:
    def test_missing_metric_is_not_a_breach(self):
        obs = _observer()
        engine = HealthEngine(
            obs, [SLO("gone.p99", "p99_latency", 0.01, operator="gone")]
        )
        for _ in range(5):
            assert engine.scan_once() == []
        assert engine.breached_monitors() == []

    def test_background_loop_survives_dying_scrape(self):
        obs = RuntimeObserver()

        def explode():
            raise RuntimeError("job torn down")

        engine = HealthEngine(
            obs,
            [SLO("x.p99", "p99_latency", 0.01, operator="x")],
            scrape=explode,
            interval=0.005,
        )
        engine.start()
        engine.start()  # idempotent
        import time

        deadline = time.monotonic() + 2.0
        while engine.scan_errors < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        engine.stop()
        assert engine.scan_errors >= 2
        assert engine.scans == 0  # every scan died before counting


class TestAdaptiveSampler:
    def test_validation(self):
        tracer = Tracer(sample_every=8)
        with pytest.raises(ValueError):
            AdaptiveSampler(tracer, hot_every=0)
        with pytest.raises(ValueError):
            AdaptiveSampler(tracer, decay=1)
        with pytest.raises(ValueError, match="base sampling rate"):
            AdaptiveSampler(Tracer(sample_every=0))
        with pytest.raises(ValueError, match="sparser"):
            AdaptiveSampler(tracer, hot_every=16)

    def test_raise_then_multiplicative_decay(self):
        tracer = Tracer(sample_every=8)
        sampler = AdaptiveSampler(tracer, hot_every=1, decay=4)
        sampler.observe(1, {"src"})
        assert sampler.rate_for("src") == 1
        assert tracer.rates() == {"src": 1}
        sampler.observe(2, set())  # healthy: 1 -> 4
        assert sampler.rate_for("src") == 4
        sampler.observe(3, set())  # 4*4=16 caps at base 8 -> override dropped
        assert sampler.rate_for("src") == 8
        assert tracer.rates() == {}
        assert [d for d in sampler.decisions] == [
            (1, "src", 1),
            (2, "src", 4),
            (3, "src", 8),
        ]

    def test_steady_state_emits_no_decisions(self):
        sampler = AdaptiveSampler(Tracer(sample_every=8))
        sampler.observe(1, {"src"})
        assert sampler.observe(2, {"src"}) == []  # already hot

    def test_decisions_recorded_on_timeline_and_registry(self):
        obs = _observer()
        sampler = AdaptiveSampler(Tracer(sample_every=8))
        sampler.observe(1, {"src"}, obs)
        sampler.observe(2, set(), obs)
        names = [e.name for e in obs.timeline.snapshot("health")]
        assert names == ["sampling_raised", "sampling_decayed"]
        text = to_prometheus(obs.registry)
        assert 'neptune_trace_sample_every{source="src"} 4' in text

    def test_overridden_source_does_not_perturb_global_sequence(self):
        tracer = Tracer(sample_every=2)
        baseline = [tracer.maybe_sample("other") is not None for _ in range(6)]
        tracer2 = Tracer(sample_every=2)
        tracer2.set_rate("hot", 1)
        pattern = []
        for _ in range(6):
            tracer2.maybe_sample("hot")
            pattern.append(tracer2.maybe_sample("other") is not None)
        assert pattern == baseline

    def test_engine_drives_sampler_from_breached_regions(self):
        clock = ManualClock()
        obs = _observer(clock)
        tracer = Tracer(sample_every=8)
        gauge = obs.registry.gauge(
            "neptune_operator_batch_latency_seconds",
            {"operator": "sink", "quantile": "p99"},
            "test",
        )
        engine = HealthEngine(
            obs,
            [SLO("sink.p99", "p99_latency", 0.01, operator="sink",
                 for_scans=1, warmup_scans=0)],
            sampler=AdaptiveSampler(tracer, hot_every=1),
            regions={"sink": ["src"]},
        )
        gauge.set(0.5)
        engine.scan_once()
        assert tracer.rates() == {"src": 1}


class TestDeterminism:
    """Identical breach schedules must yield identical decisions."""

    SCHEDULE = [
        {"a"}, {"a", "b"}, {"b"}, set(), set(), {"a"}, set(), set(), set(), set()
    ]

    def _run(self):
        tracer = Tracer(sample_every=16)
        sampler = AdaptiveSampler(tracer, hot_every=2, decay=4)
        rate_trail = []
        for scan, hot in enumerate(self.SCHEDULE, start=1):
            sampler.observe(scan, hot)
            rate_trail.append((sampler.rate_for("a"), sampler.rate_for("b")))
        return sampler.decisions, rate_trail, tracer.rates()

    def test_two_runs_identical(self):
        first = self._run()
        second = self._run()
        assert first == second
        assert first[0]  # schedule produced real decisions
        assert first[2] == {}  # everything decayed back to base


class TestGraphRegions:
    def test_transitive_sources(self):
        g = StreamProcessingGraph("regions")
        g.add_source("src", lambda: CountingSource(total=1))
        g.add_source("src2", lambda: CountingSource(total=1))
        g.add_processor("relay", RelayProcessor)
        g.add_processor("sink", lambda: VariableRateProcessor())
        g.link("src", "relay").link("src2", "relay").link("relay", "sink")
        regions = graph_regions(g)
        assert regions["sink"] == ["src", "src2"]
        assert regions["relay"] == ["src", "src2"]
        assert regions["src"] == ["src"]
