"""Package-level behaviour: lazy exports, version, module map."""

import importlib

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "name",
        ["StreamPacket", "StreamProcessingGraph", "StreamSource", "StreamProcessor", "NeptuneRuntime"],
    )
    def test_export_resolves(self, name):
        obj = getattr(repro, name)
        assert obj is not None
        # Resolves to the same object as the canonical module path.
        module = importlib.import_module(repro._EXPORTS[name])
        assert getattr(module, name) is obj

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.NoSuchThing  # noqa: B018

    def test_all_lists_exports(self):
        for name in repro._EXPORTS:
            assert name in repro.__all__


class TestSubpackagesImportable:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.granules",
            "repro.net",
            "repro.lz4",
            "repro.compression",
            "repro.broker",
            "repro.sim",
            "repro.workloads",
            "repro.stats",
            "repro.cli",
            "repro.core.distributed",
            "repro.core.checkpoint",
            "repro.core.monitor",
            "repro.workloads.stdlib",
            "repro.sim.experiments",
        ],
    )
    def test_imports_cleanly(self, module):
        importlib.import_module(module)
