"""Cluster observability plane against real worker processes.

Four live scenarios, one per pillar of the plane:

- **Stitching** — spans closed in different worker processes tile into
  one end-to-end trace with *exactly* zero gap and zero overlap: the
  runtime closes each stage at the float64 timestamp the next one
  opens, ``CLOCK_MONOTONIC`` is machine-wide, and JSON round-trips the
  repr exactly, so the invariant survives the control channel.
- **Restart + ack-replay** — a SIGKILLed source worker respawns and
  replays; the surviving listener suppresses the duplicate frames, so
  the merged cluster registry must count every packet exactly once and
  no stitched trace may hold a duplicated (hop, stage) span.
- **Doctor attribution** — a stalled sink on one worker closes its
  watermark gate; the backpressure cascade blocks a relay on a
  *different* worker whose local SLO monitor reports the breach.  The
  cluster doctor must blame the sink's worker for a breach observed on
  the relay's.
- **Flight recorder** — a pure SIGKILL (no dump request, no goodbye)
  must still leave a readable periodic dump on disk, and the merged
  dumps must feed ``repro doctor --from-dump`` unchanged.

Everything here imports :mod:`procharness`, so it stays behind
``@pytest.mark.cluster`` — tier-1 never spawns processes.
"""

import json

import pytest
from procharness import drain, live_cluster, wait_until

from repro.cluster import build_plan
from repro.core import NeptuneConfig, StreamProcessingGraph
from repro.core.graph import descriptor_factory

pytestmark = pytest.mark.cluster


def _counter_total(registry, name, **labels):
    """Sum a counter across the merged registry's matching series."""
    total = 0.0
    for sample in registry.collect():
        if sample.name != name:
            continue
        have = dict(sample.labels or ())
        if all(have.get(k) == v for k, v in labels.items()):
            total += sample.value
    return total


# ---------------------------------------------------------------------------
# cross-worker trace stitching
# ---------------------------------------------------------------------------

STITCH_TOTAL = 200


def stitch_graph():
    graph = StreamProcessingGraph(
        "cluster-stitch",
        config=NeptuneConfig(buffer_capacity=512, buffer_max_delay=0.003),
    )
    graph.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:CountingSource",
            total=STITCH_TOTAL,
            payload_size=24,
        ),
    )
    graph.add_processor(
        "relay", descriptor_factory("repro.workloads.operators:RelayProcessor")
    )
    graph.add_processor(
        "sink", descriptor_factory("repro.workloads.operators:CollectingSink")
    )
    graph.link("source", "relay")
    graph.link("relay", "sink")
    return graph


def test_cross_worker_traces_tile_with_zero_gap_and_overlap():
    graph = stitch_graph()
    # Spans close on the RECEIVING worker: hop 0 (source->relay) closes
    # where the relay runs, hop 1 (relay->sink) where the sink runs —
    # pinning relay and sink to different workers makes every complete
    # trace span both processes.
    plan = build_plan(graph, n_workers=2, pin={"source": 0, "relay": 0, "sink": 1})

    with live_cluster(
        graph, n_workers=2, plan=plan, observe={"sample_every": 1}
    ) as coordinator:
        # Live-side checks while the workers are up: the DeltaSource
        # answers collect_info and the coordinator reports collection
        # age per worker (`repro cluster status`).
        assert wait_until(
            lambda: (coordinator.collector.status()["absorbed"] or 0) > 0,
            timeout=30.0,
        ), "collector never absorbed a delta"
        info = coordinator.handles[0].proxy.collect_info()
        assert info is not None and info["seq"] >= 1
        for entry in coordinator.status():
            assert "last_collect_age" in entry
        drain(coordinator)
        assert coordinator.job.failures() == {}

    collector = coordinator.collector
    # The pre-stop hook ran one final synchronous poll: the merged view
    # includes the drained tail.
    registry = collector.observer.registry
    assert (
        _counter_total(
            registry,
            "neptune_operator_packets_in_total",
            operator="sink",
            worker="1",
        )
        == STITCH_TOTAL
    )

    traces = collector.stitched()
    complete = [t for t in traces if t.complete]
    cross = [t for t in complete if len(t.workers) >= 2]
    assert cross, f"no complete cross-worker traces among {len(traces)}"
    for trace in cross:
        assert trace.hops == 2
        assert sorted(trace.workers) == ["0", "1"]
        # The tiling invariant is exact, not approximate: each stage
        # closes at the float the next one opens, and the control
        # channel's JSON round-trip preserves the floats bit-for-bit.
        assert trace.gap_seconds == 0.0
        assert trace.overlap_seconds == 0.0
        assert trace.duration > 0.0


# ---------------------------------------------------------------------------
# worker restart + ack-replay: telemetry must not double-count
# ---------------------------------------------------------------------------

REPLAY_TOTAL = 600
KILL_AT = 150  # sink packets observed before the SIGKILL


def replay_graph(sink_path):
    # Same determinism contract as the chaos suite: fixed-size records,
    # frames cut by capacity only (huge flush timer), the killed worker
    # hosts ONLY the source — its replay reproduces the first run's
    # frame boundaries, so the surviving listener suppresses the
    # duplicated prefix wholesale.
    graph = StreamProcessingGraph(
        "cluster-observe-replay",
        config=NeptuneConfig(buffer_capacity=2048, buffer_max_delay=3600.0),
    )
    graph.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:CountingSource",
            total=REPLAY_TOTAL,
            payload_size=24,
        ),
    )
    graph.add_processor(
        "sink",
        descriptor_factory("repro.workloads.operators:FileSink", path=str(sink_path)),
    )
    graph.link("source", "sink")
    return graph


def _sink_packets(handle):
    try:
        return handle.proxy.metrics().get("sink", {}).get("packets_in", 0)
    except Exception:
        return 0


@pytest.mark.chaos
def test_restart_and_replay_do_not_double_count_telemetry(tmp_path):
    sink_path = tmp_path / "delivered.txt"
    graph = replay_graph(sink_path)
    plan = build_plan(graph, n_workers=2, pin={"source": 0, "sink": 1})

    with live_cluster(
        graph, n_workers=2, plan=plan, observe={"sample_every": 1}
    ) as coordinator:
        survivor = coordinator.handles[1]
        assert wait_until(
            lambda: _sink_packets(survivor) >= KILL_AT, timeout=90.0
        ), "sink never reached the kill threshold"

        # Simulate an in-flight collect: a delta fetched from the doomed
        # incarnation just before the kill, absorbed only after restart.
        in_flight = coordinator.handles[0].proxy.collect()
        assert in_flight["incarnation"] == 0

        # Pure SIGKILL (dump=False: no flight-dump request first), then
        # respawn with the identical spec.  restart_worker resets the
        # collector's seq cursor so the fresh incarnation's deltas are
        # not dropped as stale.
        coordinator.kill_worker(0, dump=False)
        coordinator.restart_worker(0)
        assert coordinator.handles[0].restarts == 1
        assert coordinator.handles[0].spec.incarnation == 1

        # The dead incarnation's delta must be fenced, not absorbed
        # under the new worker label (it would bury the restarted seq).
        fenced_before = coordinator.collector.fenced
        assert coordinator.collector.absorb(in_flight) is False
        assert coordinator.collector.fenced == fenced_before + 1

        assert wait_until(
            lambda: coordinator.handles[0]
            .proxy.metrics()
            .get("source", {})
            .get("packets_out", 0)
            >= REPLAY_TOTAL,
            timeout=90.0,
        ), "restarted source never finished re-emitting"

        series = survivor.proxy.telemetry()
        suppressed = sum(
            s["value"]
            for s in series
            if s["name"] == "neptune_listener_duplicates_suppressed_total"
        )
        assert suppressed > 0, "kill did not force any replay suppression"

        drain(coordinator)
        assert coordinator.job.failures() == {}

    # Data plane: exactly-once held.
    delivered = [int(line) for line in sink_path.read_text().splitlines()]
    assert sorted(delivered) == list(range(REPLAY_TOTAL))

    # Telemetry plane: the merged counter equals the data-plane truth —
    # never-backwards absorption plus seq-stale dropping means neither
    # the replayed frames nor re-shipped deltas inflated it.
    collector = coordinator.collector
    registry = collector.observer.registry
    assert (
        _counter_total(
            registry,
            "neptune_operator_packets_in_total",
            operator="sink",
            worker="1",
        )
        == REPLAY_TOTAL
    )

    # Trace plane: span identity dedup means no stitched trace carries
    # the same (hop, stage) twice even though the restart re-executed
    # and re-shipped hops.
    for trace in collector.stitched():
        keys = [(s.hop, s.stage) for s in trace.spans]
        assert len(keys) == len(set(keys)), f"duplicate spans in {trace!r}"


# ---------------------------------------------------------------------------
# cluster doctor: cross-worker root-cause attribution
# ---------------------------------------------------------------------------

DOCTOR_TOTAL = 400

#: The relay's blocked-batch latency is paced by the sink's per-packet
#: sleep (machine-independent), so a budget well under one sink-sleep
#: makes the relay's local p99 SLO breach deterministic once the
#: cascade blocks its emit.
SINK_SLEEP = 0.04
LATENCY_BUDGET = 0.015


def doctor_graph():
    # Big records + tiny watermarks so the stalled sink's inbound
    # buffer crosses its high watermark quickly and the cascade blocks
    # the relay (the blocked emit is what breaches the relay's local
    # p99 latency SLO on a *different* worker).
    graph = StreamProcessingGraph(
        "cluster-doctor",
        config=NeptuneConfig(
            buffer_capacity=8192,
            buffer_max_delay=0.005,
            inbound_high_watermark=16384,
        ),
    )
    graph.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:CountingSource",
            total=DOCTOR_TOTAL,
            payload_size=2048,
        ),
    )
    graph.add_processor(
        "relay", descriptor_factory("repro.workloads.operators:RelayProcessor")
    )
    graph.add_processor(
        "sink",
        descriptor_factory(
            "repro.workloads.operators:SlowSink", sleep=SINK_SLEEP, after=20
        ),
    )
    graph.link("source", "relay")
    graph.link("relay", "sink")
    return graph


@pytest.mark.slow
def test_doctor_attributes_breach_to_stalled_sink_on_other_worker():
    graph = doctor_graph()
    plan = build_plan(
        graph, n_workers=3, pin={"source": 0, "relay": 1, "sink": 2}
    )

    with live_cluster(
        graph,
        n_workers=3,
        plan=plan,
        # Worker-local health engines (slos config) are what stamp the
        # breach with the worker that OBSERVED it; the gate events carry
        # the worker that CAUSED it.
        observe={"sample_every": 1, "slos": {"latency_budget": LATENCY_BUDGET}},
        launch_timeout=180.0,
    ) as coordinator:
        drain(coordinator)
        assert coordinator.job.failures() == {}

    from repro.observe import export
    from repro.observe.doctor import diagnose, render_report

    collector = coordinator.collector
    snap = export.snapshot(collector.observer)
    report = diagnose(snap)

    assert report["gate_episodes"] > 0, "sink stall never closed a gate"
    assert not report["healthy"], "no SLO breach episode reached the timeline"

    root = report["root_cause"]
    assert root is not None
    assert root["type"] == "backpressure_cascade"
    assert root["operator"] == "sink"
    assert root["worker"] == "2"

    # The acceptance bar: some breach was OBSERVED on a worker other
    # than the one the doctor blames, and its top-ranked cause is still
    # the remote sink.
    remote = [
        ep
        for ep in report["breaches"]
        if ep["observed_on_worker"] not in (None, root["worker"])
        and ep["causes"]
        and ep["causes"][0]["operator"] == "sink"
    ]
    assert remote, (
        "no breach observed on a different worker was attributed to the "
        f"sink: {json.dumps(report['breaches'], default=str)[:2000]}"
    )

    rendered = render_report(report)
    assert "root cause" in rendered
    assert "on worker 2" in rendered


# ---------------------------------------------------------------------------
# flight recorder: SIGKILL leaves a readable post-mortem
# ---------------------------------------------------------------------------


def test_sigkill_leaves_flight_dump_readable_by_doctor(tmp_path):
    graph = stitch_graph()
    plan = build_plan(graph, n_workers=2, pin={"source": 0, "relay": 0, "sink": 1})
    flight_dir = tmp_path / "flight"
    flight_dir.mkdir()

    with live_cluster(
        graph,
        n_workers=2,
        plan=plan,
        observe={
            "sample_every": 1,
            "flight_every": 0.2,
            "flight_dir": str(flight_dir),
        },
    ) as coordinator:
        assert coordinator.flight_dir == str(flight_dir)
        # Both workers' periodic recorders must have persisted a dump
        # before the kill — that window IS the post-mortem.
        assert wait_until(
            lambda: len(coordinator.flight_paths()) == 2, timeout=30.0
        ), "periodic flight dumps never appeared"

        # Pure SIGKILL: dump=False means no flight_dump request over
        # the control channel — only the periodic dump can survive.
        coordinator.kill_worker(0, dump=False)
        assert not coordinator.handles[0].alive

    from repro.observe.doctor import diagnose
    from repro.observe.flightrec import (
        FLIGHT_SCHEMA,
        load_flight_dump,
        merge_flight_dumps,
    )

    paths = coordinator.flight_paths()
    assert len(paths) == 2, f"flight dumps missing after teardown: {paths}"
    dumps = [load_flight_dump(p) for p in paths]
    by_worker = {d["worker"]: d for d in dumps}
    assert set(by_worker) == {0, 1}
    for dump in dumps:
        assert dump["schema"] == FLIGHT_SCHEMA
        assert dump["dumps"] >= 1
    # The killed worker got no goodbye: its last dump is a periodic one.
    assert by_worker[0]["reason"] == "periodic"

    merged = merge_flight_dumps(dumps)
    assert merged["flight"]["workers"] == [0, 1]
    assert set(merged["flight"]["reasons"]) == {"0", "1"}
    report = diagnose(merged)  # consumable post-mortem, healthy or not
    assert report["schema"] == "neptune-doctor/1"

    # And the CLI path the runbook names: `repro doctor --from-dump DIR`.
    from repro.cli import main as cli_main

    assert cli_main(["doctor", "--from-dump", str(flight_dir)]) == 0
