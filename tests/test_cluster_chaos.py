"""Chaos against real processes: SIGKILL a worker mid-stream, prove
exactly-once delivery end to end.

The scenario reuses the :mod:`repro.chaos` fault-plan vocabulary
(``FaultPlan.at(site, index, FaultAction.KILL_NODE)``) but fires it at
*live worker processes* through
:class:`~repro.cluster.ProcessFaultDriver` — index is data progress
(packets observed at the sink), not a frame ordinal.

Determinism contract that makes kill-and-replay byte-compatible:

- the killed worker hosts ONLY the source (``pin``), so no received
  state dies with it — everything it re-sends is reproducible;
- the source is a deterministic counter re-emitting the same records
  from 0 after restart;
- records are fixed-size and ``buffer_max_delay`` is huge, so frames
  are cut by capacity only — the replayed frame boundaries match the
  first run's byte for byte;
- the drain is only started after the restarted source has re-emitted
  everything (a forced flush mid-replay would cut a frame at a
  different boundary inside the suppressed range and lose records);
- the sink worker survives, so its listener keeps the
  :class:`~repro.net.framing.SequenceTracker` — the replayed prefix is
  suppressed as duplicates (and re-acked), the rest is delivered once.

The audit trail is a :class:`~repro.workloads.FileSink` on the
surviving worker: after the drain the file must contain every sequence
number exactly once, and the surviving listener must report
``duplicates_suppressed > 0`` (proof the kill actually forced replay).
"""

import pytest
from procharness import drain, live_cluster, wait_until

from repro.chaos.plan import FaultAction, FaultPlan
from repro.cluster import ProcessFaultDriver, build_plan, worker_site
from repro.core import NeptuneConfig, StreamProcessingGraph
from repro.core.graph import descriptor_factory

TOTAL = 600
KILL_AT = 150  # sink packets observed before the SIGKILL fires


def chaos_graph(sink_path):
    graph = StreamProcessingGraph(
        "cluster-chaos",
        config=NeptuneConfig(
            buffer_capacity=2048,
            # Effectively infinite: frames are cut by capacity only, so
            # the replayed run reproduces the first run's boundaries.
            buffer_max_delay=3600.0,
        ),
    )
    graph.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:CountingSource", total=TOTAL, payload_size=24
        ),
    )
    graph.add_processor(
        "sink",
        descriptor_factory(
            "repro.workloads.operators:FileSink", path=str(sink_path)
        ),
    )
    graph.link("source", "sink")
    return graph


def _sink_packets(handle):
    try:
        return handle.proxy.metrics().get("sink", {}).get("packets_in", 0)
    except Exception:
        return 0


@pytest.mark.cluster
@pytest.mark.chaos
def test_sigkill_worker_mid_stream_keeps_delivery_exactly_once(tmp_path):
    sink_path = tmp_path / "delivered.txt"
    graph = chaos_graph(sink_path)
    # Worker 0 hosts ONLY the source; the sink (and its listener state)
    # lives on worker 1, which is never killed.
    plan = build_plan(graph, n_workers=2, pin={"source": 0, "sink": 1})
    fault_plan = FaultPlan().at(worker_site(0), KILL_AT, FaultAction.KILL_NODE)

    with live_cluster(graph, n_workers=2, plan=plan) as coordinator:
        driver = ProcessFaultDriver(coordinator, fault_plan, restart=True)
        assert driver.pending == 1  # the plan parsed into a live kill

        survivor = coordinator.handles[1]
        assert wait_until(
            lambda: _sink_packets(survivor) >= KILL_AT, timeout=90.0
        ), "sink never reached the kill threshold"
        assert driver.poll(_sink_packets(survivor)) == [0]
        assert driver.killed == [(KILL_AT, 0)]
        assert driver.pending == 0
        assert coordinator.handles[0].restarts == 1
        assert coordinator.handles[0].alive

        # Let the restarted source finish its deterministic replay
        # BEFORE draining: drain forces partial-frame flushes, which
        # must not happen inside the suppressed (replayed) range.
        assert wait_until(
            lambda: coordinator.handles[0]
            .proxy.metrics()
            .get("source", {})
            .get("packets_out", 0)
            >= TOTAL,
            timeout=90.0,
        ), "restarted source never finished re-emitting"

        # The surviving listener saw the replayed prefix and dropped it.
        series = survivor.proxy.telemetry()
        suppressed = sum(
            s["value"]
            for s in series
            if s["name"] == "neptune_listener_duplicates_suppressed_total"
        )
        assert suppressed > 0, "kill did not force any replay suppression"

        drain(coordinator)
        assert coordinator.job.failures() == {}

    delivered = [int(line) for line in sink_path.read_text().splitlines()]
    assert len(delivered) == TOTAL, (
        f"lost {TOTAL - len(delivered)} packets"
        if len(delivered) < TOTAL
        else f"{len(delivered) - TOTAL} duplicated packets"
    )
    assert sorted(delivered) == list(range(TOTAL))


def test_fault_driver_ignores_non_kill_and_foreign_sites(tmp_path):
    """Plan parsing is in-process: wire faults and unknown sites must
    not turn into process kills."""
    from repro.cluster import ClusterCoordinator

    graph = chaos_graph(tmp_path / "unused.txt")
    plan = build_plan(graph, n_workers=2, pin={"source": 0, "sink": 1})
    coordinator = ClusterCoordinator(graph, n_workers=2, plan=plan)
    try:
        fault_plan = (
            FaultPlan()
            .at("tcp.send", 3, FaultAction.KILL_CONNECTION)
            .at(worker_site(1), 40, FaultAction.KILL_NODE)
        )
        driver = ProcessFaultDriver(coordinator, fault_plan, restart=False)
        assert driver.pending == 1  # only the cluster.worker KILL_NODE
        assert driver.poll(10) == []  # progress below the kill index
        assert driver.killed == []
    finally:
        coordinator.terminate()
