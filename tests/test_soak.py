"""Sustained-load soak test: resource usage must stay bounded.

The paper's motivation (§I-A): unbounded queues and object churn take
streaming systems down over time.  This test runs a saturating pipeline
for several seconds and asserts the mechanisms that prevent that —
bounded channels, bounded pools, steady throughput — actually hold.
"""

import time

import pytest

from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.core.monitor import ThroughputProbe
from repro.workloads import CollectingSink, CountingSource, RelayProcessor


@pytest.mark.slow
def test_soak_bounded_resources():
    class CountOnly(CollectingSink):
        """Counts packets without retaining them (bounded memory)."""

        n = 0

        def process(self, packet, ctx):
            self.n += 1

    sink_holder = {}

    def make_sink():
        s = CountOnly([])
        sink_holder["sink"] = s
        return s

    cfg = NeptuneConfig(
        buffer_capacity=8 * 1024,
        buffer_max_delay=0.005,
        inbound_high_watermark=64 * 1024,
        inbound_low_watermark=16 * 1024,
    )
    g = StreamProcessingGraph("soak", config=cfg)
    src = CountingSource(total=None, payload_size=100)
    g.add_source("src", lambda: src)
    g.add_processor("relay", RelayProcessor)
    g.add_processor("sink", make_sink)
    g.link("src", "relay").link("relay", "sink")

    with NeptuneRuntime() as rt:
        handle = rt.submit(g)
        probe = ThroughputProbe(handle, interval=0.5)
        with probe:
            time.sleep(5.0)
        # Channels stay under their watermarks throughout (bounded by
        # construction: peak usage can overshoot high by at most one
        # frame, never grow unboundedly).
        job = handle._job
        for inst in job.all_instances():
            if inst.channel is not None:
                assert (
                    inst.channel.buffered_bytes
                    <= cfg.inbound_high_watermark + cfg.buffer_capacity + 4096
                )
            # Packet pools stay bounded regardless of packets processed.
            for pool in inst._pools.values():
                assert pool.leased_count < 512
                assert pool.free_count <= pool._max_size
        samples = probe.history("sink")
        assert handle.stop(timeout=60)

    # Sustained, steady throughput: no collapse over the run (last
    # window at least a third of the best window).
    rates = [s.packets_in_per_s for s in samples if s.packets_in_per_s > 0]
    assert len(rates) >= 4
    assert rates[-1] > max(rates) / 3
    # Everything emitted was processed (never-drop, drained).
    assert sink_holder["sink"].n == src.emitted
