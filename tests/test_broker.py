"""Tests for the message-broker substrate and its NEPTUNE bridges."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.broker import BrokerSink, BrokerSource, MessageBroker
from repro.broker.core import BrokerError, TopicPartition
from repro.core import NeptuneConfig, NeptuneRuntime, PacketCodec, StreamProcessingGraph
from repro.workloads import RELAY_SCHEMA, CollectingSink


class TestTopicPartition:
    def test_append_read_offsets(self):
        tp = TopicPartition("t", 0)
        assert tp.append(None, b"a") == 0
        assert tp.append(None, b"b") == 1
        msgs = tp.read(0)
        assert [m.value for m in msgs] == [b"a", b"b"]
        assert [m.offset for m in msgs] == [0, 1]
        assert tp.end_offset == 2

    def test_read_beyond_end_empty(self):
        tp = TopicPartition("t", 0)
        tp.append(None, b"x")
        assert tp.read(1) == []
        assert tp.read(99) == []

    def test_read_window(self):
        tp = TopicPartition("t", 0)
        for i in range(10):
            tp.append(None, bytes([i]))
        msgs = tp.read(3, max_messages=4)
        assert [m.offset for m in msgs] == [3, 4, 5, 6]

    def test_retention_truncates_base(self):
        tp = TopicPartition("t", 0, retention=3)
        for i in range(5):
            tp.append(None, bytes([i]))
        assert tp.base_offset == 2
        assert len(tp) == 3
        with pytest.raises(BrokerError, match="truncated"):
            tp.read(0)
        assert [m.value for m in tp.read(2)] == [b"\x02", b"\x03", b"\x04"]

    def test_validation(self):
        with pytest.raises(ValueError):
            TopicPartition("t", 0, retention=0)
        tp = TopicPartition("t", 0)
        with pytest.raises(ValueError):
            tp.read(0, max_messages=0)


class TestMessageBroker:
    def test_create_and_publish(self):
        broker = MessageBroker()
        broker.create_topic("readings", partitions=3)
        assert broker.partitions("readings") == 3
        broker.publish("readings", b"v1", key=b"sensor-1")
        broker.publish("readings", b"v2", key=b"sensor-1")
        # Same key → same partition, in order.
        parts = broker.topic("readings")
        non_empty = [p for p in parts if len(p)]
        assert len(non_empty) == 1
        assert [m.value for m in non_empty[0].read(0)] == [b"v1", b"v2"]

    def test_keyless_round_robin(self):
        broker = MessageBroker()
        broker.create_topic("rr", partitions=2)
        for i in range(6):
            broker.publish("rr", bytes([i]))
        assert [len(p) for p in broker.topic("rr")] == [3, 3]

    def test_duplicate_topic_rejected(self):
        broker = MessageBroker()
        broker.create_topic("t")
        with pytest.raises(BrokerError, match="already exists"):
            broker.create_topic("t")

    def test_unknown_topic(self):
        with pytest.raises(BrokerError, match="unknown topic"):
            MessageBroker().publish("ghost", b"x")

    def test_consumer_groups_independent(self):
        broker = MessageBroker()
        broker.create_topic("t", partitions=1)
        for i in range(4):
            broker.publish("t", bytes([i]))
        a = broker.poll("group-a", "t", 0)
        b = broker.poll("group-b", "t", 0)
        assert [m.value for m in a] == [m.value for m in b]

    def test_poll_autocommit_advances(self):
        broker = MessageBroker()
        broker.create_topic("t")
        broker.publish("t", b"1")
        broker.publish("t", b"2")
        first = broker.poll("g", "t", 0, max_messages=1)
        second = broker.poll("g", "t", 0, max_messages=1)
        assert first[0].value == b"1" and second[0].value == b"2"

    def test_poll_without_commit_replays(self):
        broker = MessageBroker()
        broker.create_topic("t")
        broker.publish("t", b"x")
        a = broker.poll("g", "t", 0, commit=False)
        b = broker.poll("g", "t", 0, commit=False)
        assert a[0].offset == b[0].offset == 0

    def test_commit_backwards_rejected(self):
        broker = MessageBroker()
        broker.create_topic("t")
        cg = broker.consumer_group("g", "t")
        cg.commit(0, 5)
        with pytest.raises(BrokerError, match="backwards"):
            cg.commit(0, 3)
        cg.seek(0, 3)  # explicit replay is allowed
        assert cg.committed(0) == 3

    def test_lag(self):
        broker = MessageBroker()
        broker.create_topic("t", partitions=2)
        for i in range(10):
            broker.publish("t", bytes([i]))
        assert broker.lag("g", "t") == 10
        broker.poll("g", "t", 0)
        assert broker.lag("g", "t") == 5

    def test_concurrent_producers(self):
        broker = MessageBroker()
        broker.create_topic("t", partitions=4)
        errors = []

        def produce(tag):
            try:
                for i in range(200):
                    broker.publish("t", f"{tag}:{i}".encode(), key=str(tag).encode())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=produce, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not errors
        total = sum(len(p) for p in broker.topic("t"))
        assert total == 800
        # Per-key FIFO within its partition.
        for tag in range(4):
            from repro.lz4 import xxh32

            part = broker.topic("t")[xxh32(str(tag).encode()) % 4]
            seq = [
                int(m.value.split(b":")[1])
                for m in part.read(part.base_offset, 10_000)
                if m.key == str(tag).encode()
            ]
            assert seq == sorted(seq)


def _fill_topic(broker, topic, n, partitions=3):
    broker.create_topic(topic, partitions=partitions)
    codec = PacketCodec(RELAY_SCHEMA)
    for i in range(n):
        pkt = RELAY_SCHEMA.new_packet(seq=i, emitted_at=0.0, payload=b"iot")
        broker.publish(topic, codec.encode(pkt), key=str(i % 7).encode())


class TestBrokerSourceInGraph:
    def test_ingest_replay_topic(self):
        broker = MessageBroker()
        _fill_topic(broker, "readings", 900)
        store = []
        g = StreamProcessingGraph(
            "ingest", config=NeptuneConfig(buffer_capacity=2048, buffer_max_delay=0.005)
        )
        g.add_source(
            "broker",
            lambda: BrokerSource(
                broker, "readings", "job-1", RELAY_SCHEMA, stop_at_end=True
            ),
        )
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("broker", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            assert h.await_completion(timeout=60)
        assert sorted(store) == list(range(900))
        assert broker.lag("job-1", "readings") == 0

    def test_parallel_instances_share_partitions(self):
        broker = MessageBroker()
        _fill_topic(broker, "wide", 600, partitions=4)
        store = []
        g = StreamProcessingGraph(
            "par-ingest",
            config=NeptuneConfig(buffer_capacity=2048, buffer_max_delay=0.005),
        )
        g.add_source(
            "broker",
            lambda: BrokerSource(broker, "wide", "g", RELAY_SCHEMA, stop_at_end=True),
            parallelism=2,
        )
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("broker", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=60)
        assert sorted(store) == list(range(600))

    def test_offsets_checkpoint_and_restore(self):
        broker = MessageBroker()
        _fill_topic(broker, "ckpt-topic", 300, partitions=1)
        store = []

        def graph():
            g = StreamProcessingGraph(
                "bk", config=NeptuneConfig(buffer_capacity=2048, buffer_max_delay=0.005)
            )
            g.add_source(
                "broker",
                lambda: BrokerSource(
                    broker, "ckpt-topic", "g1", RELAY_SCHEMA, stop_at_end=True
                ),
            )
            g.add_processor("sink", lambda: CollectingSink(store))
            g.link("broker", "sink")
            return g

        with NeptuneRuntime() as rt:
            h = rt.submit(graph())
            assert h.await_completion(timeout=60)
            ckpt = h.checkpoint()
        assert ckpt.state_for("broker", 0)["offsets"] == {0: 300}
        assert len(store) == 300

        # Simulate replay-from-checkpoint: more data arrives, restore.
        codec = PacketCodec(RELAY_SCHEMA)
        for i in range(300, 350):
            broker.publish(
                "ckpt-topic",
                codec.encode(
                    RELAY_SCHEMA.new_packet(seq=i, emitted_at=0.0, payload=b"iot")
                ),
            )
        with NeptuneRuntime() as rt:
            h2 = rt.submit(graph(), restore_from=ckpt)
            assert h2.await_completion(timeout=60)
        assert sorted(store) == list(range(350))  # no re-ingestion of 0-299

    def test_sink_publishes_back(self):
        broker = MessageBroker()
        _fill_topic(broker, "in", 100, partitions=1)
        broker.create_topic("out", partitions=2)
        g = StreamProcessingGraph(
            "bridge", config=NeptuneConfig(buffer_capacity=2048, buffer_max_delay=0.005)
        )
        g.add_source(
            "src",
            lambda: BrokerSource(broker, "in", "g", RELAY_SCHEMA, stop_at_end=True),
        )
        g.add_processor(
            "sink", lambda: BrokerSink(broker, "out", RELAY_SCHEMA, key_field="seq")
        )
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=60)
        total = sum(len(p) for p in broker.topic("out"))
        assert total == 100

    def test_source_validation(self):
        broker = MessageBroker()
        broker.create_topic("t")
        with pytest.raises(ValueError):
            BrokerSource(broker, "t", "g", RELAY_SCHEMA, poll_batch=0)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.one_of(st.none(), st.binary(max_size=8)), st.binary(max_size=32)),
        max_size=60,
    ),
    st.integers(min_value=1, max_value=5),
)
def test_broker_conservation_property(records, partitions):
    """Everything published is consumed exactly once, per-key in order."""
    broker = MessageBroker()
    broker.create_topic("p", partitions=partitions)
    broker.publish_many("p", records)
    consumed = []
    for part in range(partitions):
        while True:
            msgs = broker.poll("g", "p", part, max_messages=7)
            if not msgs:
                break
            consumed.extend(msgs)
    assert sorted(m.value for m in consumed) == sorted(v for _, v in records)
    assert broker.lag("g", "p") == 0
