"""Tests for custom processor scheduling strategies through the NEPTUNE
API (Granules' periodic / count-based / combined scheduling, §II)."""

import time

import pytest

from repro.core import (
    FieldType,
    NeptuneConfig,
    NeptuneRuntime,
    PacketSchema,
    StreamProcessingGraph,
)
from repro.core.operators import StreamProcessor
from repro.granules import CombinedStrategy, CountBasedStrategy, DataDrivenStrategy, PeriodicStrategy
from repro.util.errors import GraphValidationError
from repro.workloads import CollectingSink, CountingSource

HEARTBEAT = PacketSchema([("beat", FieldType.INT64)])


class HeartbeatProcessor(StreamProcessor):
    """Forwards data AND emits a heartbeat on empty periodic triggers."""

    def __init__(self):
        super().__init__()
        self.beats = 0
        self.data_packets = 0

    def process(self, packet, ctx):
        self.data_packets += 1

    def on_schedule(self, ctx):
        self.beats += 1
        out = ctx.new_packet()
        out.set("beat", self.beats)
        ctx.emit(out)

    def output_schema(self, stream):
        return HEARTBEAT


def small_config():
    return NeptuneConfig(buffer_capacity=1024, buffer_max_delay=0.003)


class TestPeriodicProcessor:
    def test_heartbeats_fire_without_data(self):
        beats = []
        proc = HeartbeatProcessor()
        g = StreamProcessingGraph("hb", config=small_config())
        # A trickle source: 5 packets then silence.
        g.add_source("src", lambda: CountingSource(total=5))
        g.add_processor(
            "heart",
            lambda: proc,
            scheduling=lambda: CombinedStrategy(
                PeriodicStrategy(0.02), DataDrivenStrategy()
            ),
        )
        g.add_processor("sink", lambda: CollectingSink(beats, field="beat"))
        g.link("src", "heart").link("heart", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            time.sleep(0.5)
            h.stop(timeout=30)
        assert proc.data_packets == 5
        assert proc.beats >= 5  # periodic triggers kept firing
        assert beats == list(range(1, len(beats) + 1))

    def test_paper_example_combination(self):
        """§II: 'run every 500 milliseconds or when data is available'."""
        proc = HeartbeatProcessor()
        g = StreamProcessingGraph("combo", config=small_config())
        g.add_source("src", lambda: CountingSource(total=50))
        g.add_processor(
            "heart",
            lambda: proc,
            scheduling=lambda: CombinedStrategy(
                PeriodicStrategy(0.5), DataDrivenStrategy()
            ),
        )
        g.add_processor("sink", CollectingSink)
        g.link("src", "heart").link("heart", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            # Data flows immediately (data-driven side, not the 500 ms timer).
            deadline = time.monotonic() + 5
            while proc.data_packets < 50 and time.monotonic() < deadline:
                time.sleep(0.005)
            h.stop(timeout=30)
        assert proc.data_packets == 50

    def test_count_based_processor_waits_for_threshold(self):
        """A count-based processor only runs once enough frames queue."""
        proc = HeartbeatProcessor()
        g = StreamProcessingGraph(
            "countb",
            config=NeptuneConfig(buffer_capacity=64, buffer_max_delay=0.002),
        )
        g.add_source("src", lambda: CountingSource(total=None, payload_size=100))
        g.add_processor(
            "heart", lambda: proc, scheduling=lambda: CountBasedStrategy(threshold=4)
        )
        g.add_processor("sink", CollectingSink)
        g.link("src", "heart").link("heart", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            deadline = time.monotonic() + 10
            while proc.data_packets == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            h.stop(timeout=60)
        assert proc.data_packets > 0


class TestValidation:
    def test_source_cannot_take_scheduling(self):
        from repro.core.graph import OperatorSpec

        with pytest.raises(GraphValidationError, match="sources control"):
            OperatorSpec(
                "s",
                CountingSource,
                is_source=True,
                scheduling=lambda: DataDrivenStrategy(),
            )

    def test_default_processors_never_get_on_schedule(self):
        """Without a custom strategy, empty executions are silent."""
        proc = HeartbeatProcessor()
        g = StreamProcessingGraph("plain", config=small_config())
        g.add_source("src", lambda: CountingSource(total=5))
        g.add_processor("heart", lambda: proc)
        g.add_processor("sink", CollectingSink)
        g.link("src", "heart").link("heart", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            h.await_completion(timeout=30)
        assert proc.beats == 0
