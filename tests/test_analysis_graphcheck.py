"""Graph-verifier tests: the seeded-bad corpus and the clean examples.

Each descriptor under ``tests/fixtures/graphs/`` is named for the one
diagnostic code it must trigger — the parametrized test asserts that
code fires exactly once and nothing else does.  The example programs
under ``examples/`` must all verify clean (the same invariant CI
gates on).
"""

import glob
import importlib.util
import os

import pytest

from repro.analysis import (
    Severity,
    verify_descriptor,
    verify_descriptor_file,
    verify_graph,
)

HERE = os.path.dirname(__file__)
REPO = os.path.dirname(HERE)
FIXTURES = sorted(glob.glob(os.path.join(HERE, "fixtures", "graphs", "*.json")))

#: Codes whose finding is advisory, not a validate()-blocking error.
WARNING_CODES = {
    "NEPG111",
    "NEPG114",
    "NEPG116",
    "NEPG118",
    "NEPG120",
    "NEPG121",
    "NEPG122",
}


def _expected_code(path: str) -> str:
    # nepg105_duplicate_link.json -> NEPG105
    return os.path.basename(path).split("_", 1)[0].upper()


@pytest.mark.parametrize("path", FIXTURES, ids=[os.path.basename(p) for p in FIXTURES])
def test_bad_fixture_fires_its_code_exactly_once(path):
    code = _expected_code(path)
    report = verify_descriptor_file(path)
    assert report.count(code) == 1, report.render()
    assert len(report) == 1, f"unexpected extra findings:\n{report.render()}"
    diag = report.diagnostics[0]
    expected = Severity.WARNING if code in WARNING_CODES else Severity.ERROR
    assert diag.severity is expected
    assert diag.message


def test_fixture_corpus_covers_every_graph_code():
    covered = {_expected_code(p) for p in FIXTURES}
    assert covered == {f"NEPG{n}" for n in range(101, 123)}


def _load_example(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(REPO, "examples", f"{name}.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


EXAMPLES = [
    "quickstart",
    "backpressure_demo",
    "broker_ingestion",
    "iot_sensor_pipeline",
    "manufacturing_monitoring",
    "distributed_relay",
    "multiprocess_cluster",
    "graph_from_json",
]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_graphs_verify_clean(name):
    graph = _load_example(name).build_graph()
    report = verify_graph(graph, deep=True)
    assert not report.diagnostics, report.render()


def test_checkpoint_recovery_example_verifies_clean(tmp_path):
    mod = _load_example("checkpoint_recovery")
    path = str(tmp_path / "events.jsonl")
    mod.write_events(path)
    report = verify_graph(mod.build_graph(path, {}), deep=True)
    assert not report.diagnostics, report.render()


def test_shipped_descriptors_verify_clean():
    descriptors = sorted(
        glob.glob(os.path.join(REPO, "examples", "descriptors", "*.json"))
    )
    assert descriptors, "descriptor corpus missing"
    for path in descriptors:
        report = verify_descriptor_file(path)
        assert not report.diagnostics, report.render()


def test_verify_descriptor_rejects_non_dict():
    report = verify_descriptor(["not", "a", "descriptor"])
    assert report.count("NEPG101") == 1
    assert report.exit_code() == 1


def test_verify_descriptor_file_parse_error(tmp_path):
    bad = tmp_path / "broken.json"
    bad.write_text("{ not json", encoding="utf-8")
    report = verify_descriptor_file(str(bad))
    assert report.count("NEPG101") == 1


def test_deep_false_skips_config_feasibility():
    # The NEPG119 fixture is config-infeasible but structurally sound:
    # a validate()-style shallow run must pass it.
    import json

    from repro.core.graph import StreamProcessingGraph

    path = os.path.join(HERE, "fixtures", "graphs", "nepg119_latency_infeasible.json")
    with open(path, encoding="utf-8") as fh:
        desc = json.load(fh)
    graph = StreamProcessingGraph.from_descriptor(desc)
    report = verify_graph(graph, deep=False)
    assert not report.diagnostics, report.render()
    assert verify_graph(graph, deep=True).count("NEPG119") == 1
