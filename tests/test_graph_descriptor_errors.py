"""Typed error paths of ``StreamProcessingGraph.from_descriptor``.

The satellite hardening: wiring mistakes in a descriptor must raise
dedicated :class:`GraphValidationError` subclasses at build time, never
a bare ``KeyError``.
"""

import pytest

from repro.core.graph import StreamProcessingGraph
from repro.util.errors import (
    DescriptorError,
    DuplicateLinkError,
    GraphValidationError,
    PartitioningError,
    UnknownOperatorError,
)

CS = "repro.workloads.operators:CountingSource"
SINK = "repro.workloads.operators:CollectingSink"


def _desc(links, operators=None):
    return {
        "name": "t",
        "operators": operators
        or [
            {"name": "src", "type": "source", "class": CS},
            {"name": "sink", "type": "processor", "class": SINK},
        ],
        "links": links,
    }


def test_unknown_link_endpoint_is_typed():
    with pytest.raises(UnknownOperatorError, match="undeclared operator 'ghost'"):
        StreamProcessingGraph.from_descriptor(_desc([{"from": "src", "to": "ghost"}]))


def test_duplicate_link_is_typed():
    with pytest.raises(DuplicateLinkError, match="duplicate link"):
        StreamProcessingGraph.from_descriptor(
            _desc([{"from": "src", "to": "sink"}, {"from": "src", "to": "sink"}])
        )


def test_bad_partitioning_name_is_typed():
    with pytest.raises(PartitioningError, match="unknown partitioning scheme"):
        StreamProcessingGraph.from_descriptor(
            _desc([{"from": "src", "to": "sink", "partitioning": "zigzag"}])
        )


def test_unbuildable_partitioning_spec_is_typed():
    # Registered scheme, wrong constructor arguments.
    with pytest.raises(PartitioningError):
        StreamProcessingGraph.from_descriptor(
            _desc(
                [
                    {
                        "from": "src",
                        "to": "sink",
                        "partitioning": {"scheme": "fields", "bogus": True},
                    }
                ]
            )
        )


@pytest.mark.parametrize(
    "desc, match",
    [
        ("not a dict", "must be an object"),
        ({"operators": []}, "missing required key 'name'"),
        ({"name": "x"}, "missing required key 'operators'"),
        ({"name": "x", "operators": [{"type": "source"}]}, "needs a 'name'"),
        (
            {"name": "x", "operators": [{"name": "s", "type": "source"}]},
            "no class path",
        ),
        (
            {
                "name": "x",
                "operators": [{"name": "s", "type": "widget", "class": CS}],
            },
            "unknown operator type",
        ),
        (
            {"name": "x", "operators": [], "links": ["src->sink"]},
            "link entry must be an object",
        ),
        (
            {"name": "x", "operators": [], "links": [{"from": "src"}]},
            "missing required key 'to'",
        ),
        ({"name": "x", "operators": [], "config": 7}, "must be an object"),
        (
            {"name": "x", "operators": [], "config": {"no_such_field": 1}},
            "bad descriptor config",
        ),
    ],
)
def test_malformed_descriptors_raise_descriptor_error(desc, match):
    with pytest.raises(DescriptorError, match=match):
        StreamProcessingGraph.from_descriptor(desc)


def test_typed_errors_are_graph_validation_errors():
    # Callers catching the legacy type keep working.
    for exc_type in (
        DescriptorError,
        UnknownOperatorError,
        DuplicateLinkError,
        PartitioningError,
    ):
        assert issubclass(exc_type, GraphValidationError)


def test_descriptor_config_overrides_apply():
    desc = _desc([{"from": "src", "to": "sink"}])
    desc["config"] = {"buffer_capacity": 4096, "latency_budget": 0.5}
    graph = StreamProcessingGraph.from_descriptor(desc)
    assert graph.config.buffer_capacity == 4096
    assert graph.config.latency_budget == 0.5


def test_explicit_config_wins_over_descriptor_config():
    from repro.core.config import NeptuneConfig

    desc = _desc([{"from": "src", "to": "sink"}])
    desc["config"] = {"buffer_capacity": 4096}
    graph = StreamProcessingGraph.from_descriptor(
        desc, config=NeptuneConfig(buffer_capacity=1024)
    )
    assert graph.config.buffer_capacity == 1024
