"""Failure injection: corruption, truncation, and protocol violations
must be *detected*, never silently delivered (paper §I-B: no corrupted
packets)."""

import socket
import threading

import pytest

from repro.core import PacketCodec
from repro.lz4 import compress
from repro.net import FrameDecoder, FrameEncoder, TcpListener
from repro.compression import CompressionPolicy
from repro.util.errors import SerializationError
from repro.workloads import RELAY_SCHEMA

from waiters import wait_until


class TestWireCorruption:
    def _send_raw(self, lst, data):
        """Write raw bytes, close, and wait for the reader to finish.

        The reader thread exiting (EOF after the connection closes) is
        the deterministic "everything sent has been processed" signal —
        no fixed sleeps.
        """
        with socket.create_connection(("127.0.0.1", lst.port)) as sock:
            sock.sendall(data)
        assert wait_until(
            lambda: lst._threads and all(not t.is_alive() for t in lst._threads)
        )

    def test_bit_flip_detected_not_delivered(self):
        got = []
        lst = TcpListener("127.0.0.1", 0, sink=got.append)
        try:
            enc = FrameEncoder()
            wire = bytearray(enc.encode(1, b"critical-sensor-data", 1))
            wire[-5] ^= 0x40  # flip one payload bit in flight
            self._send_raw(lst, bytes(wire))
            assert lst.wait_error(2.0)
            assert got == []  # nothing delivered
            assert isinstance(lst.errors[0], SerializationError)
            assert "checksum" in str(lst.errors[0])
        finally:
            lst.close()

    def test_replayed_frame_detected(self):
        got = []
        lst = TcpListener("127.0.0.1", 0, sink=got.append)
        try:
            enc = FrameEncoder()
            frame = enc.encode(1, b"once-only", 1)
            self._send_raw(lst, frame + frame)  # replay attack/dup
            assert lst.wait_error(2.0)
            # The duplicate never surfaces; whether the first copy was
            # delivered depends on how the TCP chunks landed (the
            # connection is poisoned at the point of detection).
            assert len(got) <= 1
            assert "out-of-order" in str(lst.errors[0])
        finally:
            lst.close()

    def test_garbage_bytes_detected(self):
        got = []
        lst = TcpListener("127.0.0.1", 0, sink=got.append)
        try:
            self._send_raw(lst, b"\xde\xad\xbe\xef" * 10)
            assert lst.wait_error(2.0)
            assert got == []
            assert "magic" in str(lst.errors[0])
        finally:
            lst.close()

    def test_truncated_connection_delivers_nothing_partial(self):
        got = []
        lst = TcpListener("127.0.0.1", 0, sink=got.append)
        try:
            enc = FrameEncoder()
            wire = enc.encode(1, b"X" * 1000, 1)
            self._send_raw(lst, wire[: len(wire) // 2])  # cut mid-frame
            assert got == []  # incomplete frame never surfaces
            assert not lst.errors  # a cut connection is not corruption
        finally:
            lst.close()


class TestCompressedPayloadCorruption:
    def test_corrupt_lz4_body_never_silently_correct(self):
        """A flipped byte either trips the decoder's structural checks
        or yields different bytes — it can never masquerade as the
        original payload.  (On the wire, the frame checksum catches it
        before the decompressor ever runs.)"""
        payload = b"aaaabbbbcccc" * 50
        policy = CompressionPolicy(entropy_threshold=8.0, min_size=0)
        encoded = bytearray(policy.encode(payload))
        assert encoded[0] == 0x01  # actually compressed
        for position in range(1, len(encoded), 7):
            mutated = bytearray(encoded)
            mutated[position] ^= 0xFF
            try:
                decoded = CompressionPolicy.decode(bytes(mutated))
            except ValueError:
                continue  # structural violation detected
            assert decoded != payload or bytes(mutated) == bytes(encoded)

    def test_decompression_bomb_guard(self):
        # A tiny block claiming to expand hugely must hit the cap.
        huge = compress(b"\x00" * (10 << 20))
        from repro.lz4 import decompress

        with pytest.raises(ValueError):
            decompress(huge, max_size=1 << 20)


class TestSerdeCorruption:
    def test_truncated_batch_detected(self):
        codec = PacketCodec(RELAY_SCHEMA)
        body = codec.encode_batch(
            [
                RELAY_SCHEMA.new_packet(seq=i, emitted_at=0.0, payload=b"p" * 20)
                for i in range(10)
            ]
        )
        with pytest.raises(SerializationError):
            list(codec.iter_decode(body[:-7]))

    def test_garbage_batch_detected(self):
        codec = PacketCodec(RELAY_SCHEMA)
        # A bytes field whose length prefix exceeds the buffer.
        with pytest.raises(SerializationError):
            list(codec.iter_decode(b"\xff" * 40))


class TestBlockedShutdown:
    def test_listener_close_while_sink_blocked(self):
        """Closing the listener while its reader thread is blocked in a
        gated channel must not hang."""
        from repro.net import ChannelClosed, WatermarkChannel

        ch = WatermarkChannel(high_watermark=64, low_watermark=8)

        def sink(frame):
            try:
                ch.put(len(frame.body), frame)
            except ChannelClosed:
                pass

        lst = TcpListener("127.0.0.1", 0, sink=sink)
        enc = FrameEncoder()

        def flood():
            try:
                with socket.create_connection(("127.0.0.1", lst.port)) as sock:
                    for i in range(50):
                        sock.sendall(enc.encode(1, b"z" * 64, 1))
            except OSError:
                pass

        t = threading.Thread(target=flood)
        t.start()
        # One 64-byte frame fills the channel to its high watermark, so
        # once anything is queued the reader is gated.
        assert wait_until(lambda: len(ch) >= 1)
        ch.close()  # release the reader
        lst.close()  # must join promptly
        t.join(5.0)
        assert not t.is_alive()
