"""Unit and property tests for the pure-Python LZ4 block codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lz4 import compress, decompress, max_compressed_length
from repro.lz4.block import LAST_LITERALS, MFLIMIT


class TestRoundTrip:
    def test_empty(self):
        assert decompress(compress(b"")) == b""

    def test_single_byte(self):
        assert decompress(compress(b"x")) == b"x"

    def test_short_input_below_match_limit(self):
        data = b"hello world!"  # 12 bytes < MFLIMIT+1: literal-only block
        assert decompress(compress(data)) == data

    def test_ascii_text(self):
        data = b"the quick brown fox jumps over the lazy dog " * 40
        assert decompress(compress(data)) == data

    def test_all_zeros_compresses_heavily(self):
        data = b"\x00" * 10000
        packed = compress(data)
        assert decompress(packed) == data
        assert len(packed) < len(data) // 50

    def test_repeating_pattern(self):
        data = b"abcd" * 1000
        packed = compress(data)
        assert decompress(packed) == data
        assert len(packed) < len(data) // 10

    def test_overlapping_match_rle(self):
        # 'aaaa...' forces offset < match_len (RLE-style overlap copy).
        data = b"a" * 500
        assert decompress(compress(data)) == data

    def test_random_data_round_trips(self):
        import random

        rng = random.Random(42)
        data = bytes(rng.getrandbits(8) for _ in range(5000))
        packed = compress(data)
        assert decompress(packed) == data

    def test_binary_sensor_like_payload(self):
        import struct

        readings = b"".join(
            struct.pack("<qdd", 1_600_000_000_000 + i, 21.5, 0.0) for i in range(200)
        )
        packed = compress(readings)
        assert decompress(packed) == readings
        assert len(packed) < len(readings)

    @pytest.mark.parametrize("n", [0, 1, 4, 5, 11, 12, 13, 14, 15, 16, 17, 64, 65, 255, 256, 4096])
    def test_boundary_sizes(self, n):
        data = (b"ab" * (n // 2 + 1))[:n]
        assert decompress(compress(data)) == data


class TestFormatConstraints:
    def test_last_literals_rule(self):
        # The final LAST_LITERALS bytes must appear literally in the block.
        data = b"\x01\x02\x03\x04" * 10 + b"UNIQ!"
        packed = compress(data)
        assert b"UNIQ!" in packed

    def test_compress_bound_holds_for_incompressible(self):
        import random

        rng = random.Random(7)
        for n in (1, 50, 1000):
            data = bytes(rng.getrandbits(8) for _ in range(n))
            assert len(compress(data)) <= max_compressed_length(n)

    def test_max_compressed_length_rejects_negative(self):
        with pytest.raises(ValueError):
            max_compressed_length(-1)

    def test_constants_match_spec(self):
        assert MFLIMIT == 12
        assert LAST_LITERALS == 5


class TestDecompressValidation:
    def test_truncated_literals(self):
        with pytest.raises(ValueError):
            decompress(b"\xf0")  # promises >=15 literals, provides none

    def test_truncated_offset(self):
        with pytest.raises(ValueError):
            decompress(b"\x14A\x01")  # 1 literal + match but 1-byte offset

    def test_zero_offset_rejected(self):
        with pytest.raises(ValueError):
            decompress(b"\x14A\x00\x00")

    def test_offset_before_start_rejected(self):
        with pytest.raises(ValueError):
            decompress(b"\x14A\xff\x00")  # offset 255 > output length 1

    def test_max_size_cap(self):
        data = b"\x00" * 100_000
        packed = compress(data)
        with pytest.raises(ValueError):
            decompress(packed, max_size=1000)
        assert decompress(packed, max_size=100_000) == data


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=0, max_size=2000))
def test_roundtrip_property(data):
    assert decompress(compress(data)) == data


@settings(max_examples=50, deadline=None)
@given(
    st.binary(min_size=1, max_size=32),
    st.integers(min_value=1, max_value=400),
)
def test_roundtrip_repeated_blocks(unit, reps):
    data = unit * reps
    assert decompress(compress(data)) == data


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=0, max_size=1500))
def test_compressed_size_bound_property(data):
    assert len(compress(data)) <= max_compressed_length(len(data))
