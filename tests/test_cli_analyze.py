"""Tests for ``repro analyze`` — the CLI face of the static analyzers."""

import json
import os

import pytest

from repro.cli import main

HERE = os.path.dirname(__file__)
REPO = os.path.dirname(HERE)
GOOD_DESC = os.path.join(REPO, "examples", "descriptors", "fig1_relay.json")
BAD_DESC = os.path.join(HERE, "fixtures", "graphs", "nepg107_cycle.json")
WARN_DESC = os.path.join(HERE, "fixtures", "graphs", "nepg121_dangling_source.json")
BAD_LINT = os.path.join(HERE, "fixtures", "lint", "nepl202_inconsistent_locking.py")


class TestAnalyzeGraph:
    def test_clean_descriptor_exits_zero(self, capsys):
        assert main(["analyze", "--graph", GOOD_DESC]) == 0
        assert "clean — no findings" in capsys.readouterr().out

    def test_bad_descriptor_exits_one_with_code(self, capsys):
        assert main(["analyze", "--graph", BAD_DESC]) == 1
        out = capsys.readouterr().out
        assert "NEPG107" in out and "cycle" in out

    def test_warning_gates_only_with_fail_on_warning(self, capsys):
        assert main(["analyze", "--graph", WARN_DESC]) == 0
        assert main(["analyze", "--fail-on", "warning", "--graph", WARN_DESC]) == 1
        assert "NEPG121" in capsys.readouterr().out

    def test_multiple_descriptors_worst_exit_wins(self):
        assert main(["analyze", "--graph", GOOD_DESC, BAD_DESC]) == 1

    def test_json_output_is_parseable(self, capsys):
        assert main(["analyze", "--json", "--graph", BAD_DESC]) == 1
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 1
        (finding,) = reports[0]["findings"]
        assert finding["code"] == "NEPG107"
        assert finding["severity"] == "error"


class TestAnalyzeLint:
    def test_bad_module_flagged(self, capsys):
        assert main(["analyze", "--lint", BAD_LINT]) == 1
        assert "NEPL202" in capsys.readouterr().out

    def test_runtime_tree_clean_even_on_warnings(self, capsys):
        src = os.path.join(REPO, "src", "repro")
        assert main(["analyze", "--fail-on", "warning", "--lint", src]) == 0
        assert "clean — no findings" in capsys.readouterr().out

    def test_graph_and_lint_combined(self, capsys):
        assert main(["analyze", "--graph", GOOD_DESC, "--lint", BAD_LINT]) == 1
        out = capsys.readouterr().out
        assert "clean — no findings" in out and "NEPL202" in out


def test_analyze_without_targets_is_an_error():
    with pytest.raises(SystemExit):
        main(["analyze"])
