"""Tests for ``repro analyze`` — the CLI face of the static analyzers."""

import json
import os

import pytest

from repro.cli import main

HERE = os.path.dirname(__file__)
REPO = os.path.dirname(HERE)
GOOD_DESC = os.path.join(REPO, "examples", "descriptors", "fig1_relay.json")
BAD_DESC = os.path.join(HERE, "fixtures", "graphs", "nepg107_cycle.json")
WARN_DESC = os.path.join(HERE, "fixtures", "graphs", "nepg121_dangling_source.json")
BAD_LINT = os.path.join(HERE, "fixtures", "lint", "nepl202_inconsistent_locking.py")
GOOD_CLUSTER = os.path.join(REPO, "examples", "cluster_specs", "fig1_two_workers.json")
BAD_CLUSTER = os.path.join(
    HERE, "fixtures", "cluster", "nepg136_unseeded_shuffle.json"
)


class TestAnalyzeGraph:
    def test_clean_descriptor_exits_zero(self, capsys):
        assert main(["analyze", "--graph", GOOD_DESC]) == 0
        assert "clean — no findings" in capsys.readouterr().out

    def test_bad_descriptor_exits_one_with_code(self, capsys):
        assert main(["analyze", "--graph", BAD_DESC]) == 1
        out = capsys.readouterr().out
        assert "NEPG107" in out and "cycle" in out

    def test_warning_gates_only_with_fail_on_warning(self, capsys):
        assert main(["analyze", "--graph", WARN_DESC]) == 0
        assert main(["analyze", "--fail-on", "warning", "--graph", WARN_DESC]) == 1
        assert "NEPG121" in capsys.readouterr().out

    def test_multiple_descriptors_worst_exit_wins(self):
        assert main(["analyze", "--graph", GOOD_DESC, BAD_DESC]) == 1

    def test_json_output_is_parseable(self, capsys):
        assert main(["analyze", "--json", "--graph", BAD_DESC]) == 1
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 1
        (finding,) = reports[0]["findings"]
        assert finding["code"] == "NEPG107"
        assert finding["severity"] == "error"


class TestAnalyzeLint:
    def test_bad_module_flagged(self, capsys):
        assert main(["analyze", "--lint", BAD_LINT]) == 1
        assert "NEPL202" in capsys.readouterr().out

    def test_runtime_tree_clean_even_on_warnings(self, capsys):
        src = os.path.join(REPO, "src", "repro")
        assert main(["analyze", "--fail-on", "warning", "--lint", src]) == 0
        assert "clean — no findings" in capsys.readouterr().out

    def test_graph_and_lint_combined(self, capsys):
        assert main(["analyze", "--graph", GOOD_DESC, "--lint", BAD_LINT]) == 1
        out = capsys.readouterr().out
        assert "clean — no findings" in out and "NEPL202" in out


class TestAnalyzeCluster:
    def test_clean_cluster_spec_exits_zero(self, capsys):
        assert main(["analyze", "--cluster", GOOD_CLUSTER]) == 0
        assert "clean — no findings" in capsys.readouterr().out

    def test_bad_cluster_spec_exits_one_with_code(self, capsys):
        assert main(["analyze", "--cluster", BAD_CLUSTER]) == 1
        out = capsys.readouterr().out
        assert "NEPG136" in out and "exactly-once" in out

    def test_cluster_and_graph_combined(self):
        assert main(["analyze", "--graph", GOOD_DESC, "--cluster", BAD_CLUSTER]) == 1


class TestAnalyzeWitness:
    def _dump(self, tmp_path, edges):
        from repro.analysis.sanitizer import Witness

        path = tmp_path / "witness.json"
        Witness(edges=edges, acquires=len(edges)).dump(str(path))
        return str(path)

    def test_acyclic_witness_is_clean(self, capsys, tmp_path):
        path = self._dump(tmp_path, {("A.x", "A.y"): 1})
        assert main(["analyze", "--lint", BAD_LINT, "--witness", path]) == 1
        out = capsys.readouterr().out
        assert "NEPL202" in out  # the lint finding, not the witness
        assert out.count("NEPL203") == 0

    def test_witnessed_unpredicted_cycle_is_an_error(self, capsys, tmp_path):
        path = self._dump(
            tmp_path, {("A.x", "A.y"): 1, ("A.y", "A.x"): 1}
        )
        src = os.path.join(REPO, "src", "repro")
        assert main(["analyze", "--lint", src, "--witness", path]) == 1
        out = capsys.readouterr().out
        assert "NEPL203" in out and "NOT statically predicted" in out

    def test_witness_requires_lint(self, tmp_path):
        path = self._dump(tmp_path, {})
        with pytest.raises(SystemExit):
            main(["analyze", "--witness", path])

    def test_unreadable_witness_is_a_finding_not_a_crash(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert main(["analyze", "--lint", BAD_LINT, "--witness", missing]) == 1
        assert "cannot load witness file" in capsys.readouterr().out


def test_analyze_without_targets_is_an_error():
    with pytest.raises(SystemExit):
        main(["analyze"])
