"""Tests for the object pool (object reuse, §III-B3)."""

import threading

import pytest

from repro.core import ObjectPool
from repro.core.packet import PacketSchema, StreamPacket
from repro.core.fieldtypes import FieldType
from repro.util.errors import PoolExhausted


class Thing:
    def __init__(self):
        self.state = "new"


class TestBasics:
    def test_acquire_creates_then_reuses(self):
        pool = ObjectPool(Thing)
        a = pool.acquire()
        pool.release(a)
        b = pool.acquire()
        assert b is a
        assert pool.created == 1 and pool.reused == 1

    def test_reset_hook_runs_on_release(self):
        def reset(t):
            t.state = "clean"

        pool = ObjectPool(Thing, reset=reset)
        t = pool.acquire()
        t.state = "dirty"
        pool.release(t)
        assert t.state == "clean"

    def test_lease_context_manager(self):
        pool = ObjectPool(Thing)
        with pool.lease() as t:
            assert isinstance(t, Thing)
            assert pool.leased_count == 1
        assert pool.leased_count == 0
        assert pool.free_count == 1

    def test_lease_releases_on_exception(self):
        pool = ObjectPool(Thing)
        with pytest.raises(RuntimeError):
            with pool.lease():
                raise RuntimeError("user code fails")
        assert pool.leased_count == 0

    def test_preallocate(self):
        pool = ObjectPool(Thing, preallocate=5, max_size=10)
        assert pool.free_count == 5
        assert pool.created == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ObjectPool(Thing, max_size=0)
        with pytest.raises(ValueError):
            ObjectPool(Thing, max_size=2, preallocate=3)


class TestBounds:
    def test_strict_pool_raises_when_exhausted(self):
        pool = ObjectPool(Thing, max_size=2, strict=True)
        pool.acquire(), pool.acquire()
        with pytest.raises(PoolExhausted):
            pool.acquire()

    def test_nonstrict_pool_overflows(self):
        pool = ObjectPool(Thing, max_size=2)
        objs = [pool.acquire() for _ in range(5)]
        assert pool.overflow == 3
        for o in objs:
            pool.release(o)
        # Free list is capped at max_size; overflow objects dropped.
        assert pool.free_count == 2

    def test_reuse_ratio(self):
        pool = ObjectPool(Thing, max_size=10)
        a = pool.acquire()
        pool.release(a)
        pool.acquire()
        assert pool.reuse_ratio == pytest.approx(0.5)

    def test_reuse_ratio_ignores_preallocation(self):
        pool = ObjectPool(Thing, preallocate=4, max_size=10)
        pool.acquire()
        assert pool.reuse_ratio == pytest.approx(1.0)


class TestPacketPooling:
    def test_pooled_packets_reset(self):
        schema = PacketSchema([("n", FieldType.INT64)])
        pool = ObjectPool(
            factory=lambda: StreamPacket(schema),
            reset=StreamPacket.reset,
            max_size=4,
        )
        pkt = pool.acquire()
        pkt.set("n", 42)
        pool.release(pkt)
        again = pool.acquire()
        assert again is pkt
        assert again.get("n") is None


class TestConcurrency:
    def test_parallel_acquire_release(self):
        pool = ObjectPool(Thing, max_size=16)
        errors = []

        def worker():
            try:
                for _ in range(500):
                    obj = pool.acquire()
                    pool.release(obj)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert not errors
        assert pool.leased_count == 0
        assert pool.free_count <= 16
