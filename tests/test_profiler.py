"""The continuous sampling profiler: thread-ownership registry, duty
discipline, on/off-CPU accounting (with the /proc fault-injection
fallback), bounded aggregates, stable labels, the speedscope/collapsed
renderers, snapshot merging, and the no-unnamed-threads contract."""

import json
import threading
import time

import pytest

from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.observe import RuntimeObserver, bridge
from repro.observe import profiler as profiler_mod
from repro.observe.export import to_prometheus
from repro.observe.profiler import (
    OTHER_STACK,
    OVERFLOW_LABEL,
    PROFILE_SCHEMA,
    SamplingProfiler,
    _bare_operator,
    _generic_label,
    _OperatorProfile,
    clear_thread_owner,
    collapsed,
    merge_profile_snapshots,
    set_thread_owner,
    speedscope,
)
from repro.workloads import CountingSource, RelayProcessor


class _OwnedSpinner:
    """A thread that claims operator ownership and spins until stopped.

    Deterministic stand-in for a worker thread inside
    ``_InstanceRuntime.execute``: the profiler must attribute its
    samples to ``label`` (bare, instance suffix stripped)."""

    def __init__(self, label, name="neptune-test-spin"):
        self.label = label
        self._stop = threading.Event()
        self.ready = threading.Event()
        self.thread = threading.Thread(target=self._run, name=name, daemon=True)

    def _run(self):
        if self.label is not None:
            set_thread_owner(self.label)
        self.ready.set()
        while not self._stop.is_set():
            sum(i * i for i in range(200))

    def __enter__(self):
        self.thread.start()
        assert self.ready.wait(5.0)
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self.thread.join(5.0)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Manual _sample_once tests seed _OWNERS without start()/stop();
    never leak entries into other tests."""
    yield
    profiler_mod._OWNERS.clear()


def _sweep(prof, n=3, elapsed=0.01):
    for _ in range(n):
        prof._sample_once(elapsed)


class TestOwnershipRegistry:
    def test_set_and_clear(self):
        set_thread_owner("relay[3]")
        ident = threading.get_ident()
        owner = profiler_mod._OWNERS[ident]
        assert owner.label == "relay[3]"
        assert owner.native_id == threading.get_native_id()
        clear_thread_owner()
        assert profiler_mod._OWNERS[ident].label is None

    def test_native_id_cached_across_relabels(self):
        set_thread_owner("a")
        owner = profiler_mod._OWNERS[threading.get_ident()]
        set_thread_owner("b")
        assert profiler_mod._OWNERS[threading.get_ident()] is owner
        assert owner.label == "b"

    def test_activation_refcount_gates_the_hot_path_flag(self):
        assert profiler_mod._ACTIVE is False
        profiler_mod._activate()
        profiler_mod._activate()
        assert profiler_mod._ACTIVE is True
        profiler_mod._deactivate()
        assert profiler_mod._ACTIVE is True  # one profiler still live
        set_thread_owner("x")
        profiler_mod._deactivate()
        assert profiler_mod._ACTIVE is False
        assert profiler_mod._OWNERS == {}  # registry swept at zero

    def test_start_stop_toggle_active(self):
        prof = SamplingProfiler(hz=200.0)
        assert prof.state == "dormant"
        prof.start()
        try:
            assert prof.state == "sampling"
            assert profiler_mod._ACTIVE is True
        finally:
            prof.stop()
        assert prof.state == "dormant"
        assert profiler_mod._ACTIVE is False


class TestLabelStability:
    def test_bare_operator_strips_instance_suffix(self):
        assert _bare_operator("relay[0]") == "relay"
        assert _bare_operator("relay[12]") == "relay"
        assert _bare_operator("relay") == "relay"
        assert _bare_operator("v2[beta]") == "v2[beta]"

    def test_generic_label_strips_trailing_numbers(self):
        assert _generic_label("neptune-ctl-52341") == "neptune-ctl"
        assert _generic_label("neptune-tcp-reader-9000-3") == "neptune-tcp-reader"
        assert _generic_label("neptune-profiler") == "neptune-profiler"
        assert _generic_label("MainThread") == "MainThread"

    def test_instances_fold_into_one_operator_label(self):
        prof = SamplingProfiler()
        with _OwnedSpinner("relay[0]"):
            _sweep(prof, 2)
        with _OwnedSpinner("relay[1]"):
            _sweep(prof, 2)
        ops = prof.snapshot()["operators"]
        assert "relay" in ops
        assert not any("[" in label for label in ops if label != OVERFLOW_LABEL)


class TestAttribution:
    def test_owned_thread_becomes_an_operator(self):
        prof = SamplingProfiler()
        with _OwnedSpinner("hot[0]"):
            _sweep(prof, 5, elapsed=0.01)
        snap = prof.snapshot()
        assert snap["schema"] == PROFILE_SCHEMA
        hot = snap["operators"]["hot"]
        assert hot["kind"] == "operator"
        assert hot["samples"] == 5
        assert hot["wall_seconds"] == pytest.approx(0.05)
        # Default (never started) profiler is in wall mode: the full
        # period counts as on-CPU so shares cannot skew.
        assert hot["cpu_seconds"] == pytest.approx(hot["wall_seconds"])
        assert hot["off_cpu_seconds"] == 0.0
        assert hot["stacks"] and hot["top_frames"]

    def test_unowned_thread_uses_generic_thread_name(self):
        prof = SamplingProfiler()
        with _OwnedSpinner(None, name="neptune-fake-svc-1234"):
            _sweep(prof, 3)
        ops = prof.snapshot()["operators"]
        assert ops["neptune-fake-svc"]["kind"] == "runtime"

    def test_cleared_owner_reverts_to_runtime_attribution(self):
        prof = SamplingProfiler()
        done = threading.Event()
        release = threading.Event()

        def work():
            set_thread_owner("op[0]")
            clear_thread_owner()
            done.set()
            release.wait(5.0)

        t = threading.Thread(target=work, name="neptune-phase-x", daemon=True)
        t.start()
        assert done.wait(5.0)
        try:
            _sweep(prof, 3)
        finally:
            release.set()
            t.join(5.0)
        ops = prof.snapshot()["operators"]
        assert "op" not in ops
        assert "neptune-phase-x" in ops

    def test_sampler_skips_its_own_thread(self):
        prof = SamplingProfiler(hz=500.0)
        with prof:
            time.sleep(0.15)
        ops = prof.snapshot()["operators"]
        assert "neptune-profiler" not in ops
        assert prof.samples > 0


class TestCpuAccounting:
    def test_first_sighting_is_zero_then_delta(self):
        ticks = {"cpu": 1.00}
        prof = SamplingProfiler(statfn=lambda tid: ticks["cpu"])
        prof.cpu_mode = "task-stat"
        assert prof._cpu_delta(7, elapsed=0.5) == 0.0
        ticks["cpu"] = 1.25
        assert prof._cpu_delta(7, elapsed=0.5) == pytest.approx(0.25)

    def test_counter_regression_clamps_to_zero(self):
        vals = iter([2.0, 1.0])
        prof = SamplingProfiler(statfn=lambda tid: next(vals))
        prof.cpu_mode = "task-stat"
        prof._cpu_delta(7, elapsed=0.5)
        assert prof._cpu_delta(7, elapsed=0.5) == 0.0


class TestProcFallback:
    """Satellite: fault-injected task-stat reader — the profiler must
    degrade to wall-only attribution without erroring and without
    skewing per-operator shares."""

    def _boom(self, tid):
        raise FileNotFoundError("/proc is not mounted here")

    def test_probe_failure_selects_wall_mode(self):
        prof = SamplingProfiler(hz=200.0, statfn=self._boom)
        with prof:
            with _OwnedSpinner("hot[0]"):
                time.sleep(0.2)
        snap = prof.snapshot()
        assert snap["cpu_mode"] == "wall"
        assert prof.errors == 0
        hot = snap["operators"]["hot"]
        assert hot["samples"] > 0
        # Wall-only: on-CPU equals wall for every label, shares honest.
        for info in snap["operators"].values():
            assert info["cpu_seconds"] == pytest.approx(info["wall_seconds"])
            assert info["off_cpu_seconds"] == 0.0

    def test_midrun_read_failure_falls_back_per_thread(self):
        # Probe succeeds (start() reads the sampler's own tid), then
        # every per-thread read raises: each failure counts once, the
        # cursor is dropped, and the thread gets wall attribution.
        own = threading.get_native_id()
        calls = {"n": 0}

        def flaky(tid):
            if calls["n"] == 0 and tid == own:
                calls["n"] += 1
                return 0.0
            raise OSError("transient task-stat failure")

        prof = SamplingProfiler(statfn=flaky)
        prof.cpu_mode = "task-stat"
        prof._statfn = flaky
        with _OwnedSpinner("hot[0]"):
            _sweep(prof, 4, elapsed=0.01)
        snap = prof.snapshot()
        assert prof.errors == 0
        assert prof.stat_errors > 0
        hot = snap["operators"]["hot"]
        assert hot["cpu_seconds"] == pytest.approx(hot["wall_seconds"])

    def test_real_start_on_this_platform_never_errors(self):
        # Whatever this host offers (/proc or not), start() must settle
        # on a working mode and sample cleanly.
        prof = SamplingProfiler(hz=500.0)
        with prof:
            with _OwnedSpinner("hot[0]"):
                time.sleep(0.2)
        assert prof.cpu_mode in ("task-stat", "wall")
        assert prof.errors == 0
        assert prof.samples > 0


class TestBounds:
    def test_operator_overflow_folds(self):
        prof = SamplingProfiler(max_operators=1)
        with _OwnedSpinner("a[0]", name="neptune-sp-a"):
            with _OwnedSpinner("b[0]", name="neptune-sp-b"):
                _sweep(prof, 2)
        ops = prof.snapshot()["operators"]
        assert OVERFLOW_LABEL in ops
        assert len(ops) <= 2  # the one real slot + the fold

    def test_stack_overflow_folds_into_other(self):
        prof = _OperatorProfile("operator")
        prof.note("s1", "l1", max_stacks=2, max_frames=2)
        prof.note("s2", "l2", max_stacks=2, max_frames=2)
        prof.note("s3", "l3", max_stacks=2, max_frames=2)
        prof.note("s1", "l1", max_stacks=2, max_frames=2)
        assert prof.stacks == {"s1": 2, "s2": 1, OTHER_STACK: 1}
        # Frame cap silently drops new leaves past the bound.
        assert set(prof.top_frames) == {"l1", "l2"}
        assert prof.top_frames["l1"] == 2

    def test_duty_discipline_stretches_interval(self):
        # At hz=10 000 the per-sample cost alone forces the sampler to
        # run far below nominal rate: effective duty stays bounded.
        prof = SamplingProfiler(hz=10_000.0, max_duty=0.01)
        with prof:
            time.sleep(0.4)
        assert prof.samples < 1_000  # nominal would be ~4 000
        assert prof.sample_seconds <= 0.4 * 0.05  # generous 5x slack


class TestWindows:
    def test_window_age_before_any_window(self):
        assert SamplingProfiler().window_age() == -1.0

    def test_rotation_stores_last_window_delta(self):
        prof = SamplingProfiler(hz=500.0, window_seconds=0.1)
        with prof:
            with _OwnedSpinner("hot[0]"):
                # Poll rather than sleep a fixed budget: the sampler is
                # duty-throttled and shares the machine with the rest of
                # the suite, so sweep cadence is not ours to assume.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    section = prof.flight_section()
                    if (
                        section["window"] is not None
                        and section["window"]["index"] >= 1
                        and "hot" in section["operators"]
                    ):
                        break
                    time.sleep(0.05)
        section = prof.flight_section()
        assert section["window"] is not None
        assert section["window"]["index"] >= 1
        assert section["window_age_seconds"] >= 0.0
        # The flight section is snapshot-shaped (mergeable as-is) but
        # compact: no stacks, at most 3 frames per operator.
        hot = section["operators"]["hot"]
        assert "stacks" not in hot
        assert len(hot["top_frames"]) <= 3


class TestRenderers:
    OPS = {
        "relay": {
            "kind": "operator",
            "samples": 4,
            "cpu_seconds": 2.0,
            "wall_seconds": 3.0,
            "stacks": {"a.py:f;b.py:g": 3, "a.py:f": 1},
            "top_frames": {"b.py:g": 3, "a.py:f": 1},
        },
        "neptune-flush": {
            "kind": "runtime",
            "samples": 1,
            "cpu_seconds": 0.5,
            "wall_seconds": 0.5,
            "stacks": {"c.py:h": 1},
            "top_frames": {"c.py:h": 1},
        },
    }

    def test_collapsed_format(self):
        text = collapsed(self.OPS)
        lines = text.splitlines()
        assert "relay;a.py:f 1" in lines
        assert "relay;a.py:f;b.py:g 3" in lines
        assert "neptune-flush;c.py:h 1" in lines
        assert text.endswith("\n")
        assert collapsed({}) == ""

    def test_speedscope_schema(self):
        doc = speedscope(self.OPS, name="t")
        json.dumps(doc)
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        assert doc["name"] == "t"
        frames = doc["shared"]["frames"]
        assert all(isinstance(f["name"], str) for f in frames)
        names = [f["name"] for f in frames]
        assert len(names) == len(set(names))  # interned once
        for prof in doc["profiles"]:
            assert prof["type"] == "sampled"
            assert prof["unit"] == "seconds"
            assert len(prof["samples"]) == len(prof["weights"])
            for stack in prof["samples"]:
                assert all(0 <= i < len(frames) for i in stack)

    def test_speedscope_weights_total_matches_cpu_exactly(self):
        doc = speedscope(self.OPS)
        by_name = {p["name"]: p for p in doc["profiles"]}
        for label, info in self.OPS.items():
            total = sum(by_name[label]["weights"])
            assert total == pytest.approx(info["cpu_seconds"], rel=1e-12)
            assert by_name[label]["endValue"] == info["cpu_seconds"]


class TestExportAgreement:
    """Acceptance: the speedscope dump's per-operator totals agree with
    the ``neptune_profile_cpu_seconds_total`` series."""

    def test_series_snapshot_and_speedscope_agree(self):
        obs = RuntimeObserver()
        prof = SamplingProfiler(hz=500.0)
        obs.profiler = prof
        with prof:
            with _OwnedSpinner("hot[0]"):
                time.sleep(0.25)
        # Stopped: snapshot and export read the same frozen aggregates.
        snap = prof.snapshot()
        bridge.scrape_observer(obs)
        series = {
            dict(s.labels or ())["operator"]: s.value
            for s in obs.registry.collect()
            if s.name == "neptune_profile_cpu_seconds_total"
        }
        doc = speedscope(snap["operators"])
        for p in doc["profiles"]:
            assert sum(p["weights"]) == pytest.approx(series[p["name"]], rel=1e-9)
        assert "hot" in series


class TestMerge:
    def _snap(self, label, cpu, samples=10, mode="task-stat"):
        return {
            "schema": PROFILE_SCHEMA,
            "state": "dormant",
            "cpu_mode": mode,
            "samples": samples,
            "operators": {
                label: {
                    "kind": "operator",
                    "samples": samples,
                    "cpu_seconds": cpu,
                    "wall_seconds": cpu,
                    "off_cpu_seconds": 0.0,
                    "stacks": {"a.py:f": samples},
                    "top_frames": {"a.py:f": samples},
                }
            },
        }

    def test_merge_sums_and_records_workers(self):
        merged = merge_profile_snapshots(
            {"0": self._snap("hot", 1.0), "1": self._snap("hot", 2.0)}
        )
        assert merged["state"] == "merged"
        assert merged["workers"] == ["0", "1"]
        hot = merged["operators"]["hot"]
        assert hot["cpu_seconds"] == pytest.approx(3.0)
        assert hot["samples"] == 20
        assert hot["stacks"]["a.py:f"] == 20
        assert hot["workers"] == ["0", "1"]
        assert merged["cpu_mode"] == "task-stat"

    def test_mixed_modes_reported(self):
        merged = merge_profile_snapshots(
            {"0": self._snap("a", 1.0), "1": self._snap("b", 1.0, mode="wall")}
        )
        assert merged["cpu_mode"] == "mixed"


class TestThreadNaming:
    """Satellite: every runtime-spawned thread carries the stable
    ``neptune-`` prefix, so profile labels never depend on pool
    defaults like ``Thread-7``."""

    def test_no_unnamed_runtime_threads_after_launch(self):
        before = {t.ident for t in threading.enumerate()}
        obs = RuntimeObserver()
        g = StreamProcessingGraph(
            "naming", config=NeptuneConfig(buffer_capacity=64, buffer_max_delay=0.001)
        )
        g.add_source("src", lambda: CountingSource(total=None, payload_size=16))
        g.add_processor("relay", RelayProcessor)
        g.link("src", "relay")
        with NeptuneRuntime(observer=obs) as rt:
            rt.submit(g)
            deadline = time.monotonic() + 5.0
            spawned = []
            while time.monotonic() < deadline:
                spawned = [
                    t for t in threading.enumerate() if t.ident not in before
                ]
                if len(spawned) >= 2:
                    break
                time.sleep(0.01)
            assert spawned, "runtime spawned no threads"
            offenders = [t.name for t in spawned if not t.name.startswith("neptune")]
            assert offenders == [], f"unnamed/foreign runtime threads: {offenders}"

    def test_profiler_thread_is_named(self):
        prof = SamplingProfiler(hz=100.0)
        with prof:
            names = [t.name for t in threading.enumerate()]
            assert "neptune-profiler" in names


class TestPrometheusConformance:
    def test_profile_series_lines_parse(self):
        from test_observe_export_conformance import METRIC_NAME, SAMPLE_LINE

        obs = RuntimeObserver()
        prof = SamplingProfiler(hz=500.0)
        obs.profiler = prof
        with prof:
            with _OwnedSpinner("hot[0]"):
                time.sleep(0.15)
        bridge.scrape_observer(obs)
        text = to_prometheus(obs.registry)
        assert "neptune_profile_cpu_seconds_total" in text
        assert "neptune_profile_sampler_state" in text
        profile_lines = [
            l
            for l in text.splitlines()
            if l.startswith("neptune_profile_") and not l.startswith("#")
        ]
        assert profile_lines
        for line in profile_lines:
            assert SAMPLE_LINE.match(line), f"unparseable: {line!r}"
        for sample in obs.registry.collect():
            assert METRIC_NAME.match(sample.name), sample.name
        # Frame labels carry file:qualname values — escaped, parseable.
        assert any("frame=" in l for l in profile_lines)
