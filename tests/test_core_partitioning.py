"""Tests for stream partitioning schemes (§III-A6)."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BroadcastPartitioning,
    FieldsPartitioning,
    FieldType,
    PacketSchema,
    PartitioningScheme,
    RoundRobinPartitioning,
    ShufflePartitioning,
    register_partitioning,
    resolve_partitioning,
)
from repro.core.partitioning import DirectPartitioning
from repro.util.errors import GraphValidationError

SCHEMA = PacketSchema([("key", FieldType.STRING), ("idx", FieldType.INT32)])


def pkt(key="k", idx=0):
    return SCHEMA.new_packet(key=key, idx=idx)


class TestRoundRobin:
    def test_cycles_evenly(self):
        rr = RoundRobinPartitioning()
        routes = [rr.route(pkt(), 3)[0] for _ in range(9)]
        assert routes == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_single_instance(self):
        rr = RoundRobinPartitioning()
        assert all(rr.route(pkt(), 1) == (0,) for _ in range(5))


class TestShuffle:
    def test_uniformity(self):
        sh = ShufflePartitioning(seed=42)
        counts = collections.Counter(sh.route(pkt(), 4)[0] for _ in range(4000))
        for n in counts.values():
            assert 800 < n < 1200  # roughly uniform

    def test_in_range(self):
        sh = ShufflePartitioning(seed=1)
        assert all(0 <= sh.route(pkt(), 7)[0] < 7 for _ in range(100))


class TestFields:
    def test_same_key_same_instance(self):
        fp = FieldsPartitioning(["key"])
        a = fp.route(pkt(key="sensor-1"), 8)
        for _ in range(10):
            assert fp.route(pkt(key="sensor-1", idx=99), 8) == a

    def test_spreads_keys(self):
        fp = FieldsPartitioning(["key"])
        targets = {fp.route(pkt(key=f"sensor-{i}"), 8)[0] for i in range(100)}
        assert len(targets) >= 6  # most instances receive some keys

    def test_multi_field_key(self):
        fp = FieldsPartitioning(["key", "idx"])
        assert fp.route(pkt("a", 1), 16) == fp.route(pkt("a", 1), 16)
        # Changing either component may change the route; at least the
        # combined key is actually used:
        routes = {fp.route(pkt("a", i), 64)[0] for i in range(50)}
        assert len(routes) > 1

    def test_requires_fields(self):
        with pytest.raises(GraphValidationError):
            FieldsPartitioning([])

    def test_describe_roundtrip(self):
        fp = FieldsPartitioning(["key"])
        again = resolve_partitioning(fp.describe())
        assert isinstance(again, FieldsPartitioning)
        assert again.fields == ("key",)


class TestBroadcast:
    def test_all_instances(self):
        assert BroadcastPartitioning().route(pkt(), 4) == (0, 1, 2, 3)


class TestDirect:
    def test_routes_by_field(self):
        dp = DirectPartitioning(index_field="idx")
        assert dp.route(pkt(idx=2), 4) == (2,)

    def test_out_of_range_rejected(self):
        dp = DirectPartitioning(index_field="idx")
        with pytest.raises(GraphValidationError):
            dp.route(pkt(idx=9), 4)


class TestRegistry:
    def test_resolve_by_name(self):
        assert isinstance(resolve_partitioning("shuffle"), ShufflePartitioning)
        assert isinstance(resolve_partitioning("round-robin"), RoundRobinPartitioning)

    def test_resolve_dict_with_kwargs(self):
        scheme = resolve_partitioning({"scheme": "fields", "fields": ["key"]})
        assert isinstance(scheme, FieldsPartitioning)

    def test_resolve_instance_passthrough(self):
        rr = RoundRobinPartitioning()
        assert resolve_partitioning(rr) is rr

    def test_unknown_scheme(self):
        with pytest.raises(GraphValidationError, match="unknown partitioning"):
            resolve_partitioning("no-such-scheme")

    def test_custom_scheme_registration(self):
        class EvenOdd(PartitioningScheme):
            name = "even-odd-test"

            def route(self, packet, n):
                return (packet.get("idx") % min(2, n),)

        register_partitioning(EvenOdd)
        scheme = resolve_partitioning("even-odd-test")
        assert scheme.route(pkt(idx=3), 2) == (1,)

    def test_register_requires_name(self):
        class Nameless(PartitioningScheme):
            def route(self, packet, n):
                return (0,)

        with pytest.raises(GraphValidationError):
            register_partitioning(Nameless)


@settings(max_examples=100, deadline=None)
@given(
    key=st.text(max_size=20),
    idx=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=64),
)
def test_all_schemes_route_in_range(key, idx, n):
    p = pkt(key=key, idx=idx)
    for scheme in (
        RoundRobinPartitioning(),
        ShufflePartitioning(seed=0),
        FieldsPartitioning(["key"]),
        BroadcastPartitioning(),
    ):
        for target in scheme.route(p, n):
            assert 0 <= target < n
