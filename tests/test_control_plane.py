"""Tests for the multi-process control plane (control server, remote
proxies, coordinated drain, and the worker_main entry point)."""

import json
import os
import subprocess
import sys
import tempfile

import pytest
from procharness import reserve_ports

from repro.core import NeptuneConfig, StreamProcessingGraph
from repro.core.control import (
    ControlError,
    ControlServer,
    RemoteDistributedJob,
    RemoteWorker,
    plan_to_json,
)
from repro.core.distributed import DistributedWorker, round_robin_plan
from repro.core.graph import descriptor_factory
from repro.util.errors import NeptuneError
from repro.workloads import CollectingSink, CountingSource, RelayProcessor


def relay_graph(total=300):
    store = []
    g = StreamProcessingGraph(
        "ctl-relay",
        config=NeptuneConfig(buffer_capacity=2048, buffer_max_delay=0.005),
    )
    g.add_source("sender", lambda: CountingSource(total=total))
    g.add_processor("relay", RelayProcessor)
    g.add_processor("receiver", lambda: CollectingSink(store))
    g.link("sender", "relay").link("relay", "receiver")
    return g, store


class TestControlServerInProcess:
    def _workers_with_control(self, graph):
        plan = round_robin_plan(graph, 2)
        workers = [DistributedWorker(w, graph, plan) for w in range(2)]
        endpoints = {w.worker_id: w.address for w in workers}
        for w in workers:
            w.connect(endpoints)
        servers = [ControlServer(w) for w in workers]
        proxies = [RemoteWorker("127.0.0.1", s.port) for s in servers]
        return workers, servers, proxies

    def test_remote_coordination_end_to_end(self):
        graph, store = relay_graph(400)
        workers, servers, proxies = self._workers_with_control(graph)
        try:
            for w in workers:
                w.start()
            job = RemoteDistributedJob(proxies)
            assert job.await_completion(timeout=90)
        finally:
            for s in servers:
                s.close()
        assert store == list(range(400))

    def test_remote_metrics_and_failures(self):
        graph, store = relay_graph(100)
        workers, servers, proxies = self._workers_with_control(graph)
        try:
            for w in workers:
                w.start()
            job = RemoteDistributedJob(proxies)
            assert job.await_completion(timeout=60)
            # Workers are stopped by the drain; metrics were merged
            # through proxies during the run — query one directly via a
            # fresh snapshot taken before stop is not possible now, so
            # just verify protocol-level behaviours below.
        finally:
            for s in servers:
                s.close()
        assert store == list(range(100))

    def test_ping_identifies_worker(self):
        graph, _ = relay_graph(10)
        plan = round_robin_plan(graph, 2)
        worker = DistributedWorker(1, graph, plan)
        server = ControlServer(worker)
        try:
            proxy = RemoteWorker("127.0.0.1", server.port)
            assert proxy.worker_id == 1
            assert proxy.is_quiet() in (True, False)
            proxy.stop()
        finally:
            server.close()

    def test_reconfigure_retunes_buffers_and_resizes_pool(self):
        graph, store = relay_graph(300)
        workers, servers, proxies = self._workers_with_control(graph)
        try:
            for w in workers:
                w.start()
            report = proxies[0].reconfigure(
                {
                    "retune": {
                        "operator": "receiver",
                        "max_delay": 0.05,
                        "where": "into",
                    },
                    "scale": {"workers": 3},
                }
            )
            assert report["worker"] == 0
            kinds = [a["kind"] for a in report["applied"]]
            assert "scale" in kinds
            scale = next(a for a in report["applied"] if a["kind"] == "scale")
            assert scale["to"] == 3
            for a in report["applied"]:
                if a["kind"] == "retune":
                    assert "->receiver[" in a["buffer"]
                    assert a["max_delay"][1] == 0.05
            # A no-op reconfigure applies nothing.
            assert proxies[1].reconfigure({})["applied"] == []
            job = RemoteDistributedJob(proxies)
            assert job.await_completion(timeout=90)
        finally:
            for s in servers:
                s.close()
        assert store == list(range(300))

    def test_unknown_command_rejected(self):
        graph, _ = relay_graph(10)
        plan = round_robin_plan(graph, 1)
        worker = DistributedWorker(0, graph, plan)
        server = ControlServer(worker)
        try:
            proxy = RemoteWorker("127.0.0.1", server.port)
            with pytest.raises(ControlError, match="unknown command"):
                proxy._call({"cmd": "reboot-the-cluster"})
            proxy.stop()
        finally:
            server.close()

    def test_connect_timeout(self):
        with pytest.raises(ControlError, match="cannot reach"):
            RemoteWorker("127.0.0.1", 1, connect_timeout=0.3)

    def test_job_requires_workers(self):
        with pytest.raises(NeptuneError):
            RemoteDistributedJob([])


class TestPlanSerialization:
    def test_plan_json_roundtrip(self):
        graph, _ = relay_graph(10)
        plan = round_robin_plan(graph, 3)
        raw = json.loads(plan_to_json(plan))
        assert raw["n_workers"] == 3
        rebuilt = {(op, idx): w for op, idx, w in raw["assignment"]}
        assert rebuilt == plan.assignment


@pytest.mark.slow
@pytest.mark.cluster
class TestWorkerMainSubprocess:
    def test_two_process_relay(self, tmp_path):
        """Full worker_main path: separate interpreters, TCP data plane,
        coordinated drain through the control ports."""
        graph = StreamProcessingGraph("subproc-relay")
        graph.add_source(
            "sender",
            descriptor_factory(
                "repro.workloads.operators:CountingSource", total=500, payload_size=50
            ),
        )
        graph.add_processor(
            "relay", descriptor_factory("repro.workloads.operators:RelayProcessor")
        )
        graph.add_processor(
            "receiver",
            descriptor_factory("repro.workloads.operators:CollectingSink"),
        )
        graph.link("sender", "relay").link("relay", "receiver")
        desc_path = tmp_path / "g.json"
        desc_path.write_text(json.dumps(graph.to_descriptor()))
        plan = round_robin_plan(graph, 2)
        # Ephemeral reservations, not hardcoded ports: a previous run's
        # TIME_WAIT socket (or an unrelated process) on a fixed port
        # made this test flake.
        data_ports = reserve_ports(2)
        control_ports = reserve_ports(2)
        endpoints = {str(w): ["127.0.0.1", data_ports[w]] for w in range(2)}

        procs = []
        try:
            for worker_id in range(2):
                procs.append(
                    subprocess.Popen(
                        [
                            sys.executable, "-m", "repro.core.control",
                            "--descriptor", str(desc_path),
                            "--worker-id", str(worker_id),
                            "--plan", plan_to_json(plan),
                            "--endpoints", json.dumps(endpoints),
                            "--listen-port", str(data_ports[worker_id]),
                            "--control-port", str(control_ports[worker_id]),
                        ],
                        stdout=subprocess.PIPE,
                        stderr=subprocess.STDOUT,
                    )
                )
            proxies = [RemoteWorker("127.0.0.1", p) for p in control_ports]
            job = RemoteDistributedJob(proxies)
            metrics_mid = job.metrics()
            assert "sender" in metrics_mid
            ok = job.await_completion(timeout=120)
            assert ok
            for p in procs:
                assert p.wait(timeout=30) == 0
        finally:
            for p in procs:
                if p.poll() is None:
                    p.kill()
