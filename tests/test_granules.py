"""Tests for the Granules substrate: datasets, tasks, strategies, resources."""

import threading
import time

import pytest

from repro.granules import (
    CombinedStrategy,
    ComputationalTask,
    CountBasedStrategy,
    DataDrivenStrategy,
    IterableDataset,
    PeriodicStrategy,
    QueueDataset,
    Resource,
    TaskState,
)
from repro.util import ManualClock


class CollectTask(ComputationalTask):
    """Drains its input queue into a list on every execution."""

    def __init__(self, task_id, queue):
        super().__init__(task_id)
        self.queue = queue
        self.attach_dataset(queue)
        self.seen = []
        self.initialized = False
        self.terminated = False

    def initialize(self):
        self.initialized = True

    def terminate(self):
        self.terminated = True

    def execute(self, context=None):
        self.seen.extend(self.queue.drain())


class TickTask(ComputationalTask):
    def __init__(self, task_id="tick"):
        super().__init__(task_id)
        self.ticks = 0

    def execute(self, context=None):
        self.ticks += 1


class FailingTask(ComputationalTask):
    def execute(self, context=None):
        raise RuntimeError("boom")


def wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestQueueDataset:
    def test_put_and_drain(self):
        q = QueueDataset("q", capacity=10)
        for i in range(5):
            assert q.put(i)
        assert q.drain() == [0, 1, 2, 3, 4]
        assert len(q) == 0

    def test_drain_max_items(self):
        q = QueueDataset("q")
        for i in range(10):
            q.put(i)
        assert q.drain(max_items=3) == [0, 1, 2]
        assert len(q) == 7

    def test_put_blocks_when_full_until_drain(self):
        q = QueueDataset("q", capacity=1)
        q.put("a")
        ok = []

        def producer():
            ok.append(q.put("b", timeout=2.0))

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.05)
        assert q.drain() == ["a"]
        t.join(3.0)
        assert ok == [True]
        assert q.drain() == ["b"]

    def test_put_timeout_returns_false(self):
        q = QueueDataset("q", capacity=1)
        q.put("a")
        assert not q.put("b", timeout=0.05)

    def test_close_unblocks_producer(self):
        q = QueueDataset("q", capacity=1)
        q.put("a")
        results = []

        def producer():
            results.append(q.put("b", timeout=5.0))

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(2.0)
        assert results == [False]

    def test_notification_fires_on_put(self):
        q = QueueDataset("q")
        hits = []
        q.on_available(lambda ds: hits.append(ds.name))
        q.put(1)
        assert hits == ["q"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueueDataset("q", capacity=0)


class TestIterableDataset:
    def test_iteration(self):
        ds = IterableDataset("it", [1, 2, 3])
        ds.initialize()
        assert ds.has_data()
        assert [ds.next(), ds.next(), ds.next()] == [1, 2, 3]
        assert not ds.has_data()

    def test_has_data_does_not_lose_items(self):
        ds = IterableDataset("it", iter([7]))
        assert ds.has_data()
        assert ds.next() == 7

    def test_exhaustion_raises(self):
        ds = IterableDataset("it", [])
        ds.initialize()
        with pytest.raises(StopIteration):
            ds.next()


class TestStrategies:
    def test_data_driven(self):
        q = QueueDataset("q")
        task = CollectTask("t", q)
        strat = DataDrivenStrategy()
        assert not strat.should_run(task, 0.0)
        q.put(1)
        assert strat.should_run(task, 0.0)

    def test_periodic_fires_then_waits(self):
        task = TickTask()
        strat = PeriodicStrategy(interval=1.0)
        assert strat.should_run(task, 10.0)
        strat.notify_executed(task, 10.0)
        assert not strat.should_run(task, 10.5)
        assert strat.should_run(task, 11.0)
        assert strat.next_deadline(task, 10.5) == 11.0

    def test_periodic_catches_up_to_now(self):
        task = TickTask()
        strat = PeriodicStrategy(interval=1.0)
        strat.should_run(task, 0.0)
        strat.notify_executed(task, 50.0)  # long stall: next is now-based
        assert strat.next_deadline(task, 50.0) == 51.0

    def test_periodic_validation(self):
        with pytest.raises(ValueError):
            PeriodicStrategy(0)

    def test_count_based(self):
        q = QueueDataset("q")
        task = CollectTask("t", q)
        strat = CountBasedStrategy(threshold=3)
        q.put(1), q.put(2)
        assert not strat.should_run(task, 0.0)
        q.put(3)
        assert strat.should_run(task, 0.0)

    def test_count_based_validation(self):
        with pytest.raises(ValueError):
            CountBasedStrategy(0)

    def test_combined_or_semantics(self):
        q = QueueDataset("q")
        task = CollectTask("t", q)
        strat = CombinedStrategy(CountBasedStrategy(5), DataDrivenStrategy())
        assert not strat.should_run(task, 0.0)
        q.put(1)
        assert strat.should_run(task, 0.0)  # data-driven side fires

    def test_combined_requires_children(self):
        with pytest.raises(ValueError):
            CombinedStrategy()

    def test_combined_min_deadline(self):
        task = TickTask()
        p1, p2 = PeriodicStrategy(5.0), PeriodicStrategy(2.0)
        strat = CombinedStrategy(p1, p2)
        strat.should_run(task, 0.0)  # prime both
        strat.notify_executed(task, 0.0)
        assert strat.next_deadline(task, 0.0) == 2.0


class TestResource:
    def test_data_driven_end_to_end(self):
        q = QueueDataset("in")
        task = CollectTask("collect", q)
        with Resource("r", workers=2) as res:
            res.launch(task, DataDrivenStrategy())
            for i in range(100):
                q.put(i)
            assert wait_for(lambda: len(task.seen) == 100)
        assert task.seen == list(range(100))
        assert task.initialized and task.terminated

    def test_data_preloaded_before_launch(self):
        q = QueueDataset("in")
        for i in range(5):
            q.put(i)
        task = CollectTask("collect", q)
        with Resource("r", workers=1) as res:
            res.launch(task, DataDrivenStrategy())
            assert wait_for(lambda: len(task.seen) == 5)

    def test_periodic_task_runs_repeatedly(self):
        task = TickTask()
        with Resource("r", workers=1) as res:
            res.launch(task, PeriodicStrategy(interval=0.01))
            assert wait_for(lambda: task.ticks >= 5)

    def test_task_failure_is_isolated(self):
        bad = FailingTask("bad")
        q = QueueDataset("in")
        good = CollectTask("good", q)
        with Resource("r", workers=1) as res:
            res.launch(bad, PeriodicStrategy(interval=0.005))
            res.launch(good, DataDrivenStrategy())
            q.put("x")
            assert wait_for(lambda: good.seen == ["x"])
            assert wait_for(lambda: "bad" in res.task_failures)
        assert bad.state is TaskState.FAILED
        assert isinstance(bad.failure, RuntimeError)

    def test_duplicate_task_id_rejected(self):
        with Resource("r", workers=1) as res:
            res.launch(TickTask("a"), PeriodicStrategy(10))
            with pytest.raises(ValueError):
                res.launch(TickTask("a"), PeriodicStrategy(10))

    def test_strategy_swap_at_runtime(self):
        task = TickTask()
        with Resource("r", workers=1) as res:
            q = QueueDataset("in")
            collect = CollectTask("c", q)
            res.launch(collect, CountBasedStrategy(threshold=1000))
            q.put("item")
            time.sleep(0.05)
            assert collect.seen == []  # threshold not met
            res.set_strategy("c", DataDrivenStrategy())
            assert wait_for(lambda: collect.seen == ["item"])

    def test_terminate_single_task(self):
        q = QueueDataset("in")
        task = CollectTask("c", q)
        with Resource("r", workers=1) as res:
            res.launch(task, DataDrivenStrategy())
            res.terminate_task("c")
            assert task.terminated
            assert q.closed

    def test_no_concurrent_self_execution(self):
        class RaceTask(ComputationalTask):
            def __init__(self):
                super().__init__("race")
                self.q = QueueDataset("in", capacity=10_000)
                self.attach_dataset(self.q)
                self.active = 0
                self.max_active = 0
                self.count = 0

            def execute(self, context=None):
                self.active += 1
                self.max_active = max(self.max_active, self.active)
                self.count += len(self.q.drain())
                time.sleep(0.001)
                self.active -= 1

        task = RaceTask()
        with Resource("r", workers=4) as res:
            res.launch(task, DataDrivenStrategy())
            for i in range(200):
                task.q.put(i)
            assert wait_for(lambda: task.count == 200)
        assert task.max_active == 1

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            Resource("r", workers=0)


class TestResize:
    def _live_workers(self, res):
        return sum(1 for t in res._threads if t.is_alive())

    def test_resize_grows_pool_live(self):
        q = QueueDataset("in")
        task = CollectTask("c", q)
        with Resource("r", workers=1) as res:
            res.launch(task, DataDrivenStrategy())
            assert res.resize(3) == 3
            assert res.workers == 3
            assert wait_for(lambda: self._live_workers(res) == 3)
            for i in range(50):
                q.put(i)
            assert wait_for(lambda: len(task.seen) == 50)

    def test_resize_shrinks_pool_without_dropping_work(self):
        q = QueueDataset("in")
        task = CollectTask("c", q)
        with Resource("r", workers=4) as res:
            res.launch(task, DataDrivenStrategy())
            assert res.resize(1) == 1
            # Retiring threads exit at their next wakeup.
            assert wait_for(lambda: self._live_workers(res) == 1)
            for i in range(50):
                q.put(i)
            assert wait_for(lambda: len(task.seen) == 50)
        assert task.seen == list(range(50))

    def test_resize_grow_cancels_pending_retirements(self):
        with Resource("r", workers=4) as res:
            res.resize(1)
            res.resize(4)  # net zero: cancels retirements and/or respawns
            assert res.workers == 4
            assert wait_for(lambda: self._live_workers(res) == 4)

    def test_resize_before_start_records_size(self):
        res = Resource("r", workers=1)
        assert res.resize(3) == 3
        with res:
            assert wait_for(lambda: self._live_workers(res) == 3)

    def test_resize_validation(self):
        with Resource("r", workers=1) as res:
            with pytest.raises(ValueError):
                res.resize(0)
