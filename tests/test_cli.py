"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


DESCRIPTOR = {
    "name": "cli-relay",
    "operators": [
        {
            "name": "src",
            "type": "source",
            "class": "repro.workloads.operators:CountingSource",
            "kwargs": {"total": 200},
        },
        {
            "name": "relay",
            "type": "processor",
            "class": "repro.workloads.operators:RelayProcessor",
        },
        {
            "name": "sink",
            "type": "processor",
            "class": "repro.workloads.operators:CollectingSink",
        },
    ],
    "links": [
        {"from": "src", "to": "relay"},
        {"from": "relay", "to": "sink"},
    ],
}


@pytest.fixture
def descriptor_file(tmp_path):
    path = tmp_path / "graph.json"
    path.write_text(json.dumps(DESCRIPTOR))
    return str(path)


class TestValidate:
    def test_valid_descriptor(self, descriptor_file, capsys):
        assert main(["validate", descriptor_file]) == 0
        out = capsys.readouterr().out
        assert "cli-relay" in out and "OK" in out
        assert "stages" in out

    def test_invalid_descriptor(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "operators": [], "links": []}))
        from repro.util.errors import GraphValidationError

        with pytest.raises(GraphValidationError):
            main(["validate", str(bad)])


class TestRun:
    def test_run_to_completion(self, descriptor_file, capsys):
        assert main(["run", descriptor_file]) == 0
        out = capsys.readouterr().out
        assert "drained" in out
        assert "in=       200" in out.replace("in=        200", "in=       200") or "200" in out

    def test_run_distributed(self, descriptor_file, capsys):
        assert main(["run", descriptor_file, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "resource 0" in out and "resource 1" in out
        assert "drained" in out


class TestExperiment:
    def test_fig6(self, capsys):
        assert main(["experiment", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "FIG6" in out and "nodes" in out

    def test_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_fig10(self, capsys):
        assert main(["experiment", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "one-tailed" in out

    def test_headline(self, capsys):
        assert main(["experiment", "headline"]) == 0
        assert "single_pipeline_msg_s" in capsys.readouterr().out

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "NEPTUNE" in capsys.readouterr().out


class TestRunDuration:
    def test_run_for_duration_then_stop(self, tmp_path, capsys):
        endless = dict(DESCRIPTOR)
        endless = json.loads(json.dumps(DESCRIPTOR))
        endless["operators"][0]["kwargs"] = {"total": None}
        path = tmp_path / "endless.json"
        path.write_text(json.dumps(endless))
        assert main(["run", str(path), "--duration", "0.5", "--drain-timeout", "30"]) == 0
        out = capsys.readouterr().out
        assert "drained" in out


class TestPolicyCommand:
    """`policy status|log`: file-read attach to a cluster's action log."""

    @pytest.fixture
    def policy_state(self, tmp_path):
        log = tmp_path / "policy-actions.log"
        lines = [
            json.dumps(
                {
                    "scan": 7,
                    "kind": "retune",
                    "operator": "sink",
                    "slo": "sink-backlog",
                    "cause": "backpressure_cascade",
                    "reason": "batch_up",
                    "worker": None,
                    "params": {"where": "into", "max_delay": 0.05},
                },
                sort_keys=True,
                separators=(",", ":"),
            ),
            json.dumps(
                {"scan": 31, "kind": "scale", "operator": "svc"},
                sort_keys=True,
                separators=(",", ":"),
            ),
        ]
        log.write_text("\n".join(lines) + "\n")
        state = tmp_path / "cluster.json"
        state.write_text(
            json.dumps(
                {
                    "workers": [],
                    "policy": {"enabled": True, "log": str(log)},
                }
            )
        )
        return str(state), lines

    def test_status_counts_actions_by_kind(self, policy_state, capsys):
        state, _ = policy_state
        assert main(["policy", "status", "--state", state]) == 0
        out = capsys.readouterr().out
        assert "policy: enabled" in out
        assert "actions: 2" in out
        assert "retune=1" in out and "scale=1" in out

    def test_log_prints_canonical_lines_verbatim(self, policy_state, capsys):
        state, lines = policy_state
        assert main(["policy", "log", "--state", state]) == 0
        assert capsys.readouterr().out.splitlines() == lines

    def test_not_enabled_is_an_error(self, tmp_path, capsys):
        state = tmp_path / "cluster.json"
        state.write_text(json.dumps({"workers": []}))
        assert main(["policy", "status", "--state", str(state)]) == 1
        assert "not enabled" in capsys.readouterr().out

    def test_missing_log_file_reports_zero_actions(self, tmp_path, capsys):
        state = tmp_path / "cluster.json"
        state.write_text(
            json.dumps(
                {
                    "workers": [],
                    "policy": {"enabled": True, "log": str(tmp_path / "gone.log")},
                }
            )
        )
        assert main(["policy", "status", "--state", str(state)]) == 0
        assert "actions: 0" in capsys.readouterr().out


SPIN_DESCRIPTOR = {
    "name": "cli-spin",
    "operators": [
        {
            "name": "src",
            "type": "source",
            "class": "repro.workloads.operators:CountingSource",
            "kwargs": {"total": 250, "payload_size": 64},
        },
        {
            "name": "spin",
            "type": "processor",
            "class": "repro.workloads.operators:SpinProcessor",
            "kwargs": {"spin_seconds": 0.003},
        },
        {
            "name": "sink",
            "type": "processor",
            "class": "repro.workloads.operators:CollectingSink",
        },
    ],
    "links": [
        {"from": "src", "to": "spin"},
        {"from": "spin", "to": "sink"},
    ],
}


class TestProfileCommand:
    """`repro profile`: run under the sampler, dump flamegraph formats,
    and render recovered profiles post-mortem (`--from-dump`)."""

    @pytest.fixture
    def spin_descriptor(self, tmp_path):
        path = tmp_path / "spin.json"
        path.write_text(json.dumps(SPIN_DESCRIPTOR))
        return str(path)

    def test_profile_writes_valid_speedscope(self, spin_descriptor, tmp_path, capsys):
        out = tmp_path / "prof.speedscope.json"
        assert main(["profile", spin_descriptor, "--dump", str(out)]) == 0
        summary = capsys.readouterr().out
        assert "profile:" in summary
        assert "spin" in summary
        doc = json.loads(out.read_text())
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        frames = doc["shared"]["frames"]
        assert doc["profiles"], "sampler took no samples over a ~1s spin run"
        names = [p["name"] for p in doc["profiles"]]
        assert "spin" in names
        for p in doc["profiles"]:
            assert p["type"] == "sampled" and p["unit"] == "seconds"
            assert len(p["samples"]) == len(p["weights"])
            for stack in p["samples"]:
                assert all(0 <= i < len(frames) for i in stack)

    def test_profile_collapsed_format(self, spin_descriptor, tmp_path, capsys):
        out = tmp_path / "prof.collapsed"
        assert main(
            ["profile", spin_descriptor, "--dump", str(out), "--format", "collapsed"]
        ) == 0
        text = out.read_text()
        assert text
        for line in text.splitlines():
            label, _, count = line.rpartition(" ")
            assert label and count.isdigit(), f"bad collapsed line: {line!r}"
        assert any(line.startswith("spin;") for line in text.splitlines())

    def test_from_dump_renders_a_profile_snapshot(self, tmp_path, capsys):
        snap = {
            "schema": "neptune-profile/1",
            "state": "dormant",
            "cpu_mode": "task-stat",
            "samples": 42,
            "operators": {
                "spin": {
                    "kind": "operator",
                    "samples": 40,
                    "cpu_seconds": 1.5,
                    "wall_seconds": 1.6,
                    "off_cpu_seconds": 0.1,
                    "stacks": {"operators.py:_spin": 40},
                    "top_frames": {"operators.py:_spin": 40},
                }
            },
        }
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(snap))
        out = tmp_path / "out.speedscope.json"
        assert main(["profile", "--from-dump", str(path), "--dump", str(out)]) == 0
        summary = capsys.readouterr().out
        assert "spin" in summary and "100.0%" in summary
        doc = json.loads(out.read_text())
        assert [p["name"] for p in doc["profiles"]] == ["spin"]
        assert sum(doc["profiles"][0]["weights"]) == pytest.approx(1.5)

    def test_from_dump_rejects_non_profile_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(SystemExit, match="neither a profile snapshot"):
            main(["profile", "--from-dump", str(path)])


class TestTopProfileColumns:
    """`repro top` renders per-operator CPU share and on/off-CPU from
    the merged ``neptune_profile_*`` series."""

    def test_render_top_shows_cpu_lines(self):
        from repro.cli import _render_top
        from repro.observe import RuntimeObserver

        class _StubCollector:
            def __init__(self):
                self.observer = RuntimeObserver()
                self.health = None

            def status(self):
                return {"polls": 1, "absorbed": 1, "stale": 0, "fetch_errors": 0}

            def stitched(self):
                return []

        collector = _StubCollector()
        reg = collector.observer.registry
        reg.counter(
            "neptune_profile_cpu_seconds_total",
            {"operator": "spin", "kind": "operator", "worker": "1"},
            "h",
        ).set_total(3.0)
        reg.counter(
            "neptune_profile_off_cpu_seconds_total",
            {"operator": "spin", "kind": "operator", "worker": "1"},
            "h",
        ).set_total(0.5)
        reg.counter(
            "neptune_profile_cpu_seconds_total",
            {"operator": "relay", "kind": "operator", "worker": "0"},
            "h",
        ).set_total(1.0)
        reg.counter(
            "neptune_profile_cpu_seconds_total",
            {"operator": "neptune-flush", "kind": "runtime", "worker": "0"},
            "h",
        ).set_total(9.0)  # runtime kind: excluded from the cpu table
        text = _render_top(
            collector, [{"worker_id": 0, "alive": True}], "test", frame=1
        )
        assert "cpu spin" in text
        assert "75.0%" in text
        assert "on=3.00s" in text and "off=0.50s" in text
        assert "cpu relay" in text and "25.0%" in text
        assert "neptune-flush" not in text
