"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


DESCRIPTOR = {
    "name": "cli-relay",
    "operators": [
        {
            "name": "src",
            "type": "source",
            "class": "repro.workloads.operators:CountingSource",
            "kwargs": {"total": 200},
        },
        {
            "name": "relay",
            "type": "processor",
            "class": "repro.workloads.operators:RelayProcessor",
        },
        {
            "name": "sink",
            "type": "processor",
            "class": "repro.workloads.operators:CollectingSink",
        },
    ],
    "links": [
        {"from": "src", "to": "relay"},
        {"from": "relay", "to": "sink"},
    ],
}


@pytest.fixture
def descriptor_file(tmp_path):
    path = tmp_path / "graph.json"
    path.write_text(json.dumps(DESCRIPTOR))
    return str(path)


class TestValidate:
    def test_valid_descriptor(self, descriptor_file, capsys):
        assert main(["validate", descriptor_file]) == 0
        out = capsys.readouterr().out
        assert "cli-relay" in out and "OK" in out
        assert "stages" in out

    def test_invalid_descriptor(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "operators": [], "links": []}))
        from repro.util.errors import GraphValidationError

        with pytest.raises(GraphValidationError):
            main(["validate", str(bad)])


class TestRun:
    def test_run_to_completion(self, descriptor_file, capsys):
        assert main(["run", descriptor_file]) == 0
        out = capsys.readouterr().out
        assert "drained" in out
        assert "in=       200" in out.replace("in=        200", "in=       200") or "200" in out

    def test_run_distributed(self, descriptor_file, capsys):
        assert main(["run", descriptor_file, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "resource 0" in out and "resource 1" in out
        assert "drained" in out


class TestExperiment:
    def test_fig6(self, capsys):
        assert main(["experiment", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "FIG6" in out and "nodes" in out

    def test_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_fig10(self, capsys):
        assert main(["experiment", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "one-tailed" in out

    def test_headline(self, capsys):
        assert main(["experiment", "headline"]) == 0
        assert "single_pipeline_msg_s" in capsys.readouterr().out

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "NEPTUNE" in capsys.readouterr().out


class TestRunDuration:
    def test_run_for_duration_then_stop(self, tmp_path, capsys):
        endless = dict(DESCRIPTOR)
        endless = json.loads(json.dumps(DESCRIPTOR))
        endless["operators"][0]["kwargs"] = {"total": None}
        path = tmp_path / "endless.json"
        path.write_text(json.dumps(endless))
        assert main(["run", str(path), "--duration", "0.5", "--drain-timeout", "30"]) == 0
        out = capsys.readouterr().out
        assert "drained" in out


class TestPolicyCommand:
    """`policy status|log`: file-read attach to a cluster's action log."""

    @pytest.fixture
    def policy_state(self, tmp_path):
        log = tmp_path / "policy-actions.log"
        lines = [
            json.dumps(
                {
                    "scan": 7,
                    "kind": "retune",
                    "operator": "sink",
                    "slo": "sink-backlog",
                    "cause": "backpressure_cascade",
                    "reason": "batch_up",
                    "worker": None,
                    "params": {"where": "into", "max_delay": 0.05},
                },
                sort_keys=True,
                separators=(",", ":"),
            ),
            json.dumps(
                {"scan": 31, "kind": "scale", "operator": "svc"},
                sort_keys=True,
                separators=(",", ":"),
            ),
        ]
        log.write_text("\n".join(lines) + "\n")
        state = tmp_path / "cluster.json"
        state.write_text(
            json.dumps(
                {
                    "workers": [],
                    "policy": {"enabled": True, "log": str(log)},
                }
            )
        )
        return str(state), lines

    def test_status_counts_actions_by_kind(self, policy_state, capsys):
        state, _ = policy_state
        assert main(["policy", "status", "--state", state]) == 0
        out = capsys.readouterr().out
        assert "policy: enabled" in out
        assert "actions: 2" in out
        assert "retune=1" in out and "scale=1" in out

    def test_log_prints_canonical_lines_verbatim(self, policy_state, capsys):
        state, lines = policy_state
        assert main(["policy", "log", "--state", state]) == 0
        assert capsys.readouterr().out.splitlines() == lines

    def test_not_enabled_is_an_error(self, tmp_path, capsys):
        state = tmp_path / "cluster.json"
        state.write_text(json.dumps({"workers": []}))
        assert main(["policy", "status", "--state", str(state)]) == 1
        assert "not enabled" in capsys.readouterr().out

    def test_missing_log_file_reports_zero_actions(self, tmp_path, capsys):
        state = tmp_path / "cluster.json"
        state.write_text(
            json.dumps(
                {
                    "workers": [],
                    "policy": {"enabled": True, "log": str(tmp_path / "gone.log")},
                }
            )
        )
        assert main(["policy", "status", "--state", str(state)]) == 0
        assert "actions: 0" in capsys.readouterr().out
