"""Tests for the Fig. 3/4 backpressure staircase simulation."""

import pytest

from repro.sim.backpressure import (
    BackpressureParams,
    BackpressureSimulation,
    run_backpressure,
)


@pytest.fixture(scope="module")
def staircase_result():
    return run_backpressure(BackpressureParams())


class TestStaircase:
    def test_source_runs_at_arrival_rate_without_sleep(self, staircase_result):
        r = staircase_result
        free = r.mean_rate_during(0.0)
        assert free == pytest.approx(50_000, rel=0.15)

    def test_source_tracks_sink_service_rate(self, staircase_result):
        """Fig. 4: source throughput inversely proportional to sleep."""
        r = staircase_result
        for sleep in (0.001, 0.002, 0.003):
            expected = 1.0 / sleep
            measured = r.mean_rate_during(sleep)
            assert measured == pytest.approx(expected, rel=0.8), (
                f"sleep={sleep}: {measured} vs {expected}"
            )

    def test_rate_ordering_is_inverse_in_sleep(self, staircase_result):
        r = staircase_result
        r0 = r.mean_rate_during(0.0)
        r1 = r.mean_rate_during(0.001)
        r2 = r.mean_rate_during(0.002)
        r3 = r.mean_rate_during(0.003)
        assert r0 > r1 > r2 > r3 > 0

    def test_pressure_mechanisms_engaged(self, staircase_result):
        r = staircase_result
        assert r.source_blocks > 0  # source actually stalled
        assert r.gate_trips_c > 0  # stage C's inbound gate tripped
        assert r.gate_trips_b > 0  # pressure propagated through B

    def test_recovery_after_sleep_removed(self, staircase_result):
        """After the staircase returns to 0 ms the source recovers."""
        r = staircase_result
        tail = [
            rate
            for t, rate, s in zip(r.times, r.source_rate, r.sleep_in_force)
            if t > 22.0 and s == 0.0
        ]
        assert tail, "no samples after recovery"
        assert max(tail) > 30_000


class TestConstruction:
    def test_custom_schedule(self):
        params = BackpressureParams(
            sleep_schedule=((0.0, 0.0), (1.0, 0.002)),
            duration=3.0,
            probe_interval=0.25,
        )
        r = run_backpressure(params)
        assert len(r.times) >= 10
        # Later windows are pressure-limited.
        assert r.source_rate[-1] < r.source_rate[1]

    def test_simulation_object_reusable_api(self):
        sim = BackpressureSimulation(BackpressureParams(duration=1.0))
        result = sim.run()
        assert sim.generated > 0
        assert result.times
