"""Tests for the standard operator library and monitoring probe."""

import json
import time

import pytest

from repro.core import (
    FieldType,
    NeptuneConfig,
    NeptuneRuntime,
    PacketSchema,
    StreamProcessingGraph,
)
from repro.core.monitor import ThroughputProbe
from repro.granules import FileDataset
from repro.workloads import CollectingSink, CountingSource, RELAY_SCHEMA
from repro.workloads.stdlib import (
    FilterProcessor,
    JsonLinesFileSource,
    MapProcessor,
    ThrottledSource,
    WindowedAggregateProcessor,
)

NUM = PacketSchema([("n", FieldType.INT64)])


def small_config(**kw):
    defaults = dict(buffer_capacity=1024, buffer_max_delay=0.004)
    defaults.update(kw)
    return NeptuneConfig(**defaults)


class TestMapFilter:
    def test_map_transforms(self):
        store = []
        g = StreamProcessingGraph("map", config=small_config())
        g.add_source("src", lambda: CountingSource(total=100))
        g.add_processor(
            "double",
            lambda: MapProcessor(NUM, lambda src, dst: dst.set("n", src["seq"] * 2)),
        )
        g.add_processor("sink", lambda: CollectingSink(store, field="n"))
        g.link("src", "double").link("double", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        assert store == [2 * i for i in range(100)]

    def test_filter_drops(self):
        store = []
        fp = FilterProcessor(RELAY_SCHEMA, lambda p: p["seq"] % 3 == 0)
        g = StreamProcessingGraph("filter", config=small_config())
        g.add_source("src", lambda: CountingSource(total=99))
        g.add_processor("keep3", lambda: fp)
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "keep3").link("keep3", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        assert store == list(range(0, 99, 3))
        assert fp.passed == 33
        assert fp.dropped == 66


class TestWindowedAggregate:
    OUT = PacketSchema([("key", FieldType.INT64), ("mean", FieldType.FLOAT64)])

    def make(self, emit_every=1):
        return WindowedAggregateProcessor(
            out_schema=self.OUT,
            key_field="seq",
            time_field="emitted_at",
            value_field="emitted_at",
            window_seconds=3600.0,
            aggregate=lambda vs: sum(vs) / len(vs),
            fill=lambda pkt, key, value: (pkt.set("key", key), pkt.set("mean", value)),
            emit_every=emit_every,
        )

    def test_emits_aggregate_per_packet(self):
        store = []

        class TimedSource(CountingSource):
            def generate(self, ctx):
                if self.emitted >= self.total:
                    ctx.finish()
                    return
                pkt = ctx.new_packet()
                pkt.set("seq", self.emitted % 2)  # two keys
                pkt.set("emitted_at", float(self.emitted))
                pkt.set("payload", b"")
                ctx.emit(pkt)
                self.emitted += 1

        g = StreamProcessingGraph("agg", config=small_config())
        g.add_source("src", lambda: TimedSource(total=20))
        g.add_processor("window", lambda: self.make())
        g.add_processor("sink", lambda: CollectingSink(store, field=None))
        g.link("src", "window", partitioning={"scheme": "fields", "fields": ["seq"]})
        g.link("window", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        assert len(store) == 20
        # Windows are per key: the final aggregate for key 0 is the
        # mean of its own observations 0,2,...,18 = 9.0.
        finals = {p["key"]: p["mean"] for p in store}
        assert finals[0] == pytest.approx(9.0)
        assert finals[1] == pytest.approx(10.0)

    def test_emit_every_thins_output(self):
        proc = self.make(emit_every=5)

        class Ctx:
            emitted = []

            def new_packet(self, stream=None):
                from repro.core.packet import StreamPacket

                return StreamPacket(TestWindowedAggregate.OUT)

            def emit(self, pkt, stream=None):
                self.emitted.append(pkt)

        ctx = Ctx()
        pkt = RELAY_SCHEMA.new_packet(seq=1, emitted_at=0.0, payload=b"")
        for i in range(10):
            pkt.set("emitted_at", float(i))
            proc.process(pkt, ctx)
        assert len(ctx.emitted) == 2  # every 5th

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(emit_every=0)

    def test_checkpoint_roundtrip(self):
        proc = self.make()

        class Ctx:
            def new_packet(self, stream=None):
                from repro.core.packet import StreamPacket

                return StreamPacket(TestWindowedAggregate.OUT)

            def emit(self, pkt, stream=None):
                pass

        pkt = RELAY_SCHEMA.new_packet(seq=7, emitted_at=5.0, payload=b"")
        proc.process(pkt, Ctx())
        state = proc.snapshot_state()
        fresh = self.make()
        fresh.restore_state(state)
        assert list(fresh._windows[7].values()) == [5.0]


class TestThrottledSource:
    def test_paces_emission(self):
        store = []
        inner = CountingSource(total=None)
        g = StreamProcessingGraph("paced", config=small_config())
        g.add_source("src", lambda: ThrottledSource(inner, rate=200.0))
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            time.sleep(1.0)
            h.stop(timeout=30)
        # ~200/s for ~1s; generous bounds for CI noise.
        assert 60 <= len(store) <= 420

    def test_passthrough_schema_and_finish(self):
        store = []
        g = StreamProcessingGraph("paced2", config=small_config())
        g.add_source("src", lambda: ThrottledSource(CountingSource(total=30), rate=10_000))
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        assert store == list(range(30))


class TestFileDataset:
    def test_lines_iteration(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("one\ntwo\nthree\n")
        ds = FileDataset("f", str(path))
        assert ds.has_data()
        assert ds.next() == b"one\n"
        assert ds.next() == b"two\n"
        assert ds.tell() == 8
        assert ds.next() == b"three\n"
        assert not ds.has_data()
        ds.close()

    def test_seek_replays(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("aa\nbb\ncc\n")
        ds = FileDataset("f", str(path))
        ds.next()
        pos = ds.tell()
        ds.next()
        ds.seek(pos)
        assert ds.next() == b"bb\n"
        ds.close()

    def test_tell_accounts_for_peek(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("xx\nyy\n")
        ds = FileDataset("f", str(path))
        assert ds.has_data()  # peeks "xx\n"
        assert ds.tell() == 0  # but position reflects the unread record
        ds.close()

    def test_bytes_mode(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(range(100)))
        ds = FileDataset("f", str(path), mode="bytes")
        chunk = ds.next(block_size=64)
        assert len(chunk) == 64
        ds.close()

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            FileDataset("f", "x", mode="pages")


class TestJsonLinesFileSource:
    def _write(self, tmp_path, rows):
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        return str(path)

    def test_replay_file(self, tmp_path):
        rows = [{"n": i} for i in range(50)]
        path = self._write(tmp_path, rows)
        store = []
        g = StreamProcessingGraph("jsonl", config=small_config())
        g.add_source("src", lambda: JsonLinesFileSource(path, NUM))
        g.add_processor("sink", lambda: CollectingSink(store, field="n"))
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            assert rt.submit(g).await_completion(timeout=30)
        assert store == list(range(50))

    def test_checkpoint_resumes_position(self, tmp_path):
        rows = [{"n": i} for i in range(40)]
        path = self._write(tmp_path, rows)
        store = []
        sources = []

        def graph():
            g = StreamProcessingGraph("jsonl-ckpt", config=small_config())

            def make():
                src = JsonLinesFileSource(path, NUM)
                sources.append(src)
                return src

            g.add_source("src", make)
            g.add_processor("sink", lambda: CollectingSink(store, field="n"))
            g.link("src", "sink")
            return g

        with NeptuneRuntime() as rt:
            h = rt.submit(graph())
            assert h.await_completion(timeout=30)
            ckpt = h.checkpoint()
        assert len(store) == 40
        # Restore into a fresh job: position is at EOF → nothing replays.
        with NeptuneRuntime() as rt:
            h2 = rt.submit(graph(), restore_from=ckpt)
            assert h2.await_completion(timeout=30)
        assert len(store) == 40


class TestThroughputProbe:
    def test_probe_samples_rates(self):
        g = StreamProcessingGraph("probe", config=small_config())
        g.add_source("src", lambda: CountingSource(total=None))
        g.add_processor("sink", CollectingSink)
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            probe = ThroughputProbe(h, interval=0.1)
            with probe:
                time.sleep(0.6)
            h.stop(timeout=30)
        samples = probe.history("sink")
        assert samples, "no samples recorded"
        assert any(s.packets_in_per_s > 0 for s in samples)
        assert "sink" in probe.operators()
        assert probe.latest("sink") is samples[-1]

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ThroughputProbe(None, interval=0)

    def test_stop_during_active_run_idempotent_and_concurrent(self):
        """S2 regression: stopping the probe while the job is still
        running — including from several threads at once — must join
        the sampler thread without deadlock, be idempotent, and leave
        the probe restartable."""
        import threading

        g = StreamProcessingGraph("probe-stop", config=small_config())
        g.add_source("src", lambda: CountingSource(total=None))
        g.add_processor("sink", CollectingSink)
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            probe = ThroughputProbe(h, interval=0.01)
            probe.start()
            time.sleep(0.15)
            stoppers = [threading.Thread(target=probe.stop) for _ in range(3)]
            for t in stoppers:
                t.start()
            probe.stop()
            for t in stoppers:
                t.join(10.0)
                assert not t.is_alive(), "probe.stop() hung"
            assert probe._thread is None
            probe.stop()  # idempotent after the fact
            probe.start()  # and restartable
            probe.stop(timeout=5.0)
            h.stop(timeout=30)

    def test_history_bounded_to_live_operators(self):
        """S2 regression: operators that vanish from the metrics
        snapshot are pruned from history/last so a long-lived probe
        cannot accumulate dead keys."""

        class FakeHandle:
            def __init__(self):
                self.snap = {}

            def metrics(self):
                return self.snap

        handle = FakeHandle()
        probe = ThroughputProbe(handle, interval=1.0)
        row = {"packets_in": 1, "packets_out": 1, "bytes_in": 10}
        handle.snap = {"a": dict(row), "b": dict(row)}
        probe.sample_once()
        probe.sample_once()
        assert probe.operators() == ["a", "b"]
        handle.snap = {"b": dict(row)}
        probe.sample_once()
        assert probe.operators() == ["b"]
        assert probe.history("a") == []
        assert probe.latest("a") is None
