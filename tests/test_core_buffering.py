"""Tests for application-level buffering (capacity + timer flush, §III-B1)."""

import threading
import time

import pytest

from repro.core.buffering import FlushTimerService, StreamBuffer
from repro.util import ManualClock


class Sink:
    def __init__(self):
        self.flushes = []

    def __call__(self, body, count):
        self.flushes.append((body, count))


class TestCapacityFlush:
    def test_no_flush_below_capacity(self):
        sink = Sink()
        buf = StreamBuffer(capacity=100, sink=sink, clock=ManualClock())
        assert not buf.append(b"x" * 50)
        assert sink.flushes == []
        assert buf.pending_bytes == 50
        assert buf.pending_count == 1

    def test_flush_at_capacity(self):
        sink = Sink()
        buf = StreamBuffer(capacity=100, sink=sink, clock=ManualClock())
        buf.append(b"a" * 60)
        assert buf.append(b"b" * 60)  # 120 >= 100 → flush
        assert sink.flushes == [(b"a" * 60 + b"b" * 60, 2)]
        assert buf.pending_bytes == 0

    def test_capacity_is_bytes_not_count(self):
        """Paper: buffers are sized by capacity, not message count."""
        sink = Sink()
        buf = StreamBuffer(capacity=1000, sink=sink, clock=ManualClock())
        for _ in range(999):
            buf.append(b"x")  # 999 tiny messages: below capacity
        assert sink.flushes == []
        buf.append(b"y")
        assert len(sink.flushes) == 1
        assert sink.flushes[0][1] == 1000

    def test_single_oversized_payload_flushes_immediately(self):
        sink = Sink()
        buf = StreamBuffer(capacity=10, sink=sink, clock=ManualClock())
        buf.append(b"z" * 100)
        assert sink.flushes == [(b"z" * 100, 1)]

    def test_flush_order_preserved(self):
        sink = Sink()
        buf = StreamBuffer(capacity=4, sink=sink, clock=ManualClock())
        for i in range(10):
            buf.append(bytes([i]) * 4)
        bodies = b"".join(b for b, _ in sink.flushes)
        assert bodies == b"".join(bytes([i]) * 4 for i in range(10))

    def test_stats(self):
        sink = Sink()
        buf = StreamBuffer(capacity=4, sink=sink, clock=ManualClock())
        buf.append(b"aaaa")
        buf.append(b"bb")
        buf.flush()
        assert buf.capacity_flushes == 1
        assert buf.manual_flushes == 1
        assert buf.bytes_flushed == 6
        assert buf.packets_flushed == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamBuffer(capacity=0, sink=Sink())
        with pytest.raises(ValueError):
            StreamBuffer(capacity=10, sink=Sink(), max_delay=0)


class TestTimerFlush:
    def test_flush_if_due_after_max_delay(self):
        clk = ManualClock()
        sink = Sink()
        buf = StreamBuffer(capacity=1000, sink=sink, max_delay=0.5, clock=clk)
        buf.append(b"data")
        assert not buf.flush_if_due()  # not yet due
        clk.advance(0.6)
        assert buf.flush_if_due()
        assert sink.flushes == [(b"data", 1)]
        assert buf.timer_flushes == 1

    def test_deadline_measured_from_first_append(self):
        """The paper's timer starts at the *first* message's arrival."""
        clk = ManualClock()
        sink = Sink()
        buf = StreamBuffer(capacity=1000, sink=sink, max_delay=1.0, clock=clk)
        buf.append(b"first")
        clk.advance(0.8)
        buf.append(b"second")  # does NOT restart the timer
        clk.advance(0.3)  # first has now waited 1.1s
        assert buf.flush_if_due()
        assert sink.flushes == [(b"firstsecond", 2)]

    def test_next_deadline(self):
        clk = ManualClock(start=10.0)
        buf = StreamBuffer(capacity=1000, sink=Sink(), max_delay=0.25, clock=clk)
        assert buf.next_deadline() is None
        buf.append(b"x")
        assert buf.next_deadline() == pytest.approx(10.25)

    def test_empty_manual_flush_is_noop(self):
        sink = Sink()
        buf = StreamBuffer(capacity=10, sink=sink, clock=ManualClock())
        assert not buf.flush()
        assert sink.flushes == []


class TestFlushTimerService:
    def test_timer_service_flushes_latent_buffer(self):
        """A slow stream must still meet its latency bound (real time)."""
        sink = Sink()
        buf = StreamBuffer(capacity=1 << 20, sink=sink, max_delay=0.02)
        svc = FlushTimerService()
        svc.register(buf)
        svc.start()
        try:
            buf.append(b"lonely-message")
            deadline = time.monotonic() + 2
            while not sink.flushes and time.monotonic() < deadline:
                time.sleep(0.005)
            assert sink.flushes == [(b"lonely-message", 1)]
        finally:
            svc.stop()

    def test_unregister_stops_flushing(self):
        sink = Sink()
        buf = StreamBuffer(capacity=1 << 20, sink=sink, max_delay=0.01)
        svc = FlushTimerService()
        svc.register(buf)
        svc.unregister(buf)
        svc.start()
        try:
            buf.append(b"data")
            time.sleep(0.1)
            assert sink.flushes == []
        finally:
            svc.stop()

    def test_unregister_unknown_buffer_is_noop(self):
        svc = FlushTimerService()
        svc.unregister(StreamBuffer(capacity=1, sink=Sink()))


class TestConcurrentFlushOrdering:
    def test_worker_and_timer_never_reorder(self):
        """Capacity flushes (worker) and timer flushes must serialize."""
        order = []
        lock = threading.Lock()

        def sink(body, count):
            with lock:
                order.append(body)

        buf = StreamBuffer(capacity=64, sink=sink, max_delay=0.001)
        svc = FlushTimerService()
        svc.register(buf)
        svc.start()
        try:
            payload = []
            for i in range(2000):
                chunk = i.to_bytes(4, "little")
                payload.append(chunk)
                buf.append(chunk)
                if i % 100 == 0:
                    time.sleep(0.002)  # let timer flushes interleave
            buf.flush()
        finally:
            svc.stop()
        assert b"".join(order) == b"".join(payload)


class TestDoubleBufferRecycle:
    def test_flush_hands_over_pooled_bytearray(self):
        bodies = []
        buf = StreamBuffer(capacity=64, sink=lambda b, c: bodies.append(b))
        buf.append(b"x" * 64)
        assert isinstance(bodies[0], bytearray)
        assert bytes(bodies[0]) == b"x" * 64

    def test_steady_state_cycles_two_buffers_without_allocating(self):
        bodies = []

        def sink(body, count):
            bodies.append(body)
            buf.recycle(body)

        buf = StreamBuffer(capacity=64, sink=sink)
        for _ in range(6):
            buf.append(b"x" * 64)
        assert len(bodies) == 6
        # The same two storage objects alternate; only one fresh
        # bytearray was ever allocated to replace the one in flight.
        assert len({id(b) for b in bodies}) <= 2
        assert buf.spare_allocs == 1
        assert buf.buffers_recycled == 6

    def test_non_recycling_sink_keeps_body_contents(self):
        sink = Sink()
        buf = StreamBuffer(capacity=64, sink=sink)
        buf.append(b"a" * 64)
        buf.append(b"b" * 64)
        # A legacy sink that retains bodies must see each batch intact.
        assert [bytes(b) for b, _ in sink.flushes] == [b"a" * 64, b"b" * 64]

    def test_recycle_ignores_foreign_bodies(self):
        buf = StreamBuffer(capacity=64, sink=lambda b, c: None)
        buf.recycle(b"immutable")
        buf.recycle(memoryview(b"view"))
        assert buf.buffers_recycled == 0

    def test_recycle_pool_is_bounded(self):
        buf = StreamBuffer(capacity=64, sink=lambda b, c: None)
        for _ in range(5):
            buf.recycle(bytearray(b"spare"))
        assert buf.buffers_recycled == 2  # _SPARE_LIMIT

    def test_recycle_drops_bytearray_with_live_export(self):
        buf = StreamBuffer(capacity=64, sink=lambda b, c: None)
        ba = bytearray(b"exported")
        view = memoryview(ba)
        buf.recycle(ba)  # clear() would raise BufferError — dropped
        assert buf.buffers_recycled == 0
        assert bytes(view) == b"exported"
        view.release()


class TestStaleClockScan:
    """Regression: FlushTimerService computed `now` once per scan, so a
    blocking sink made every later buffer's deadline check stale and
    silently exceeded their max_delay bound."""

    def test_buffer_becoming_due_during_blocked_sink_flushes_same_scan(self):
        clock = ManualClock()
        svc = FlushTimerService(clock=clock)
        flushed = []

        def slow_sink(body, count):
            flushed.append("A")
            clock.advance(0.5)  # the sink blocks 500ms under backpressure

        a = StreamBuffer(capacity=1 << 20, sink=slow_sink, max_delay=0.5, clock=clock)
        b = StreamBuffer(
            capacity=1 << 20,
            sink=lambda body, count: flushed.append("B"),
            max_delay=0.5,
            clock=clock,
        )
        svc.register(a)
        svc.register(b)
        a.append(b"a")  # deadline t=0.5
        clock.advance(0.3)
        b.append(b"b")  # deadline t=0.8
        clock.advance(0.25)  # t=0.55: A due, B not yet
        svc.scan_once()
        # A's sink advanced the clock to t=1.05 > B's deadline.  With a
        # scan-global timestamp B would wait for the next scan, blowing
        # its latency bound; per-buffer clock reads flush it now.
        assert flushed == ["A", "B"]

    def test_sleep_delay_rereads_clock_after_blocking_flushes(self):
        clock = ManualClock()
        svc = FlushTimerService(clock=clock, max_poll=10.0)

        def slow_sink(body, count):
            clock.advance(0.4)

        a = StreamBuffer(capacity=1 << 20, sink=slow_sink, max_delay=0.1, clock=clock)
        b = StreamBuffer(
            capacity=1 << 20, sink=lambda bd, c: None, max_delay=10.0, clock=clock
        )
        svc.register(a)
        svc.register(b)
        a.append(b"a")  # due at t=0.1
        b.append(b"b")  # due at t=10.0
        clock.advance(0.2)  # A due now
        delay = svc.scan_once()  # flushing A advances the clock by 0.4
        # Sleep until B's deadline must be measured from the *post-flush*
        # clock (t=0.6): 10.0 - 0.6, not 10.0 - 0.2.
        assert delay == pytest.approx(10.0 - 0.6)


class TestDeadlineShrinkWakeup:
    """Regression: the service computed its sleep from the nearest
    deadline at scan time only, so a deadline that *shrinks* mid-sleep
    (live retune / config reload) was missed by up to the stale sleep.
    retune() now pokes the service, which wakes immediately."""

    def test_retune_applies_and_counts(self):
        buf = StreamBuffer(
            capacity=100, sink=Sink(), max_delay=1.0, clock=ManualClock()
        )
        changed = buf.retune(max_delay=0.5, capacity=200)
        assert changed == {"max_delay": (1.0, 0.5), "capacity": (100, 200)}
        assert buf.max_delay == 0.5
        assert buf.capacity == 200
        assert buf.retunes == 1
        assert buf.retune(max_delay=0.5) == {}  # no-op: values unchanged
        assert buf.retunes == 1
        with pytest.raises(ValueError):
            buf.retune(max_delay=0)
        with pytest.raises(ValueError):
            buf.retune(capacity=-1)

    def test_retune_shrink_pokes_registered_service(self):
        svc = FlushTimerService(clock=ManualClock())
        buf = StreamBuffer(
            capacity=100, sink=Sink(), max_delay=1.0, clock=ManualClock()
        )
        svc.register(buf)
        before = svc.pokes
        buf.retune(max_delay=0.2)  # shrinks: must wake the scan thread
        assert svc.pokes == before + 1
        buf.retune(max_delay=0.5)  # grows: the old sleep is still safe
        assert svc.pokes == before + 1

    def test_shrunk_deadline_flushes_on_next_scan(self):
        clk = ManualClock()
        sink = Sink()
        svc = FlushTimerService(clock=clk, max_poll=100.0)
        buf = StreamBuffer(capacity=1 << 20, sink=sink, max_delay=50.0, clock=clk)
        svc.register(buf)
        buf.append(b"x")
        assert svc.scan_once() == pytest.approx(50.0)  # sleep vs old bound
        buf.retune(max_delay=0.5)
        clk.advance(1.0)  # past the NEW deadline, far from the old one
        svc.scan_once()
        assert sink.flushes == [(b"x", 1)]

    def test_retune_shrink_wakes_sleeping_service(self):
        """Real-time: the service sleeps toward a 30s deadline; a live
        retune to 10ms must flush promptly, not after the stale sleep."""
        sink = Sink()
        buf = StreamBuffer(capacity=1 << 20, sink=sink, max_delay=30.0)
        svc = FlushTimerService(max_poll=30.0)
        svc.register(buf)
        svc.start()
        try:
            buf.append(b"parked")
            time.sleep(0.05)  # let the service go to sleep
            start = time.monotonic()
            buf.retune(max_delay=0.01)  # already overdue → flush now
            deadline = time.monotonic() + 5
            while not sink.flushes and time.monotonic() < deadline:
                time.sleep(0.002)
            elapsed = time.monotonic() - start
            assert sink.flushes == [(b"parked", 1)]
            assert elapsed < 2.0, "shrunk deadline was missed by the old sleep"
        finally:
            svc.stop()

    def test_stop_interrupts_long_sleep(self):
        svc = FlushTimerService(max_poll=30.0)
        svc.start()
        start = time.monotonic()
        svc.stop()
        assert time.monotonic() - start < 5.0


class TestSwapStress:
    def test_capacity_flush_racing_timer_thread_loses_nothing(self):
        """Worker-thread capacity flushes race the real timer thread
        (plus recycling) — every packet arrives exactly once, in order."""
        import struct

        total = 20_000
        record = struct.Struct("<q")
        received = []
        lock = threading.Lock()

        def sink(body, count):
            assert len(body) % record.size == 0
            with lock:
                received.extend(
                    record.unpack_from(body, off)[0]
                    for off in range(0, len(body), record.size)
                )
            buf.recycle(body)

        buf = StreamBuffer(capacity=256, sink=sink, max_delay=0.001)
        svc = FlushTimerService(max_poll=0.0005)
        svc.register(buf)
        svc.start()
        try:
            for i in range(total):
                buf.append(record.pack(i))
                if i % 1000 == 999:
                    time.sleep(0.002)  # let the timer fire on partial buffers
            buf.flush()
        finally:
            svc.stop()
        assert len(received) == total, "lost or duplicated packets"
        assert received == list(range(total)), "reordered packets"
        assert buf.timer_flushes > 0, "timer thread never raced the worker"
        assert buf.capacity_flushes > 0
