"""Tests for application-level buffering (capacity + timer flush, §III-B1)."""

import threading
import time

import pytest

from repro.core.buffering import FlushTimerService, StreamBuffer
from repro.util import ManualClock


class Sink:
    def __init__(self):
        self.flushes = []

    def __call__(self, body, count):
        self.flushes.append((body, count))


class TestCapacityFlush:
    def test_no_flush_below_capacity(self):
        sink = Sink()
        buf = StreamBuffer(capacity=100, sink=sink, clock=ManualClock())
        assert not buf.append(b"x" * 50)
        assert sink.flushes == []
        assert buf.pending_bytes == 50
        assert buf.pending_count == 1

    def test_flush_at_capacity(self):
        sink = Sink()
        buf = StreamBuffer(capacity=100, sink=sink, clock=ManualClock())
        buf.append(b"a" * 60)
        assert buf.append(b"b" * 60)  # 120 >= 100 → flush
        assert sink.flushes == [(b"a" * 60 + b"b" * 60, 2)]
        assert buf.pending_bytes == 0

    def test_capacity_is_bytes_not_count(self):
        """Paper: buffers are sized by capacity, not message count."""
        sink = Sink()
        buf = StreamBuffer(capacity=1000, sink=sink, clock=ManualClock())
        for _ in range(999):
            buf.append(b"x")  # 999 tiny messages: below capacity
        assert sink.flushes == []
        buf.append(b"y")
        assert len(sink.flushes) == 1
        assert sink.flushes[0][1] == 1000

    def test_single_oversized_payload_flushes_immediately(self):
        sink = Sink()
        buf = StreamBuffer(capacity=10, sink=sink, clock=ManualClock())
        buf.append(b"z" * 100)
        assert sink.flushes == [(b"z" * 100, 1)]

    def test_flush_order_preserved(self):
        sink = Sink()
        buf = StreamBuffer(capacity=4, sink=sink, clock=ManualClock())
        for i in range(10):
            buf.append(bytes([i]) * 4)
        bodies = b"".join(b for b, _ in sink.flushes)
        assert bodies == b"".join(bytes([i]) * 4 for i in range(10))

    def test_stats(self):
        sink = Sink()
        buf = StreamBuffer(capacity=4, sink=sink, clock=ManualClock())
        buf.append(b"aaaa")
        buf.append(b"bb")
        buf.flush()
        assert buf.capacity_flushes == 1
        assert buf.manual_flushes == 1
        assert buf.bytes_flushed == 6
        assert buf.packets_flushed == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamBuffer(capacity=0, sink=Sink())
        with pytest.raises(ValueError):
            StreamBuffer(capacity=10, sink=Sink(), max_delay=0)


class TestTimerFlush:
    def test_flush_if_due_after_max_delay(self):
        clk = ManualClock()
        sink = Sink()
        buf = StreamBuffer(capacity=1000, sink=sink, max_delay=0.5, clock=clk)
        buf.append(b"data")
        assert not buf.flush_if_due()  # not yet due
        clk.advance(0.6)
        assert buf.flush_if_due()
        assert sink.flushes == [(b"data", 1)]
        assert buf.timer_flushes == 1

    def test_deadline_measured_from_first_append(self):
        """The paper's timer starts at the *first* message's arrival."""
        clk = ManualClock()
        sink = Sink()
        buf = StreamBuffer(capacity=1000, sink=sink, max_delay=1.0, clock=clk)
        buf.append(b"first")
        clk.advance(0.8)
        buf.append(b"second")  # does NOT restart the timer
        clk.advance(0.3)  # first has now waited 1.1s
        assert buf.flush_if_due()
        assert sink.flushes == [(b"firstsecond", 2)]

    def test_next_deadline(self):
        clk = ManualClock(start=10.0)
        buf = StreamBuffer(capacity=1000, sink=Sink(), max_delay=0.25, clock=clk)
        assert buf.next_deadline() is None
        buf.append(b"x")
        assert buf.next_deadline() == pytest.approx(10.25)

    def test_empty_manual_flush_is_noop(self):
        sink = Sink()
        buf = StreamBuffer(capacity=10, sink=sink, clock=ManualClock())
        assert not buf.flush()
        assert sink.flushes == []


class TestFlushTimerService:
    def test_timer_service_flushes_latent_buffer(self):
        """A slow stream must still meet its latency bound (real time)."""
        sink = Sink()
        buf = StreamBuffer(capacity=1 << 20, sink=sink, max_delay=0.02)
        svc = FlushTimerService()
        svc.register(buf)
        svc.start()
        try:
            buf.append(b"lonely-message")
            deadline = time.monotonic() + 2
            while not sink.flushes and time.monotonic() < deadline:
                time.sleep(0.005)
            assert sink.flushes == [(b"lonely-message", 1)]
        finally:
            svc.stop()

    def test_unregister_stops_flushing(self):
        sink = Sink()
        buf = StreamBuffer(capacity=1 << 20, sink=sink, max_delay=0.01)
        svc = FlushTimerService()
        svc.register(buf)
        svc.unregister(buf)
        svc.start()
        try:
            buf.append(b"data")
            time.sleep(0.1)
            assert sink.flushes == []
        finally:
            svc.stop()

    def test_unregister_unknown_buffer_is_noop(self):
        svc = FlushTimerService()
        svc.unregister(StreamBuffer(capacity=1, sink=Sink()))


class TestConcurrentFlushOrdering:
    def test_worker_and_timer_never_reorder(self):
        """Capacity flushes (worker) and timer flushes must serialize."""
        order = []
        lock = threading.Lock()

        def sink(body, count):
            with lock:
                order.append(body)

        buf = StreamBuffer(capacity=64, sink=sink, max_delay=0.001)
        svc = FlushTimerService()
        svc.register(buf)
        svc.start()
        try:
            payload = []
            for i in range(2000):
                chunk = i.to_bytes(4, "little")
                payload.append(chunk)
                buf.append(chunk)
                if i % 100 == 0:
                    time.sleep(0.002)  # let timer flushes interleave
            buf.flush()
        finally:
            svc.stop()
        assert b"".join(order) == b"".join(payload)
