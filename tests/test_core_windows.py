"""Tests for windowing utilities."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SlidingWindow, TumblingCountWindow


class TestSlidingWindow:
    def test_add_and_values(self):
        w = SlidingWindow(size=10.0)
        w.add(0.0, "a")
        w.add(5.0, "b")
        assert list(w.values()) == ["a", "b"]
        assert len(w) == 2

    def test_eviction_beyond_size(self):
        w = SlidingWindow(size=10.0)
        w.add(0.0, "old")
        w.add(10.0, "edge")  # 0.0 <= 10.0 - 10.0 → evicted
        w.add(15.0, "new")
        assert list(w.values()) == ["edge", "new"]

    def test_out_of_order_rejected(self):
        w = SlidingWindow(size=5.0)
        w.add(10.0, "x")
        with pytest.raises(ValueError, match="out-of-order"):
            w.add(9.0, "y")

    def test_equal_timestamps_allowed(self):
        w = SlidingWindow(size=5.0)
        w.add(1.0, "a")
        w.add(1.0, "b")
        assert len(w) == 2

    def test_span(self):
        w = SlidingWindow(size=100.0)
        assert w.span == 0.0
        w.add(0.0, 1)
        w.add(30.0, 2)
        assert w.span == 30.0

    def test_aggregate(self):
        w = SlidingWindow(size=100.0)
        for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            w.add(float(i), v)
        assert w.aggregate(statistics.mean) == 2.5

    def test_bool(self):
        w = SlidingWindow(size=1.0)
        assert not w
        w.add(0.0, 1)
        assert w

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(size=0)


class TestTumblingCountWindow:
    def test_emits_every_n(self):
        w = TumblingCountWindow(count=3)
        assert w.add(1) is None
        assert w.add(2) is None
        assert w.add(3) == [1, 2, 3]
        assert len(w) == 0

    def test_flush_partial(self):
        w = TumblingCountWindow(count=10)
        w.add("a")
        w.add("b")
        assert w.flush() == ["a", "b"]
        assert w.flush() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            TumblingCountWindow(count=0)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=100),
    st.floats(min_value=0.1, max_value=50.0),
)
def test_sliding_window_invariant(timestamps, size):
    """After any add sequence, all retained items lie within `size` of
    the newest timestamp."""
    w = SlidingWindow(size=size)
    for ts in sorted(timestamps):
        w.add(ts, ts)
        retained = list(w.values())
        assert retained  # the item just added is always retained
        assert all(ts - size < v <= ts for v in retained)
