"""Deliberately-defective operators for the graph-verifier fixtures.

Referenced by import path from the JSON descriptors in this directory
(``badops:ClassName``); ``tests/conftest.py`` puts this directory on
``sys.path``.
"""

from repro.core.fieldtypes import FieldType
from repro.core.operators import StreamSource
from repro.core.packet import PacketSchema

#: A schema with a sequence number only — no ``emitted_at`` timestamp.
BARE_SCHEMA = PacketSchema([("seq", FieldType.INT64)])


class NoTimestampSource(StreamSource):
    """Emits packets lacking the fields latency sinks require."""

    def __init__(self, total: int = 100) -> None:
        super().__init__()
        self.total = total
        self.emitted = 0

    def generate(self, ctx) -> None:
        if self.emitted >= self.total:
            ctx.finish()
            return
        pkt = ctx.new_packet()
        pkt.set("seq", self.emitted)
        ctx.emit(pkt)
        self.emitted += 1

    def output_schema(self, stream: str) -> PacketSchema:
        return BARE_SCHEMA


class BrokenFactorySource(StreamSource):
    """Constructor always raises — a factory fault the verifier reports."""

    def __init__(self) -> None:
        raise RuntimeError("boom: misconfigured operator")

    def generate(self, ctx) -> None:  # pragma: no cover — never constructed
        ctx.finish()

    def output_schema(self, stream: str) -> PacketSchema:  # pragma: no cover
        return BARE_SCHEMA


class NotAnOperator:
    """Builds fine but is not a StreamOperator at all."""
