"""Seeded-bad: fork start method in a lock-owning class.

``fork`` duplicates the whole process image, including any lock
currently held by *another* thread — the child inherits it locked with
no owner to ever release it.  A class that owns locks (or threads)
must pin ``spawn`` or ``forkserver``.
"""

import multiprocessing
import threading


def collect_child():
    pass


class Collector:
    def __init__(self):
        self._ctx = multiprocessing.get_context("fork")
        self._lock = threading.Lock()
        self.rows = []
        self._proc = None

    def start(self):
        self._proc = self._ctx.Process(target=collect_child)
        self._proc.start()
