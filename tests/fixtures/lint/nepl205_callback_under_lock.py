"""Lint fixture: a registered callback invoked while holding the lock."""

import threading


class Notifier:
    def __init__(self):
        self._lock = threading.Lock()
        self._on_change = None
        self.history = []

    def set_callback(self, cb):
        self._on_change = cb

    def update(self, value):
        with self._lock:
            self.history.append(value)
            if self._on_change is not None:
                self._on_change(value)  # NEPL205: callback under state lock
