"""Seeded-bad: a signal handler that can block.

Signal handlers run *inside* whatever frame the interpreter happened
to interrupt; a ``time.sleep`` (or lock acquire, or socket recv) there
stalls the interrupted thread — and if that thread held a lock, every
other thread too.  Handlers must only set flags or write to a wakeup
fd.
"""

import signal
import time


class Watchdog:
    def __init__(self):
        self.draining = False
        signal.signal(signal.SIGTERM, self._on_term)

    def _on_term(self, signum, frame):
        self.draining = True
        self._drain()

    def _drain(self):
        time.sleep(1.0)
