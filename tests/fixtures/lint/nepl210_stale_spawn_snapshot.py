"""Seeded-bad: parent mutates state the spawned child already copied.

``start()`` spawns the worker process and *then* installs the route —
but spawn pickles ``self`` exactly once, so the child's ``self.routes``
is the empty pre-spawn snapshot and the late mutation is invisible to
``_run``.
"""

import multiprocessing


class ShardManager:
    def __init__(self):
        self.routes = {}
        self._proc = None

    def start(self):
        self._proc = multiprocessing.Process(target=self._run)
        self._proc.start()
        self.routes["shard-0"] = "127.0.0.1:7001"

    def _run(self):
        for shard, addr in self.routes.items():
            print(shard, addr)
