"""Lint fixture: a blocking socket call while holding the state lock."""

import socket
import threading


class Publisher:
    def __init__(self):
        self._lock = threading.Lock()
        self._sock = socket.create_connection(("localhost", 9999))
        self.sent = 0

    def publish(self, data):
        with self._lock:
            self._sock.sendall(data)  # NEPL204: blocking under state lock
            self.sent += 1
