"""Lint fixture: two locks acquired in opposite orders (ABBA deadlock)."""

import threading


class Transfer:
    def __init__(self):
        self._accounts = threading.Lock()
        self._journal = threading.Lock()
        self.log = []

    def forward(self):
        with self._accounts:
            with self._journal:
                self.log.append("f")

    def backward(self):
        with self._journal:
            with self._accounts:  # NEPL203: reverses forward()'s order
                self.log.append("b")
