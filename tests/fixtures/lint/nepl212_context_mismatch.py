"""Seeded-bad: module-default mp primitive under a pinned context.

The class pins ``get_context("spawn")`` for its processes but builds
the queue from the module-level ``multiprocessing.Queue`` — whose
feeder machinery follows the *platform default* start method.  On
Linux that mixes fork-backed queue internals into spawn-backed
children, which deadlocks or crashes depending on timing.
"""

import multiprocessing


def run_child(queue):
    queue.put("ready")


class Pipeline:
    def __init__(self):
        self._ctx = multiprocessing.get_context("spawn")
        self.queue = multiprocessing.Queue()
        self._proc = None

    def start(self):
        self._proc = self._ctx.Process(target=run_child, args=(self.queue,))
        self._proc.start()
