"""Lint fixture: an attribute locked on one path, bare on another."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.values = []

    def add(self, v):
        with self._lock:
            self.values.append(v)

    def reset(self):
        self.values.clear()  # NEPL202: locked in add(), bare here
