"""Lint fixture: a worker thread mutates shared state without the lock."""

import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def start(self):
        self._thread.start()

    def _loop(self):
        while True:
            self.items.append(1)  # NEPL201: thread entry, no lock held

    def add(self, item):
        with self._lock:
            self.items.append(item)
