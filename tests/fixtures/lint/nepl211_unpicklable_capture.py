"""Seeded-bad: a threading lock shipped across the spawn boundary.

``threading.Lock`` objects cannot be pickled — passing one in the
``Process`` args either crashes at spawn or (under fork) silently
duplicates the lock state, so parent and child no longer exclude each
other.
"""

import multiprocessing
import threading


def run_child(lock):
    with lock:
        pass


class Exporter:
    def __init__(self):
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._proc = None

    def start(self):
        self._proc = self._ctx.Process(target=run_child, args=(self._lock,))
        self._proc.start()
