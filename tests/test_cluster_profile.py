"""Continuous profiling plane against real worker processes.

The acceptance scenario ISSUE 10 names: a busy-loop hot operator
(:class:`~repro.workloads.operators.SpinProcessor`) is fed faster than
it can compute, but with a total byte volume far below the inbound
high watermark — the queue (and with it the put-to-drain latency the
p99 SLO watches) grows behind the busy loop while **no backpressure
gate ever closes**.  The breach has exactly one honest explanation,
and the doctor must find it in the ``neptune_profile_*`` series:
**compute_bound**, naming the operator, the worker burning the CPU,
and the hottest frame.  The same diagnosis must reproduce post-mortem
from the SIGKILLed worker's periodic flight dump
(``repro doctor/profile --from-dump``).

Everything here imports :mod:`procharness`, so it stays behind
``@pytest.mark.cluster`` — tier-1 never spawns processes.
"""

import json
import time

import pytest
from procharness import live_cluster, wait_until

from repro.cluster import build_plan
from repro.core import NeptuneConfig, StreamProcessingGraph
from repro.core.graph import descriptor_factory

pytestmark = pytest.mark.cluster

SPIN_TOTAL = 120
#: CPU burned per packet: the spin stage services ~33 packets/s.
SPIN_SECONDS = 0.03
LATENCY_BUDGET = 0.01
#: Source pacing: 100 packets/s against a 33/s service rate.  The
#: queue behind the busy loop grows to seconds of put-to-drain latency
#: (deterministic breach), yet the whole run is ~8 KB of payload —
#: nowhere near the 4 MiB inbound watermark, so no gate ever closes
#: and backpressure can take no part in the diagnosis.
SOURCE_INTERVAL = 0.01


def spin_graph():
    graph = StreamProcessingGraph(
        "cluster-profile",
        config=NeptuneConfig(buffer_capacity=512, buffer_max_delay=0.003),
    )
    graph.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:CountingSource",
            total=SPIN_TOTAL,
            payload_size=64,
            interval=SOURCE_INTERVAL,
        ),
    )
    graph.add_processor(
        "spin",
        descriptor_factory(
            "repro.workloads.operators:SpinProcessor", spin_seconds=SPIN_SECONDS
        ),
    )
    graph.add_processor(
        "sink", descriptor_factory("repro.workloads.operators:CollectingSink")
    )
    graph.link("source", "spin")
    graph.link("spin", "sink")
    return graph


def _breaches_absorbed(collector):
    return [
        e
        for e in collector.observer.timeline.snapshot("health", "slo_breach")
        if str(e.attrs.get("operator", "")).startswith("spin")
    ]


@pytest.mark.slow
def test_compute_bound_breach_attributed_live_and_from_sigkill_dump(tmp_path):
    graph = spin_graph()
    plan = build_plan(graph, n_workers=2, pin={"source": 0, "spin": 1, "sink": 1})
    flight_dir = tmp_path / "flight"
    flight_dir.mkdir()

    with live_cluster(
        graph,
        n_workers=2,
        plan=plan,
        observe={
            "sample_every": 1,
            "slos": {"latency_budget": LATENCY_BUDGET},
            "profile": {"hz": 50.0, "window_seconds": 1.0},
            "flight_every": 0.25,
            "flight_dir": str(flight_dir),
        },
        launch_timeout=180.0,
    ) as coordinator:
        collector = coordinator.collector

        # Live sampler state over the control plane — what
        # `repro cluster status` renders per worker.
        assert wait_until(
            lambda: all(
                (h.proxy.collect_info() or {}).get("profiler", {}).get("state")
                == "sampling"
                for h in coordinator.handles
            ),
            timeout=30.0,
        ), "workers never reported a sampling profiler"

        # The breach must land before we judge the post-mortem.
        assert wait_until(
            lambda: bool(_breaches_absorbed(collector)), timeout=60.0
        ), "spin operator never breached its latency SLO"

        # Live full-profile fetch (`repro profile --cluster` path).
        hot = coordinator.handles[1].proxy.profile()
        assert hot["schema"] == "neptune-profile/1"
        assert wait_until(
            lambda: "spin"
            in (coordinator.handles[1].proxy.profile() or {}).get("operators", {}),
            timeout=30.0,
        ), f"spin never sampled; operators={sorted(hot.get('operators', {}))}"
        info = coordinator.handles[1].proxy.collect_info()["profiler"]
        assert info["cpu_mode"] in ("task-stat", "wall")
        assert info["samples"] > 0

        # Let a profile window close and a periodic flight dump persist
        # *after* the breach — that dump is the whole post-mortem.
        assert wait_until(
            lambda: coordinator.handles[1].proxy.collect_info()["profiler"][
                "window_age_seconds"
            ]
            >= 0.0,
            timeout=30.0,
        ), "no profile window ever closed"
        time.sleep(1.0)

        # Pure SIGKILL: no dump request, no goodbye.
        coordinator.kill_worker(1, dump=False)
        assert not coordinator.handles[1].alive

        # The hot worker is gone; the live merged view must already be
        # diagnosable (this is `repro doctor --cluster`).
        from repro.observe import export
        from repro.observe.doctor import diagnose

        live_report = diagnose(export.snapshot(collector.observer))

    assert live_report["gate_episodes"] == 0, "pacing failed: a gate closed"
    assert not live_report["healthy"]
    live_causes = [
        c
        for ep in live_report["breaches"]
        for c in ep["causes"]
        if c["type"] == "compute_bound"
    ]
    assert live_causes, json.dumps(live_report["breaches"], default=str)[:2000]
    top = max(live_causes, key=lambda c: c["score"])
    assert top["operator"] == "spin"
    assert top["worker"] == "1"
    assert "operators.py" in top["detail"], top["detail"]

    # ---- post-mortem: the SIGKILLed worker's periodic dump ----------------
    from repro.observe.flightrec import FLIGHT_SCHEMA, load_flight_dump, merge_flight_dumps

    paths = coordinator.flight_paths()
    assert len(paths) == 2, f"flight dumps missing: {paths}"
    dumps = [load_flight_dump(p) for p in paths]
    by_worker = {d["worker"]: d for d in dumps}
    assert by_worker[1]["schema"] == FLIGHT_SCHEMA
    assert by_worker[1]["reason"] == "periodic"  # SIGKILL: no goodbye dump
    assert by_worker[1]["profile"]["operators"], "dump carries no profile section"

    merged = merge_flight_dumps(dumps)
    assert "1" in (merged.get("profiles") or {})
    report = diagnose(merged)
    assert not report["healthy"]
    causes = [
        c
        for ep in report["breaches"]
        for c in ep["causes"]
        if c["type"] == "compute_bound"
    ]
    assert causes, "dump-based diagnosis lost the compute_bound attribution"
    top = max(causes, key=lambda c: c["score"])
    assert top["operator"] == "spin"
    assert top["worker"] == "1"

    # ---- the CLI runbook paths -------------------------------------------
    from repro.cli import main as cli_main

    assert cli_main(["doctor", "--from-dump", str(flight_dir)]) in (0, 1)
    out = tmp_path / "postmortem.speedscope.json"
    assert (
        cli_main(["profile", "--from-dump", str(flight_dir), "--dump", str(out)]) == 0
    )
    doc = json.loads(out.read_text())
    assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
    assert any(p["name"] == "spin" for p in doc["profiles"])
