"""Property: sharding a graph across worker *processes* never reorders
a key.

For random keyed pipeline shapes (stage count, per-stage parallelism,
key cardinality, worker count 2–4) the multi-process cluster must
produce the same per-key ordered output as the single-process runtime
— and both must equal the source's deterministic emission order.
Every link partitions by ``key``, so each key's packets traverse one
instance per stage and FIFO links; any interleaving of *different*
keys is legal, any reordering *within* a key is a bug.

The sink writes ``key,seq`` lines to a file (visible across the
process boundary), so the comparison is over the same artifact for
both runtimes.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from procharness import drain, live_cluster

from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.core.graph import descriptor_factory

pytestmark = pytest.mark.cluster

KEY_PARTITIONING = {"scheme": "fields", "fields": ["key"]}


def keyed_graph(sink_path, total, keys, stage_parallelism):
    graph = StreamProcessingGraph(
        "keyed-shard-property",
        config=NeptuneConfig(buffer_capacity=512, buffer_max_delay=0.002),
    )
    graph.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:KeyedSource", total=total, keys=keys
        ),
    )
    previous = "source"
    for stage, parallelism in enumerate(stage_parallelism):
        name = f"relay{stage}"
        graph.add_processor(
            name,
            descriptor_factory("repro.workloads.operators:KeyedRelayProcessor"),
            parallelism=parallelism,
        )
        graph.link(previous, name, partitioning=KEY_PARTITIONING)
        previous = name
    graph.add_processor(
        "sink",
        descriptor_factory(
            "repro.workloads.operators:FileSink",
            path=str(sink_path),
            field="key,seq",
        ),
    )
    graph.link(previous, "sink", partitioning=KEY_PARTITIONING)
    return graph


def per_key_sequences(path):
    out = {}
    for line in path.read_text().splitlines():
        key_text, seq_text = line.split(",")
        out.setdefault(int(key_text), []).append(int(seq_text))
    return out


@given(
    data=st.data(),
    total=st.integers(min_value=40, max_value=160),
    keys=st.integers(min_value=1, max_value=5),
    n_workers=st.integers(min_value=2, max_value=4),
)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_sharded_output_matches_single_process_per_key(
    tmp_path_factory, data, total, keys, n_workers
):
    stage_parallelism = data.draw(
        st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=2),
        label="stage_parallelism",
    )
    workdir = tmp_path_factory.mktemp("keyed")

    expected = {
        key: [i for i in range(total) if i % keys == key] for key in range(keys)
    }
    expected = {key: seqs for key, seqs in expected.items() if seqs}

    cluster_path = workdir / "cluster.txt"
    graph = keyed_graph(cluster_path, total, keys, stage_parallelism)
    with live_cluster(graph, n_workers=n_workers) as coordinator:
        drain(coordinator)
        assert coordinator.job.failures() == {}

    single_path = workdir / "single.txt"
    with NeptuneRuntime() as runtime:
        handle = runtime.submit(
            keyed_graph(single_path, total, keys, stage_parallelism)
        )
        assert handle.await_completion(timeout=60.0)

    cluster_out = per_key_sequences(cluster_path)
    single_out = per_key_sequences(single_path)
    assert cluster_out == single_out == expected
