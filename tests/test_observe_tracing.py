"""Causal packet tracing: note wire format, sampling, span assembly,
collector bounds, and the end-to-end tiling property — the six stage
spans of a trace partition its end-to-end latency exactly."""

import pytest

from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.observe import RuntimeObserver, STAGES, TraceCollector, Tracer
from repro.observe.report import format_breakdown, stage_stats, trace_summaries
from repro.observe.tracing import (
    NOTE_SIZE,
    SpanRecord,
    TraceNote,
    close_hop,
    decode_notes,
    encode_notes,
)
from repro.workloads import CollectingSink, CountingSource, RelayProcessor


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


class TestNoteCodec:
    def test_roundtrip(self):
        notes = [
            TraceNote(7, 2, 1.5, batch_index=3, append_ts=1.6, take_ts=1.7, send_ts=1.8),
            TraceNote(9, 0, 2.0),
        ]
        data = encode_notes(notes)
        assert len(data) == 2 * NOTE_SIZE
        out = decode_notes(data)
        assert [(n.trace_id, n.hop, n.batch_index) for n in out] == [(7, 2, 3), (9, 0, 0)]
        assert out[0].encode_ts == 1.5
        assert out[0].send_ts == 1.8

    def test_empty_block(self):
        assert encode_notes([]) == b""
        assert decode_notes(b"") == []

    def test_torn_block_rejected(self):
        data = encode_notes([TraceNote(1, 0, 0.0)])
        with pytest.raises(ValueError):
            decode_notes(data[:-1])


# ---------------------------------------------------------------------------
# Sampling
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_by_default(self):
        t = Tracer()
        assert not t.enabled
        assert t.maybe_sample() is None

    def test_samples_every_nth(self):
        t = Tracer(sample_every=3)
        hits = [t.maybe_sample() for _ in range(9)]
        sampled = [c for c in hits if c is not None]
        assert len(sampled) == 3
        assert [hits.index(c) for c in sampled] == [2, 5, 8]

    def test_trace_ids_unique(self):
        t = Tracer(sample_every=1)
        ids = [t.maybe_sample().trace_id for _ in range(10)]
        assert len(set(ids)) == 10

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=-1)


# ---------------------------------------------------------------------------
# Span assembly / collector
# ---------------------------------------------------------------------------


class TestCloseHop:
    def test_six_contiguous_stages(self):
        note = TraceNote(
            5, 1, 10.0, batch_index=0, append_ts=10.1, take_ts=10.3, send_ts=10.4
        )
        spans = close_hop(note, 10.6, 10.7, 10.9, "relay[0]")
        assert [s.stage for s in spans] == list(STAGES)
        # Contiguous tiling: each stage starts where the previous ended.
        for prev, cur in zip(spans, spans[1:]):
            assert prev.end == cur.start
        total = sum(s.duration for s in spans)
        assert total == pytest.approx(10.9 - 10.0)
        assert all(s.operator == "relay[0]" and s.hop == 1 for s in spans)

    def test_duration_clamped_non_negative(self):
        s = SpanRecord(1, 0, "wire", 2.0, 1.0, "op")
        assert s.duration == 0.0


class TestTraceCollector:
    def test_bounded_with_dropped_counter(self):
        col = TraceCollector(max_traces=2)
        for tid in range(4):
            col.add([SpanRecord(tid, 0, "execute", 0.0, 1.0, "op")])
        assert len(col) == 2
        assert col.dropped == 2
        # Existing traces still accept more hops past the cap.
        col.add([SpanRecord(0, 1, "execute", 1.0, 2.0, "op")])
        assert len(col.traces()[0]) == 2

    def test_traces_sorted_by_hop_then_stage(self):
        col = TraceCollector()
        col.add([SpanRecord(1, 1, "execute", 3.0, 4.0, "b")])
        col.add([SpanRecord(1, 0, "execute", 1.0, 2.0, "a")])
        col.add([SpanRecord(1, 0, "serialize", 0.0, 1.0, "a")])
        spans = col.traces()[1]
        assert [(s.hop, s.stage) for s in spans] == [
            (0, "serialize"),
            (0, "execute"),
            (1, "execute"),
        ]


# ---------------------------------------------------------------------------
# End-to-end: the acceptance property
# ---------------------------------------------------------------------------


def _run_relay(observer: RuntimeObserver, total: int = 3000) -> list:
    store: list = []
    cfg = NeptuneConfig(buffer_capacity=4096, buffer_max_delay=0.005)
    g = StreamProcessingGraph("trace-relay", config=cfg)
    g.add_source("src", lambda: CountingSource(total=total))
    g.add_processor("relay", RelayProcessor)
    g.add_processor("sink", lambda: CollectingSink(store))
    g.link("src", "relay").link("relay", "sink")
    with NeptuneRuntime(observer=observer) as rt:
        handle = rt.submit(g)
        assert handle.await_completion(timeout=60)
    return store


class TestEndToEndTracing:
    def test_stage_sums_tile_end_to_end_latency(self):
        obs = RuntimeObserver(sample_every=100)
        store = _run_relay(obs)
        assert len(store) == 3000
        summaries = trace_summaries(obs.collector)
        assert summaries, "sampling produced no traces"
        for s in summaries:
            # Acceptance: per-stage sums within 10% of end-to-end.
            assert s["coverage"] == pytest.approx(1.0, abs=0.10)
        # Two-hop pipeline: src->relay and relay->sink.
        assert {s["hops"] for s in summaries} == {2}

    def test_every_hop_has_all_stages(self):
        obs = RuntimeObserver(sample_every=200)
        _run_relay(obs)
        for spans in obs.collector.traces().values():
            by_hop: dict = {}
            for s in spans:
                by_hop.setdefault(s.hop, []).append(s.stage)
            for stages in by_hop.values():
                assert stages == list(STAGES)

    def test_sampling_zero_collects_nothing(self):
        obs = RuntimeObserver(sample_every=0)
        _run_relay(obs, total=500)
        assert len(obs.collector) == 0
        # Timeline still records runtime events.
        assert obs.timeline.counts().get("runtime.batch_executed", 0) > 0

    def test_report_formats(self):
        obs = RuntimeObserver(sample_every=100)
        _run_relay(obs)
        text = format_breakdown(obs.collector)
        for stage in STAGES:
            assert stage in text
        stats = stage_stats(obs.collector)
        assert set(stats) == set(STAGES)
        assert all(v["count"] > 0 for v in stats.values())
