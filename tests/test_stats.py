"""Tests for the statistics package (Tukey HSD, t-tests, descriptive)."""

import random

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats import (
    confidence_interval,
    summarize,
    t_test_ind,
    tukey_hsd,
)


class TestTukeyHSD:
    def test_clearly_different_groups_significant(self):
        rng = random.Random(0)
        a = [rng.gauss(10, 1) for _ in range(30)]
        b = [rng.gauss(20, 1) for _ in range(30)]
        res = tukey_hsd({"a": a, "b": b})
        comp = res.comparison("a", "b")
        assert comp.significant
        assert comp.p_value < 1e-4
        assert comp.mean_diff == pytest.approx(-10, abs=1)

    def test_identical_distributions_not_significant(self):
        rng = random.Random(1)
        groups = {
            name: [rng.gauss(5, 1) for _ in range(25)] for name in ("x", "y", "z")
        }
        res = tukey_hsd(groups)
        # With identical populations, significance would be a (rare)
        # false positive; check all p-values are comfortably large.
        assert all(c.p_value > 0.01 for c in res.comparisons)

    def test_familywise_three_groups(self):
        rng = random.Random(2)
        a = [rng.gauss(0, 1) for _ in range(20)]
        b = [rng.gauss(0, 1) for _ in range(20)]
        c = [rng.gauss(4, 1) for _ in range(20)]
        res = tukey_hsd({"a": a, "b": b, "c": c})
        assert not res.comparison("a", "b").significant
        assert res.comparison("a", "c").significant
        assert res.comparison("b", "c").significant
        assert res.any_significant()

    def test_against_scipy_reference(self):
        """Cross-check p-values against scipy's own tukey_hsd."""
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, 15)
        b = rng.normal(0.8, 1, 15)
        c = rng.normal(1.6, 1, 15)
        ours = tukey_hsd({"a": list(a), "b": list(b), "c": list(c)})
        ref = sps.tukey_hsd(a, b, c)
        assert ours.comparison("a", "b").p_value == pytest.approx(
            ref.pvalue[0][1], abs=1e-6
        )
        assert ours.comparison("a", "c").p_value == pytest.approx(
            ref.pvalue[0][2], abs=1e-6
        )
        assert ours.comparison("b", "c").p_value == pytest.approx(
            ref.pvalue[1][2], abs=1e-6
        )

    def test_unequal_group_sizes(self):
        rng = random.Random(4)
        res = tukey_hsd(
            {
                "small": [rng.gauss(0, 1) for _ in range(5)],
                "large": [rng.gauss(3, 1) for _ in range(50)],
            }
        )
        assert res.comparison("small", "large").significant

    def test_confidence_interval_contains_diff(self):
        rng = random.Random(5)
        a = [rng.gauss(10, 1) for _ in range(30)]
        b = [rng.gauss(12, 1) for _ in range(30)]
        comp = tukey_hsd({"a": a, "b": b}).comparison("a", "b")
        assert comp.ci_low < comp.mean_diff < comp.ci_high

    def test_validation(self):
        with pytest.raises(ValueError):
            tukey_hsd({"only": [1.0, 2.0]})
        with pytest.raises(ValueError):
            tukey_hsd({"a": [1.0], "b": [1.0, 2.0]})
        with pytest.raises(ValueError):
            tukey_hsd({"a": [1.0, 2.0], "b": [3.0, 4.0]}, alpha=2)

    def test_unknown_comparison_lookup(self):
        res = tukey_hsd({"a": [1.0, 2.0, 3.0], "b": [4.0, 5.0, 6.0]})
        with pytest.raises(KeyError):
            res.comparison("a", "nope")


class TestTTest:
    def test_one_tailed_greater(self):
        rng = random.Random(6)
        high = [rng.gauss(10, 1) for _ in range(40)]
        low = [rng.gauss(8, 1) for _ in range(40)]
        res = t_test_ind(high, low, tail="greater")
        assert res.p_value < 1e-4
        assert res.significant()
        assert res.mean_a > res.mean_b

    def test_one_tailed_wrong_direction(self):
        rng = random.Random(7)
        high = [rng.gauss(10, 1) for _ in range(40)]
        low = [rng.gauss(8, 1) for _ in range(40)]
        res = t_test_ind(low, high, tail="greater")
        assert res.p_value > 0.9

    def test_two_sided_similar_groups(self):
        rng = random.Random(8)
        a = [rng.gauss(5, 1) for _ in range(30)]
        b = [rng.gauss(5, 1) for _ in range(30)]
        res = t_test_ind(a, b)
        assert res.p_value > 0.05

    def test_matches_scipy(self):
        rng = np.random.default_rng(9)
        a = rng.normal(0, 1, 25)
        b = rng.normal(0.5, 1.5, 30)
        ours = t_test_ind(list(a), list(b), tail="two-sided")
        ref = sps.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(float(ref.statistic))
        assert ours.p_value == pytest.approx(float(ref.pvalue))

    def test_validation(self):
        with pytest.raises(ValueError):
            t_test_ind([1.0], [2.0, 3.0])
        with pytest.raises(ValueError):
            t_test_ind([1.0, 2.0], [3.0, 4.0], tail="sideways")


class TestDescriptive:
    def test_summary_fields(self):
        s = summarize(range(1, 101))
        assert s.n == 100
        assert s.mean == pytest.approx(50.5)
        assert s.minimum == 1 and s.maximum == 100
        assert s.p50 == pytest.approx(50.5)
        assert s.p99 == pytest.approx(99.01)

    def test_summary_single_value(self):
        s = summarize([7.0])
        assert s.std == 0.0 and s.mean == 7.0

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summary_str(self):
        assert "mean=" in str(summarize([1.0, 2.0]))

    def test_confidence_interval_covers_mean(self):
        rng = random.Random(10)
        data = [rng.gauss(100, 5) for _ in range(50)]
        lo, hi = confidence_interval(data)
        assert lo < 100 < hi or abs(sum(data) / len(data) - 100) > 1

    def test_confidence_interval_validation(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.5)


class TestOneWayAnova:
    def test_matches_scipy_f_oneway(self):
        from repro.stats import one_way_anova

        rng = np.random.default_rng(11)
        a = rng.normal(0, 1, 20)
        b = rng.normal(0.5, 1, 25)
        c = rng.normal(1.0, 1, 15)
        ours = one_way_anova({"a": list(a), "b": list(b), "c": list(c)})
        ref = sps.f_oneway(a, b, c)
        assert ours.f_statistic == pytest.approx(float(ref.statistic))
        assert ours.p_value == pytest.approx(float(ref.pvalue))
        assert ours.df_between == 2
        assert ours.df_within == 57

    def test_identical_groups_not_significant(self):
        from repro.stats import one_way_anova

        rng = random.Random(12)
        groups = {n: [rng.gauss(3, 1) for _ in range(20)] for n in "xyz"}
        res = one_way_anova(groups)
        assert res.p_value > 0.001  # rarely a false positive at worst

    def test_effect_size_bounds(self):
        from repro.stats import one_way_anova

        res = one_way_anova({"a": [1.0, 1.1, 0.9], "b": [5.0, 5.1, 4.9]})
        assert 0.9 < res.eta_squared <= 1.0
        assert res.significant()

    def test_validation(self):
        from repro.stats import one_way_anova

        with pytest.raises(ValueError):
            one_way_anova({"only": [1.0, 2.0]})
        with pytest.raises(ValueError):
            one_way_anova({"a": [1.0], "b": [1.0, 2.0]})

    def test_zero_within_variance(self):
        from repro.stats import one_way_anova

        res = one_way_anova({"a": [1.0, 1.0], "b": [2.0, 2.0]})
        assert res.p_value == 0.0
        assert res.f_statistic == float("inf")
