"""Tests for metrics: latency recorder, registry, throughput windows."""

import math
import threading

import pytest

from repro.core.metrics import (
    LatencyRecorder,
    MetricsRegistry,
    OperatorMetrics,
    ThroughputWindow,
)


class TestLatencyRecorder:
    def test_percentiles_exact_small_sample(self):
        rec = LatencyRecorder()
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            rec.record(v)
        assert rec.percentile(0) == 1.0
        assert rec.percentile(50) == 3.0
        assert rec.percentile(100) == 5.0
        assert rec.percentile(75) == 4.0

    def test_empty_is_nan(self):
        rec = LatencyRecorder()
        assert math.isnan(rec.percentile(99))
        assert math.isnan(rec.mean())

    def test_percentile_range_check(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_reservoir_bounds_memory(self):
        rec = LatencyRecorder(max_samples=100)
        for i in range(10_000):
            rec.record(float(i))
        assert rec.count == 10_000
        assert len(rec._samples) == 100

    def test_reservoir_stays_representative(self):
        rec = LatencyRecorder(max_samples=500, seed=1)
        for i in range(20_000):
            rec.record(i / 20_000)
        # Median of uniform[0,1) should be ~0.5.
        assert rec.percentile(50) == pytest.approx(0.5, abs=0.08)

    def test_mean(self):
        rec = LatencyRecorder()
        for v in (1.0, 2.0, 3.0):
            rec.record(v)
        assert rec.mean() == pytest.approx(2.0)

    def test_thread_safety(self):
        rec = LatencyRecorder(max_samples=64)
        errors = []

        def hammer():
            try:
                for i in range(2000):
                    rec.record(i * 1e-6)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not errors
        assert rec.count == 8000


class TestThroughputWindow:
    def test_rates(self):
        w = ThroughputWindow(packets=1000, bytes=125_000, seconds=2.0)
        assert w.packets_per_second == 500.0
        assert w.megabits_per_second == pytest.approx(0.5)

    def test_zero_window(self):
        w = ThroughputWindow()
        assert w.packets_per_second == 0.0
        assert w.megabits_per_second == 0.0


class TestMetricsRegistry:
    def test_same_instance_returned(self):
        reg = MetricsRegistry()
        a = reg.for_operator("op", 0)
        b = reg.for_operator("op", 0)
        assert a is b
        assert reg.for_operator("op", 1) is not a

    def test_snapshot_aggregates_instances(self):
        reg = MetricsRegistry()
        for idx in range(3):
            m = reg.for_operator("relay", idx)
            m.packets_in = 10
            m.packets_out = 8
            m.bytes_in = 100
        snap = reg.snapshot()
        assert snap["relay"]["instances"] == 3
        assert snap["relay"]["packets_in"] == 30
        assert snap["relay"]["packets_out"] == 24
        assert snap["relay"]["bytes_in"] == 300

    def test_snapshot_empty(self):
        assert MetricsRegistry().snapshot() == {}

    def test_operator_metrics_defaults(self):
        m = OperatorMetrics(operator="x", instance=2)
        assert m.packets_in == 0
        assert m.emit_block_seconds == 0.0
        assert m.latency.count == 0
