"""Tests for entropy estimation and the selective compression policy."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import (
    CompressionDecision,
    CompressionPolicy,
    sampled_entropy,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_empty_is_zero(self):
        assert shannon_entropy(b"") == 0.0

    def test_constant_is_zero(self):
        assert shannon_entropy(b"\x07" * 1000) == 0.0

    def test_two_symbols_equal_is_one_bit(self):
        assert shannon_entropy(b"ab" * 500) == pytest.approx(1.0)

    def test_uniform_random_near_eight(self):
        rng = random.Random(0)
        data = bytes(rng.getrandbits(8) for _ in range(100_000))
        assert shannon_entropy(data) > 7.95

    def test_all_256_symbols_uniform_is_eight(self):
        assert shannon_entropy(bytes(range(256)) * 10) == pytest.approx(8.0)

    def test_monotone_in_alphabet_size(self):
        e1 = shannon_entropy(b"ab" * 100)
        e2 = shannon_entropy(b"abcd" * 50)
        e3 = shannon_entropy(b"abcdefgh" * 25)
        assert e1 < e2 < e3


class TestSampledEntropy:
    def test_small_input_exact(self):
        data = b"abcd" * 100
        assert sampled_entropy(data) == shannon_entropy(data)

    def test_large_input_close_to_exact(self):
        rng = random.Random(1)
        data = bytes(rng.getrandbits(8) for _ in range(200_000))
        assert abs(sampled_entropy(data) - shannon_entropy(data)) < 0.3

    def test_deterministic(self):
        rng = random.Random(2)
        data = bytes(rng.getrandbits(8) for _ in range(50_000))
        assert sampled_entropy(data) == sampled_entropy(data)


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=2048))
def test_entropy_bounds_property(data):
    e = shannon_entropy(data)
    assert 0.0 <= e <= 8.0


class TestCompressionPolicy:
    def test_low_entropy_payload_is_compressed(self):
        policy = CompressionPolicy(entropy_threshold=6.0)
        payload = b"sensor=21.5;valve=open;" * 100
        out = policy.encode(payload)
        assert out[0] == 0x01
        assert len(out) < len(payload)
        assert CompressionPolicy.decode(out) == payload

    def test_high_entropy_payload_is_raw(self):
        rng = random.Random(3)
        payload = bytes(rng.getrandbits(8) for _ in range(4096))
        policy = CompressionPolicy(entropy_threshold=6.0)
        out = policy.encode(payload)
        assert out[0] == 0x00
        assert CompressionPolicy.decode(out) == payload
        assert policy.stats.decisions[CompressionDecision.ENTROPY_TOO_HIGH] == 1

    def test_disabled_policy_never_compresses(self):
        policy = CompressionPolicy(enabled=False)
        payload = b"\x00" * 1000
        out = policy.encode(payload)
        assert out[0] == 0x00
        assert policy.stats.decisions[CompressionDecision.DISABLED] == 1

    def test_tiny_payload_skipped(self):
        policy = CompressionPolicy(min_size=64)
        out = policy.encode(b"\x00" * 10)
        assert out[0] == 0x00
        assert policy.stats.decisions[CompressionDecision.TOO_SMALL] == 1

    def test_incompressible_falls_back_to_raw(self):
        # Low entropy threshold satisfied but LZ4 can't shrink it:
        # short non-repeating payload with a tiny alphabet still repeats,
        # so use threshold 8.0 and random-ish data instead.
        rng = random.Random(4)
        payload = bytes(rng.getrandbits(8) for _ in range(200))
        policy = CompressionPolicy(entropy_threshold=8.0, min_size=0)
        out = policy.encode(payload)
        assert CompressionPolicy.decode(out) == payload

    def test_stats_ratio(self):
        policy = CompressionPolicy()
        payload = b"\x00" * 10_000
        policy.encode(payload)
        assert policy.stats.ratio < 0.1
        assert policy.stats.payloads_compressed == 1

    def test_decode_rejects_empty(self):
        with pytest.raises(ValueError):
            CompressionPolicy.decode(b"")

    def test_decode_rejects_unknown_flag(self):
        with pytest.raises(ValueError):
            CompressionPolicy.decode(b"\x7fdata")

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CompressionPolicy(entropy_threshold=9.0)
        with pytest.raises(ValueError):
            CompressionPolicy(min_size=-1)

    def test_threshold_zero_never_compresses(self):
        policy = CompressionPolicy(entropy_threshold=0.0)
        out = policy.encode(b"\x00" * 1000)
        assert out[0] == 0x00


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=4096), st.floats(min_value=0.0, max_value=8.0))
def test_policy_roundtrip_property(payload, threshold):
    policy = CompressionPolicy(entropy_threshold=threshold, min_size=0)
    assert CompressionPolicy.decode(policy.encode(payload)) == payload
