"""Chaos subsystem tests: deterministic fault plans, the injector's
wire mutations, simulator faults, and the seeded end-to-end scenarios
(same seed → byte-identical fault trace; faults → exactly-once
delivery after recovery)."""

import pytest

from repro.chaos import (
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultRates,
    ScriptedFault,
    SimFault,
    schedule_sim_faults,
)
from repro.chaos.scenario import (
    run_pipeline_scenario,
    run_wire_scenario,
    wire_payload,
)
from repro.net.framing import SequenceTracker
from repro.net.transport import RetryPolicy
from repro.sim.engine import Interrupt, Simulator


# ---------------------------------------------------------------------------
# FaultPlan: seeded decisions
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_scripted_fault_fires_at_exact_index_only(self):
        plan = FaultPlan(seed=1).at("tcp.send", 5, FaultAction.KILL_CONNECTION)
        for i in range(10):
            d = plan.decide("tcp.send", i)
            if i == 5:
                assert d is not None and d.action == FaultAction.KILL_CONNECTION
            else:
                assert d is None

    def test_scripted_overrides_rates(self):
        plan = FaultPlan(seed=1).with_rates("s", FaultRates(drop=1.0))
        plan.at("s", 3, FaultAction.DUPLICATE)
        assert plan.decide("s", 3).action == FaultAction.DUPLICATE
        assert plan.decide("s", 4).action == FaultAction.DROP

    def test_rate_one_always_fires_rate_zero_never(self):
        always = FaultPlan(seed=9).with_rates("s", FaultRates(drop=1.0))
        never = FaultPlan(seed=9).with_rates("s", FaultRates())
        for i in range(50):
            assert always.decide("s", i).action == FaultAction.DROP
            assert never.decide("s", i) is None

    def test_same_seed_same_decisions(self):
        rates = FaultRates(drop=0.1, duplicate=0.1, bitflip=0.1)
        a = FaultPlan(seed=42).with_rates("s", rates)
        b = FaultPlan(seed=42).with_rates("s", rates)
        decisions_a = [a.decide("s", i) for i in range(200)]
        decisions_b = [b.decide("s", i) for i in range(200)]
        assert decisions_a == decisions_b
        assert any(d is not None for d in decisions_a)

    def test_different_seed_different_decisions(self):
        rates = FaultRates(drop=0.2)
        a = FaultPlan(seed=1).with_rates("s", rates)
        b = FaultPlan(seed=2).with_rates("s", rates)
        assert [a.decide("s", i) for i in range(200)] != [
            b.decide("s", i) for i in range(200)
        ]

    def test_sites_are_independent(self):
        plan = FaultPlan(seed=3).with_rates("a", FaultRates(drop=1.0))
        assert plan.decide("b", 0) is None

    def test_delay_param_bounded(self):
        plan = FaultPlan(seed=0).with_rates(
            "s", FaultRates(delay=1.0, delay_seconds=0.01)
        )
        for i in range(100):
            d = plan.decide("s", i)
            assert d.action == FaultAction.DELAY
            assert 0.005 <= d.param <= 0.015

    def test_truncate_param_strictly_partial(self):
        plan = FaultPlan(seed=0).with_rates("s", FaultRates(truncate=1.0))
        for i in range(100):
            d = plan.decide("s", i)
            assert 0.1 <= d.param <= 0.9

    def test_rates_validation(self):
        with pytest.raises(ValueError):
            FaultRates(drop=1.5)
        with pytest.raises(ValueError):
            FaultRates(delay_seconds=-1.0)

    def test_scripted_validation(self):
        with pytest.raises(ValueError):
            ScriptedFault("s", 0, "explode")
        with pytest.raises(ValueError):
            ScriptedFault("s", -1, FaultAction.DROP)

    def test_describe_mentions_seed_and_sites(self):
        plan = FaultPlan(seed=7).with_rates("tcp.send", FaultRates(drop=0.1))
        text = plan.describe()
        assert "seed=7" in text and "tcp.send" in text


# ---------------------------------------------------------------------------
# FaultInjector: interception counters, trace, wire mutations
# ---------------------------------------------------------------------------


def _scripted_injector(*faults, sleep=lambda s: None):
    plan = FaultPlan(seed=0)
    for site, index, action, *param in faults:
        plan.at(site, index, action, param[0] if param else 0.0)
    return FaultInjector(plan, sleep=sleep)


class TestFaultInjector:
    def test_per_site_counters_independent(self):
        inj = FaultInjector(FaultPlan(seed=0))
        for _ in range(3):
            inj.intercept("a")
        inj.intercept("b")
        assert inj.interceptions("a") == 3
        assert inj.interceptions("b") == 1

    def test_trace_records_only_fired_faults(self):
        inj = _scripted_injector(("s", 1, FaultAction.DROP))
        for _ in range(4):
            inj.intercept("s")
        assert len(inj.trace) == 1
        rec = inj.trace.records[0]
        assert (rec.site, rec.index, rec.action) == ("s", 1, FaultAction.DROP)

    def test_trace_digest_stable(self):
        a = _scripted_injector(("s", 0, FaultAction.DROP))
        b = _scripted_injector(("s", 0, FaultAction.DROP))
        a.intercept("s")
        b.intercept("s")
        assert a.trace.to_bytes() == b.trace.to_bytes()
        assert a.trace.digest() == b.trace.digest()

    def test_apply_to_wire_drop(self):
        inj = _scripted_injector(("s", 0, FaultAction.DROP))
        chunks, kill, decision = inj.apply_to_wire("s", b"payload")
        assert chunks == [] and not kill and decision.action == FaultAction.DROP

    def test_apply_to_wire_duplicate(self):
        inj = _scripted_injector(("s", 0, FaultAction.DUPLICATE))
        chunks, kill, _ = inj.apply_to_wire("s", b"payload")
        assert chunks == [b"payload", b"payload"] and not kill

    def test_apply_to_wire_truncate_kills(self):
        inj = _scripted_injector(("s", 0, FaultAction.TRUNCATE, 0.5))
        chunks, kill, _ = inj.apply_to_wire("s", b"0123456789")
        assert kill
        assert len(chunks) == 1 and 1 <= len(chunks[0]) < 10
        assert b"0123456789".startswith(chunks[0])

    def test_apply_to_wire_bitflip_flips_exactly_one_bit(self):
        inj = _scripted_injector(("s", 0, FaultAction.BITFLIP, 0.37))
        wire = bytes(range(32))
        chunks, kill, _ = inj.apply_to_wire("s", wire)
        assert not kill and len(chunks) == 1 and len(chunks[0]) == len(wire)
        diff = [a ^ b for a, b in zip(wire, chunks[0])]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_apply_to_wire_kill_connection_sends_then_kills(self):
        inj = _scripted_injector(("s", 0, FaultAction.KILL_CONNECTION))
        chunks, kill, _ = inj.apply_to_wire("s", b"payload")
        assert chunks == [b"payload"] and kill

    def test_apply_to_wire_clean_passthrough(self):
        inj = FaultInjector(FaultPlan(seed=0))
        chunks, kill, decision = inj.apply_to_wire("s", b"payload")
        assert chunks == [b"payload"] and not kill and decision is None

    def test_maybe_delay_sleeps_with_param(self):
        slept = []
        inj = _scripted_injector(
            ("ch", 0, FaultAction.DELAY, 0.123), sleep=slept.append
        )
        inj.maybe_delay("ch")
        assert slept == [0.123]

    def test_should_kill_connection(self):
        inj = _scripted_injector(("r", 1, FaultAction.KILL_CONNECTION))
        assert not inj.should_kill_connection("r")
        assert inj.should_kill_connection("r")

    def test_should_kill_node(self):
        inj = _scripted_injector(("n", 0, FaultAction.KILL_NODE))
        assert inj.should_kill_node("n")
        assert not inj.should_kill_node("n")


# ---------------------------------------------------------------------------
# SequenceTracker: cross-connection dedup verdicts
# ---------------------------------------------------------------------------


class TestSequenceTracker:
    def test_in_order_delivery(self):
        t = SequenceTracker()
        assert [t.check(1, s) for s in range(3)] == [SequenceTracker.DELIVER] * 3
        assert t.delivered == 3 and t.expected(1) == 3

    def test_replay_is_duplicate(self):
        t = SequenceTracker()
        t.check(1, 0)
        assert t.check(1, 0) == SequenceTracker.DUPLICATE
        assert t.duplicates == 1
        assert t.expected(1) == 1  # expectation did not advance

    def test_skip_is_gap(self):
        t = SequenceTracker()
        assert t.check(1, 2) == SequenceTracker.GAP
        assert t.gaps == 1 and t.expected(1) == 0

    def test_links_tracked_independently(self):
        t = SequenceTracker()
        t.check(1, 0)
        assert t.check(2, 0) == SequenceTracker.DELIVER


# ---------------------------------------------------------------------------
# RetryPolicy: backoff shape
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_exponential_and_capped(self):
        import random

        p = RetryPolicy(backoff_base=0.1, backoff_max=0.5, backoff_jitter=0.0)
        rng = random.Random(0)
        delays = [p.backoff(n, rng) for n in range(6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]

    def test_jitter_bounds_and_determinism(self):
        import random

        p = RetryPolicy(backoff_base=0.1, backoff_max=10.0, backoff_jitter=0.25)
        a = [p.backoff(n, random.Random(7)) for n in range(8)]
        b = [p.backoff(n, random.Random(7)) for n in range(8)]
        assert a == b  # same seed, same jitter sequence
        for n, d in enumerate(a):
            raw = min(10.0, 0.1 * 2**n)
            assert raw * 0.75 <= d <= raw * 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=1.0, backoff_max=0.5)


# ---------------------------------------------------------------------------
# Simulator faults: node kill + link partition on the virtual clock
# ---------------------------------------------------------------------------


class TestSimFaults:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimFault(1.0, FaultAction.DROP, "n")  # not a simulator action
        with pytest.raises(ValueError):
            SimFault(-1.0, FaultAction.KILL_NODE, "n")

    def test_kill_node_interrupts_at_virtual_time(self):
        sim = Simulator()
        log = []

        def worker():
            try:
                while True:
                    yield sim.timeout(1.0)
                    log.append(("tick", sim.now))
            except Interrupt as exc:
                log.append(("killed", sim.now, exc.cause))

        proc = sim.process(worker(), name="node-a")
        schedule_sim_faults(
            sim,
            [SimFault(2.5, FaultAction.KILL_NODE, "node-a")],
            processes={"node-a": proc},
        )
        sim.run(until=10.0)
        assert ("tick", 1.0) in log and ("tick", 2.0) in log
        assert log[-1] == ("killed", 2.5, "chaos:kill")
        assert not any(t == "tick" and at > 2.5 for t, at, *_ in log)

    def test_partition_and_heal_toggle_link(self):
        sim = Simulator()
        states = []
        schedule_sim_faults(
            sim,
            [
                SimFault(1.0, FaultAction.PARTITION, "uplink"),
                SimFault(3.0, FaultAction.HEAL, "uplink"),
            ],
            links={"uplink": lambda up: states.append((sim.now, up))},
        )
        sim.run(until=5.0)
        assert states == [(1.0, True), (3.0, False)]

    def test_missing_target_raises_immediately(self):
        sim = Simulator()
        with pytest.raises(KeyError):
            schedule_sim_faults(
                sim, [SimFault(1.0, FaultAction.KILL_NODE, "ghost")]
            )

    def test_faults_recorded_in_trace(self):
        sim = Simulator()
        inj = FaultInjector(FaultPlan(seed=0))
        schedule_sim_faults(
            sim,
            [SimFault(1.0, FaultAction.PARTITION, "l")],
            links={"l": lambda up: None},
            injector=inj,
        )
        assert [r.site for r in inj.trace.records] == ["sim.link"]


# ---------------------------------------------------------------------------
# End-to-end scenarios: determinism regression + exactly-once recovery
# ---------------------------------------------------------------------------


class TestWirePayload:
    def test_content_checkable_and_distinct(self):
        a = wire_payload(1, 0, 64)
        assert a == wire_payload(1, 0, 64)  # deterministic
        assert len(a) == 64
        assert a != wire_payload(1, 1, 64)
        assert a != wire_payload(2, 0, 64)


@pytest.mark.chaos
class TestWireScenario:
    def test_faulty_wire_recovers_exactly_once(self):
        result = run_wire_scenario(seed=7, frames=60)
        assert result.exactly_once, result.summary()
        assert result.delivered == result.frames_sent == 60
        assert result.reconnects > 0  # the scenario actually hurt
        assert result.trace_lines  # and the faults were traced

    def test_same_seed_byte_identical_trace(self):
        """The determinism regression: two runs with the same seed must
        produce byte-identical fault traces and the same delivery audit,
        despite real sockets, real threads, and real reconnect timing."""
        a = run_wire_scenario(seed=11, frames=50)
        b = run_wire_scenario(seed=11, frames=50)
        assert a.trace_lines == b.trace_lines
        assert a.trace_digest == b.trace_digest
        assert a.exactly_once and b.exactly_once
        assert (a.delivered, a.duplicated, a.lost) == (
            b.delivered,
            b.duplicated,
            b.lost,
        )

    def test_different_seed_different_trace(self):
        a = run_wire_scenario(seed=1, frames=50)
        b = run_wire_scenario(seed=2, frames=50)
        assert a.trace_lines != b.trace_lines
        assert a.exactly_once and b.exactly_once  # recovery is seed-proof


@pytest.mark.chaos
class TestPipelineScenario:
    def test_mid_stream_socket_kill_recovers_exactly_once(self):
        """E2E acceptance: kill the inter-worker sockets mid-stream on a
        two-resource pipeline; the job must still deliver every packet
        exactly once and in order."""
        result = run_pipeline_scenario(seed=3, total=800, kill_frames=(3, 9))
        assert result.exactly_once, result.summary()
        assert result.reconnects > 0
        assert result.drained and not result.failures

    def test_scripted_kills_trace_deterministically(self):
        a = run_pipeline_scenario(seed=5, total=400, kill_frames=(2, 6))
        b = run_pipeline_scenario(seed=5, total=400, kill_frames=(2, 6))
        assert a.exactly_once and b.exactly_once
        assert a.trace_lines == b.trace_lines
        assert a.trace_digest == b.trace_digest


# ---------------------------------------------------------------------------
# S3: injected faults are observable on the event timeline
# ---------------------------------------------------------------------------


class TestChaosTimeline:
    def test_node_kill_event_in_exported_timeline(self):
        from repro.observe import RuntimeObserver
        from repro.observe.export import snapshot

        obs = RuntimeObserver()
        plan = FaultPlan(seed=0).at("node.relay", 0, FaultAction.KILL_NODE)
        injector = FaultInjector(plan, observer=obs)
        assert injector.should_kill_node("node.relay")

        events = snapshot(obs)["timeline"]
        kills = [
            e for e in events
            if e["category"] == "chaos" and e["name"] == "node_killed"
        ]
        assert kills and kills[0]["attrs"]["site"] == "node.relay"
        # The plan decision itself is also on the timeline.
        assert any(
            e["category"] == "chaos" and e["name"] == "fault_injected"
            for e in events
        )

    def test_sim_node_kill_recorded_at_fire_time(self):
        from repro.observe import RuntimeObserver

        obs = RuntimeObserver()
        sim = Simulator()

        def worker():
            try:
                while True:
                    yield sim.timeout(1.0)
            except Interrupt:
                pass

        proc = sim.process(worker(), name="node-a")
        schedule_sim_faults(
            sim,
            [
                SimFault(2.5, FaultAction.KILL_NODE, "node-a"),
                SimFault(4.0, FaultAction.PARTITION, "uplink"),
                SimFault(6.0, FaultAction.HEAL, "uplink"),
            ],
            processes={"node-a": proc},
            links={"uplink": lambda up: None},
            observer=obs,
        )
        # Nothing is on the timeline until the virtual clock reaches
        # the fault: events record at fire time, not schedule time.
        assert obs.timeline.counts() == {}
        sim.run(until=10.0)
        counts = obs.timeline.counts()
        assert counts["chaos.node_killed"] == 1
        assert counts["chaos.link_partitioned"] == 1
        assert counts["chaos.link_healed"] == 1
        killed = obs.timeline.snapshot(category="chaos", name="node_killed")
        assert killed[0].attrs == {"target": "node-a", "sim_time": 2.5}

    def test_wire_scenario_faults_on_timeline(self):
        from repro.observe import RuntimeObserver

        obs = RuntimeObserver()
        result = run_wire_scenario(seed=0, frames=40, observer=obs)
        assert result.exactly_once, result.summary()
        fired = obs.timeline.counts().get("chaos.fault_injected", 0)
        assert fired == len(result.trace_lines)
