"""Tests for the capability-weighted deployment planner (§VI future work)."""

import collections

import pytest

from repro.core import StreamProcessingGraph
from repro.core.distributed import capability_weighted_plan
from repro.util.errors import GraphValidationError
from repro.workloads import CollectingSink, CountingSource, RelayProcessor


def wide_graph(parallelism=8):
    g = StreamProcessingGraph("wide")
    g.add_source("src", lambda: CountingSource(total=1), parallelism=parallelism)
    g.add_processor("relay", RelayProcessor, parallelism=parallelism)
    g.add_processor("sink", CollectingSink, parallelism=parallelism)
    g.link("src", "relay").link("relay", "sink")
    return g


class TestCapabilityWeightedPlan:
    def test_proportional_assignment(self):
        g = wide_graph(parallelism=8)  # 24 instances
        plan = capability_weighted_plan(g, capabilities=[2.0, 1.0, 1.0])
        counts = collections.Counter(plan.assignment.values())
        assert counts[0] == 12  # 2/4 of 24
        assert counts[1] == 6
        assert counts[2] == 6

    def test_uniform_capabilities_match_even_split(self):
        g = wide_graph(parallelism=4)  # 12 instances
        plan = capability_weighted_plan(g, capabilities=[1.0, 1.0, 1.0])
        counts = collections.Counter(plan.assignment.values())
        assert set(counts.values()) == {4}

    def test_every_instance_assigned_in_range(self):
        g = wide_graph(parallelism=5)
        plan = capability_weighted_plan(g, capabilities=[3.0, 1.0])
        assert len(plan.assignment) == g.total_instances()
        assert all(0 <= w < 2 for w in plan.assignment.values())

    def test_operator_instances_spread_not_clustered(self):
        """An operator's instances should land on several workers, not
        all on the strongest one."""
        g = wide_graph(parallelism=6)
        plan = capability_weighted_plan(g, capabilities=[2.0, 1.0, 1.0])
        src_workers = {plan.worker_of("src", i) for i in range(6)}
        assert len(src_workers) >= 2

    def test_largest_remainder_totals(self):
        g = wide_graph(parallelism=3)  # 9 instances
        plan = capability_weighted_plan(g, capabilities=[1.0, 1.0, 1.0, 1.0])
        counts = collections.Counter(plan.assignment.values())
        assert sum(counts.values()) == 9
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_validation(self):
        g = wide_graph(1)
        with pytest.raises(GraphValidationError):
            capability_weighted_plan(g, capabilities=[])
        with pytest.raises(GraphValidationError):
            capability_weighted_plan(g, capabilities=[1.0, 0.0])

    def test_runs_end_to_end(self):
        """A weighted plan must actually deploy and drain correctly."""
        from repro.core import NeptuneConfig
        from repro.core.distributed import DeploymentPlan, DistributedWorker

        store = []
        g = StreamProcessingGraph(
            "weighted", config=NeptuneConfig(buffer_capacity=1024, buffer_max_delay=0.005)
        )
        g.add_source("src", lambda: CountingSource(total=200))
        g.add_processor("relay", RelayProcessor)
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "relay").link("relay", "sink")
        plan = capability_weighted_plan(g, capabilities=[2.0, 1.0])

        workers = [DistributedWorker(w, g, plan) for w in range(2)]
        endpoints = {w.worker_id: w.address for w in workers}
        for w in workers:
            w.connect(endpoints)
        for w in workers:
            w.start()
        import time

        deadline = time.monotonic() + 60
        while len(store) < 200 and time.monotonic() < deadline:
            for w in workers:
                w.flush_all()
            time.sleep(0.01)
        for w in workers:
            w.stop()
        assert store == list(range(200))
