"""Real-process test harness for the ``repro.cluster`` suite.

Process tests fail differently from in-process tests: a wedged worker
hangs the whole pytest run, a crashed worker leaves its story in a log
file nobody reads, and an early assertion failure can orphan child
processes that then hold ports and poison later tests.  Everything
here exists to close those gaps:

- :func:`live_cluster` — context manager around
  :class:`~repro.cluster.ClusterCoordinator` with launch timeout,
  per-worker log capture, and *guaranteed* teardown (terminate runs on
  every exit path, including assertion failures and KeyboardInterrupt).
  On launch failure the captured worker logs are attached to the
  raised error, so CI shows the child's traceback, not just
  "connect timed out".
- :func:`reserve_port` / :func:`reserve_ports` — ephemeral-port
  allocation (re-exported from :mod:`repro.cluster.ports`), the fix
  for the hardcoded-port TIME_WAIT flake this suite used to have.
- :func:`wait_until` — condition polling (re-exported from
  :mod:`waiters`) for "sink progressed past N" style gates.

Keep every test that imports this module behind ``@pytest.mark.cluster``:
tier-1 (``pytest -x -q``) must never spawn processes.
"""

from __future__ import annotations

import contextlib
import tempfile
from pathlib import Path
from typing import Iterator, Optional

from waiters import wait_until  # noqa: F401  (re-export)

from repro.cluster import ClusterCoordinator
from repro.cluster.ports import reserve_port, reserve_ports  # noqa: F401

#: Generous spawn+connect budget: a 1-core CI runner importing the
#: package in N fresh interpreters is slow, a hung worker is hung —
#: either way the test must fail loudly instead of wedging the run.
LAUNCH_TIMEOUT = 120.0

#: Global drain budget for await_completion/stop inside tests.
DRAIN_TIMEOUT = 120.0


def worker_logs(coordinator: ClusterCoordinator) -> str:
    """Concatenate every worker's captured stdout/stderr for a failure
    report (empty string when the cluster ran without a log dir)."""
    chunks = []
    for handle in coordinator.handles:
        if not handle.log_path:
            continue
        try:
            text = Path(handle.log_path).read_text(encoding="utf-8")
        except OSError:
            continue
        if text.strip():
            chunks.append(f"--- worker {handle.worker_id} ({handle.log_path})\n{text}")
    return "\n".join(chunks)


@contextlib.contextmanager
def live_cluster(
    graph,
    n_workers: int = 2,
    *,
    fabric: str = "tcp",
    plan=None,
    launch_timeout: float = LAUNCH_TIMEOUT,
    log_dir: Optional[str] = None,
    observe=None,
    slos=None,
    collect_interval: float = 0.25,
    policy=None,
) -> Iterator[ClusterCoordinator]:
    """Launch a real-process cluster; terminate it no matter what.

    Yields the launched :class:`ClusterCoordinator` (``.job`` is ready).
    Worker stdout/stderr goes to per-worker files under ``log_dir``
    (a fresh temp dir by default) and is attached to the launch error
    when the cluster fails to come up.  ``observe``/``slos``/
    ``collect_interval``/``policy`` pass straight through to the
    coordinator (cluster observability + elasticity plane).
    """
    if log_dir is None:
        log_dir = tempfile.mkdtemp(prefix="neptune-test-logs-")
    coordinator = ClusterCoordinator(
        graph,
        n_workers=n_workers,
        fabric=fabric,
        plan=plan,
        log_dir=log_dir,
        observe=observe,
        slos=slos,
        collect_interval=collect_interval,
        policy=policy,
    )
    try:
        try:
            coordinator.launch(connect_timeout=launch_timeout)
        except Exception as exc:
            logs = worker_logs(coordinator)
            if logs:
                raise RuntimeError(f"cluster failed to launch: {exc}\n{logs}") from exc
            raise
        yield coordinator
    finally:
        coordinator.terminate()


def drain(coordinator: ClusterCoordinator, timeout: float = DRAIN_TIMEOUT) -> None:
    """await_completion and fail with worker logs when it doesn't quiesce."""
    if not coordinator.await_completion(timeout=timeout):
        raise AssertionError(
            "cluster did not quiesce within "
            f"{timeout}s\n{worker_logs(coordinator)}"
        )
