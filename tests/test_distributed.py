"""Tests for the distributed (multi-resource, TCP) deployment."""

import time

import pytest
from procharness import reserve_ports

from repro.core import NeptuneConfig, StreamProcessingGraph
from repro.core.control import RemoteDistributedJob
from repro.core.distributed import (
    DeploymentPlan,
    DistributedJob,
    DistributedWorker,
    round_robin_plan,
)
from repro.util.errors import GraphValidationError
from repro.workloads import CollectingSink, CountingSource, RelayProcessor


def relay_graph(total=500, **cfg):
    defaults = dict(buffer_capacity=2048, buffer_max_delay=0.005)
    defaults.update(cfg)
    store = []
    g = StreamProcessingGraph("dist-relay", config=NeptuneConfig(**defaults))
    g.add_source("sender", lambda: CountingSource(total=total))
    g.add_processor("relay", RelayProcessor)
    g.add_processor("receiver", lambda: CollectingSink(store))
    g.link("sender", "relay").link("relay", "receiver")
    return g, store


class TestPlan:
    def test_round_robin_assignment(self):
        g, _ = relay_graph()
        plan = round_robin_plan(g, 2)
        assert plan.n_workers == 2
        workers = {plan.worker_of(op, 0) for op in ("sender", "relay", "receiver")}
        assert workers == {0, 1}

    def test_parallel_instances_spread(self):
        g = StreamProcessingGraph("p")
        g.add_source("src", lambda: CountingSource(total=1), parallelism=4)
        g.add_processor("sink", CollectingSink)
        g.link("src", "sink")
        plan = round_robin_plan(g, 2)
        on0 = plan.instances_on(0)
        on1 = plan.instances_on(1)
        assert len(on0) + len(on1) == 5
        src_workers = [plan.worker_of("src", i) for i in range(4)]
        assert src_workers == [0, 1, 0, 1]

    def test_invalid_worker_count(self):
        g, _ = relay_graph()
        with pytest.raises(GraphValidationError):
            round_robin_plan(g, 0)

    def test_worker_id_range_checked(self):
        g, _ = relay_graph()
        plan = round_robin_plan(g, 2)
        with pytest.raises(GraphValidationError):
            DistributedWorker(5, g, plan)


class TestDistributedRelay:
    def test_relay_across_two_workers_exactly_once_in_order(self):
        """The paper's Fig. 1 deployment: relay on a separate resource,
        frames crossing real TCP sockets."""
        g, store = relay_graph(total=1500)
        job = DistributedJob(g, n_workers=2)
        job.start()
        try:
            assert job.await_completion(timeout=90)
        finally:
            if job.failures():
                pytest.fail(f"failures: {job.failures()}")
        assert store == list(range(1500))

    def test_three_workers(self):
        g, store = relay_graph(total=400)
        job = DistributedJob(g, n_workers=3)
        job.start()
        assert job.await_completion(timeout=60)
        assert store == list(range(400))

    def test_metrics_merged_across_workers(self):
        g, store = relay_graph(total=300)
        job = DistributedJob(g, n_workers=2)
        job.start()
        assert job.await_completion(timeout=60)
        m = job.metrics()
        assert m["sender"]["packets_out"] == 300
        assert m["receiver"]["packets_in"] == 300

    def test_stop_drains_endless_source(self):
        g, store = relay_graph(total=None)
        job = DistributedJob(g, n_workers=2)
        job.start()
        deadline = time.monotonic() + 15
        while not store and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.stop(timeout=60)
        assert store == list(range(len(store)))
        assert len(store) > 0

    def test_parallel_stage_across_workers(self):
        store = []
        g = StreamProcessingGraph(
            "dist-par", config=NeptuneConfig(buffer_capacity=1024, buffer_max_delay=0.005)
        )
        g.add_source("src", lambda: CountingSource(total=600))
        g.add_processor("sink", lambda: CollectingSink(store), parallelism=3)
        g.link("src", "sink", partitioning="round-robin")
        job = DistributedJob(g, n_workers=2)
        job.start()
        assert job.await_completion(timeout=90)
        assert sorted(store) == list(range(600))

    def test_workers_on_preallocated_ports(self):
        """Pre-agreed data-plane ports (the cluster coordinator's mode):
        every worker binds exactly the port it was assigned, reserved
        through the shared ephemeral-port helper instead of hardcoded
        constants that collide with TIME_WAIT residue."""
        g, store = relay_graph(total=200)
        plan = round_robin_plan(g, 2)
        ports = reserve_ports(2)
        workers = [
            DistributedWorker(w, g, plan, listen_port=ports[w]) for w in range(2)
        ]
        assert [w.address[1] for w in workers] == ports
        endpoints = {w.worker_id: w.address for w in workers}
        for w in workers:
            w.connect(endpoints)
        for w in workers:
            w.start()
        # DistributedWorker speaks the same drain protocol as the
        # control-plane proxies, so the remote-job driver works as-is.
        job = RemoteDistributedJob(workers)
        assert job.await_completion(timeout=60)
        assert store == list(range(200))

    def test_compressed_distributed_link(self):
        store = []
        g = StreamProcessingGraph(
            "dist-comp",
            config=NeptuneConfig(
                buffer_capacity=4096,
                buffer_max_delay=0.005,
                compression_enabled=True,
                compression_entropy_threshold=8.0,
            ),
        )
        g.add_source("src", lambda: CountingSource(total=300, payload_size=200))
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "sink")
        job = DistributedJob(g, n_workers=2)
        job.start()
        assert job.await_completion(timeout=60)
        assert store == list(range(300))


class TestDistributedFailures:
    def test_processor_failure_surfaces_in_job(self):
        from repro.core.operators import StreamProcessor

        class Exploder(StreamProcessor):
            def process(self, packet, ctx):
                raise RuntimeError("distributed kaboom")

            def output_schema(self, stream):
                raise KeyError(stream)

        g = StreamProcessingGraph(
            "dist-boom",
            config=NeptuneConfig(buffer_capacity=1024, buffer_max_delay=0.005),
        )
        g.add_source("src", lambda: CountingSource(total=100))
        g.add_processor("bad", Exploder)
        g.link("src", "bad")
        job = DistributedJob(g, n_workers=2)
        job.start()
        deadline = time.monotonic() + 15
        while not job.failures() and time.monotonic() < deadline:
            time.sleep(0.01)
        quiesced = job.stop(timeout=10)
        assert any("bad" in key for key in job.failures())
        assert not quiesced or job.failures()  # drain reports the fault
