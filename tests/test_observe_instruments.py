"""Observe subsystem: instruments, registry, timeline, exporters, and
the S1 metrics fixes (percentile validation / batch queries) the
bridge depends on."""

import json
import math
import re

import pytest

from repro.core.metrics import LatencyRecorder, MetricsRegistry
from repro.observe import EventTimeline, RuntimeObserver, TelemetryRegistry
from repro.observe.instruments import DEFAULT_BUCKETS, RegistryFull
from repro.observe.export import snapshot, to_json, to_prometheus


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_and_value(self):
        reg = TelemetryRegistry()
        c = reg.counter("neptune_test_total", None, "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        c = TelemetryRegistry().counter("neptune_test_total", None, "help")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_total_never_backwards(self):
        c = TelemetryRegistry().counter("neptune_test_total", None, "help")
        c.set_total(10)
        c.set_total(4)  # stale mirror: ignored
        assert c.value == 10
        c.set_total(12)
        assert c.value == 12


class TestGauge:
    def test_set(self):
        g = TelemetryRegistry().gauge("neptune_g", None, "help")
        g.set(7.0)
        assert g.value == 7.0

    def test_pull_function(self):
        g = TelemetryRegistry().gauge("neptune_g", None, "help", fn=lambda: 42.0)
        assert g.value == 42.0

    def test_pull_exception_reads_zero(self):
        def boom() -> float:
            raise RuntimeError("source gone")

        g = TelemetryRegistry().gauge("neptune_g", None, "help", fn=boom)
        assert g.value == 0.0


class TestHistogram:
    def test_observe_and_cumulative_buckets(self):
        h = TelemetryRegistry().histogram("neptune_h", None, "help")
        for v in (0.00005, 0.003, 0.003, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(100.00605)
        buckets = h.cumulative_buckets()
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == 4  # +Inf sees everything
        # Cumulative counts never decrease.
        counts = [n for _, n in buckets]
        assert counts == sorted(counts)
        le_01 = dict(buckets)[0.01]
        assert le_01 == 3  # the 100.0 outlier only lands in +Inf

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestTelemetryRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = TelemetryRegistry()
        a = reg.counter("neptune_x_total", {"op": "a"}, "help")
        b = reg.counter("neptune_x_total", {"op": "a"}, "help")
        assert a is b
        assert len(reg) == 1

    def test_label_sets_are_distinct_series(self):
        reg = TelemetryRegistry()
        reg.counter("neptune_x_total", {"op": "a"}, "h").inc()
        reg.counter("neptune_x_total", {"op": "b"}, "h").inc(2)
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = TelemetryRegistry()
        reg.counter("neptune_x", None, "h")
        with pytest.raises(ValueError):
            reg.gauge("neptune_x", None, "h")

    def test_bounded_memory(self):
        reg = TelemetryRegistry(max_instruments=3)
        for i in range(3):
            reg.counter("neptune_x_total", {"i": str(i)}, "h")
        with pytest.raises(RegistryFull):
            reg.counter("neptune_x_total", {"i": "overflow"}, "h")
        # Existing instruments still resolve past the cap.
        reg.counter("neptune_x_total", {"i": "0"}, "h").inc()

    def test_collect_sorted(self):
        reg = TelemetryRegistry()
        reg.counter("neptune_b_total", None, "h")
        reg.counter("neptune_a_total", None, "h")
        names = [s.name for s in reg.collect()]
        assert names == sorted(names)


# ---------------------------------------------------------------------------
# Prometheus / JSON exposition
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$"
)


class TestPrometheusExport:
    def _registry(self) -> TelemetryRegistry:
        reg = TelemetryRegistry()
        reg.counter("neptune_packets_total", {"operator": "relay"}, "Packets").inc(5)
        reg.gauge("neptune_depth", None, "Depth").set(1.5)
        h = reg.histogram("neptune_latency_seconds", None, "Latency")
        h.observe(0.002)
        return reg

    def test_every_line_well_formed(self):
        text = to_prometheus(self._registry())
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert _SAMPLE_RE.match(line), line

    def test_help_and_type_once_per_name(self):
        reg = TelemetryRegistry()
        reg.counter("neptune_x_total", {"op": "a"}, "h").inc()
        reg.counter("neptune_x_total", {"op": "b"}, "h").inc()
        text = to_prometheus(reg)
        assert text.count("# TYPE neptune_x_total counter") == 1
        assert text.count("# HELP neptune_x_total") == 1

    def test_histogram_exposition(self):
        text = to_prometheus(self._registry())
        assert 'neptune_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "neptune_latency_seconds_sum" in text
        assert "neptune_latency_seconds_count 1" in text

    def test_label_escaping(self):
        reg = TelemetryRegistry()
        reg.counter("neptune_x_total", {"p": 'a"b\\c\nd'}, "h").inc()
        text = to_prometheus(reg)
        assert r'p="a\"b\\c\nd"' in text


class TestJsonExport:
    def test_snapshot_roundtrips_through_json(self):
        obs = RuntimeObserver(sample_every=1)
        obs.registry.counter("neptune_x_total", None, "h").inc(3)
        obs.event("chaos", "node_killed", site="sim.node")
        data = json.loads(to_json(obs))
        assert data["instruments"][0]["name"] == "neptune_x_total"
        assert data["timeline"][0]["category"] == "chaos"
        assert data["timeline"][0]["name"] == "node_killed"

    def test_snapshot_shape(self):
        obs = RuntimeObserver()
        snap = snapshot(obs)
        assert set(snap) >= {"instruments", "timeline", "traces"}


# ---------------------------------------------------------------------------
# Event timeline
# ---------------------------------------------------------------------------


class TestEventTimeline:
    def test_ring_eviction(self):
        tl = EventTimeline(capacity=4)
        for i in range(10):
            tl.record("runtime", "tick", i=i)
        assert len(tl) == 4
        assert tl.recorded == 10
        assert tl.evicted == 6
        assert [e.attrs["i"] for e in tl.snapshot()] == [6, 7, 8, 9]

    def test_snapshot_filters(self):
        tl = EventTimeline()
        tl.record("chaos", "node_killed", target="w0")
        tl.record("transport", "reconnect", endpoint="x")
        tl.record("chaos", "fault_injected", site="s")
        assert len(tl.snapshot(category="chaos")) == 2
        assert len(tl.snapshot(category="chaos", name="node_killed")) == 1

    def test_counts(self):
        tl = EventTimeline()
        tl.record("buffer", "timer_flush")
        tl.record("buffer", "timer_flush")
        assert tl.counts() == {"buffer.timer_flush": 2}

    def test_timestamps_monotone(self):
        tl = EventTimeline()
        tl.record("a", "x")
        tl.record("a", "y")
        ts = [e.ts for e in tl.snapshot()]
        assert ts == sorted(ts)


# ---------------------------------------------------------------------------
# S1: LatencyRecorder fixes
# ---------------------------------------------------------------------------


class TestLatencyRecorderPercentiles:
    def test_invalid_p_raises_even_with_no_samples(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.percentile(101)
        with pytest.raises(ValueError):
            rec.percentile(-0.1)

    def test_percentiles_batch_matches_individual(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record(i / 1000.0)
        ps = [0.0, 25.0, 50.0, 95.0, 100.0]
        assert rec.percentiles(ps) == [rec.percentile(p) for p in ps]

    def test_percentiles_empty_returns_nans(self):
        out = LatencyRecorder().percentiles([50.0, 99.0])
        assert len(out) == 2 and all(math.isnan(v) for v in out)

    def test_percentiles_validates_all_before_answering(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        with pytest.raises(ValueError):
            rec.percentiles([50.0, 200.0])

    def test_registry_operators_accessor(self):
        reg = MetricsRegistry()
        m = reg.for_operator("relay", 0)
        m.packets_in = 7
        ops = reg.operators()
        assert [(o.operator, o.instance) for o in ops] == [("relay", 0)]
        assert ops[0].packets_in == 7
