"""Tests for operator-state checkpointing (§VI future-work feature)."""

import time

import pytest

from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.core.checkpoint import Checkpoint
from repro.core.operators import StreamProcessor
from repro.util.errors import JobStateError
from repro.workloads import CountingSource, RELAY_SCHEMA


class CountingState(StreamProcessor):
    """A stateful processor that counts packets per instance."""

    def __init__(self):
        super().__init__()
        self.count = 0
        self.restored_from = None

    def process(self, packet, ctx):
        self.count += 1

    def snapshot_state(self):
        return {"count": self.count}

    def restore_state(self, state):
        self.count = state["count"]
        self.restored_from = state["count"]

    def output_schema(self, stream):
        raise KeyError(stream)


def counting_graph(total, sinks):
    g = StreamProcessingGraph(
        "ckpt", config=NeptuneConfig(buffer_capacity=1024, buffer_max_delay=0.003)
    )
    g.add_source("src", lambda: CountingSource(total=total))
    g.add_processor("count", lambda: sinks.setdefault("op", CountingState()))
    g.link("src", "count")
    return g


class TestCheckpointCapture:
    def test_checkpoint_after_completion(self):
        sinks = {}
        g = counting_graph(500, sinks)
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            assert h.await_completion(timeout=60)
            ckpt = h.checkpoint()
        assert ckpt.job_name == "ckpt"
        assert ckpt.state_for("count", 0) == {"count": 500}
        assert ckpt.instances == 1

    def test_checkpoint_while_running_is_consistent(self):
        sinks = {}
        g = counting_graph(None, sinks)  # endless
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            deadline = time.monotonic() + 10
            while (not sinks or sinks["op"].count < 50) and time.monotonic() < deadline:
                time.sleep(0.005)
            ckpt = h.checkpoint()
            h.stop(timeout=30)
        state = ckpt.state_for("count", 0)
        assert state is not None and state["count"] >= 50

    def test_operators_without_hooks_are_skipped(self):
        from repro.workloads import CollectingSink

        g = StreamProcessingGraph(
            "plain", config=NeptuneConfig(buffer_capacity=1024)
        )
        g.add_source("src", lambda: CountingSource(total=10))
        g.add_processor("sink", CollectingSink)
        g.link("src", "sink")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            h.await_completion(timeout=30)
            ckpt = h.checkpoint()
        assert ckpt.instances == 0


class TestQuiescedConsistency:
    def test_quiesced_checkpoint_has_no_inflight_gap(self):
        """With quiesce=True, the source's emitted count and the
        processor's processed count agree exactly — the consistent cut
        that makes recovery exactly-once."""
        sinks = {}
        src_holder = {}

        def make_source():
            src = CountingSource(total=None)
            src_holder["src"] = src
            return src

        g = StreamProcessingGraph(
            "quiesce", config=NeptuneConfig(buffer_capacity=1024, buffer_max_delay=0.003)
        )
        g.add_source("src", make_source)
        g.add_processor("count", lambda: sinks.setdefault("op", CountingState()))
        g.link("src", "count")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            deadline = time.monotonic() + 10
            while (not sinks or sinks["op"].count < 200) and time.monotonic() < deadline:
                time.sleep(0.005)
            ckpt = h.checkpoint(quiesce=True)
            emitted_at_ckpt = src_holder["src"].emitted
            state = ckpt.state_for("count", 0)
            # The source resumes afterwards (paused only during the cut).
            resumed_deadline = time.monotonic() + 10
            while (
                src_holder["src"].emitted <= emitted_at_ckpt
                and time.monotonic() < resumed_deadline
            ):
                time.sleep(0.005)
            resumed = src_holder["src"].emitted > emitted_at_ckpt
            h.stop(timeout=30)
        assert state["count"] == emitted_at_ckpt  # consistent cut
        assert resumed  # sources unpaused after the checkpoint

    def test_quiesce_timeout_raises(self):
        """A processor that never drains makes the quiesce time out."""
        import pytest as _pytest

        class Stuck(CountingState):
            def process(self, packet, ctx):
                time.sleep(0.2)
                super().process(packet, ctx)

        sinks = {}
        g = StreamProcessingGraph(
            "stuck", config=NeptuneConfig(buffer_capacity=1024, buffer_max_delay=0.003)
        )
        g.add_source("src", lambda: CountingSource(total=None))
        g.add_processor("count", lambda: sinks.setdefault("op", Stuck()))
        g.link("src", "count")
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            time.sleep(0.2)
            with _pytest.raises(JobStateError, match="quiesce"):
                h.checkpoint(quiesce=True, timeout=0.3)
            h.stop(timeout=60)


class TestRestore:
    def test_restore_rehydrates_state(self):
        sinks = {}
        g = counting_graph(300, sinks)
        with NeptuneRuntime() as rt:
            h = rt.submit(g)
            assert h.await_completion(timeout=60)
            ckpt = h.checkpoint()

        # "Crash" and recover: a fresh job resumes from the snapshot.
        sinks2 = {}
        g2 = counting_graph(100, sinks2)
        with NeptuneRuntime() as rt:
            h2 = rt.submit(g2, restore_from=ckpt)
            assert h2.await_completion(timeout=60)
        op = sinks2["op"]
        assert op.restored_from == 300
        assert op.count == 400  # 300 restored + 100 reprocessed

    def test_restore_ignores_missing_entries(self):
        sinks = {}
        g = counting_graph(50, sinks)
        empty = Checkpoint(job_name="other", taken_at=0.0)
        with NeptuneRuntime() as rt:
            h = rt.submit(g, restore_from=empty)
            assert h.await_completion(timeout=30)
        assert sinks["op"].count == 50
        assert sinks["op"].restored_from is None


class TestPersistence:
    def test_save_and_load(self, tmp_path):
        ckpt = Checkpoint(job_name="j", taken_at=123.0)
        ckpt.states[("op", 0)] = {"count": 7, "window": [1.0, 2.0]}
        path = str(tmp_path / "job.ckpt")
        ckpt.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.job_name == "j"
        assert loaded.state_for("op", 0) == {"count": 7, "window": [1.0, 2.0]}

    def test_load_rejects_non_checkpoint(self, tmp_path):
        import pickle

        path = str(tmp_path / "junk.pkl")
        with open(path, "wb") as fh:
            pickle.dump({"not": "a checkpoint"}, fh)
        with pytest.raises(JobStateError):
            Checkpoint.load(path)
