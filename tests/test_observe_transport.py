"""S4: trace context survives TcpTransport reconnect/replay.

The replay window stores full wire bytes, so a trace block rides a
retransmitted frame byte-identically; the listener's exactly-once
dedup suppresses the duplicate delivery, so a replayed frame never
produces a second set of spans downstream."""

import threading

import pytest

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultAction, FaultPlan
from repro.chaos.scenario import run_pipeline_scenario
from repro.net.framing import Frame
from repro.net.transport import RetryPolicy, TcpListener, TcpTransport
from repro.observe import RuntimeObserver
from repro.observe.report import trace_summaries
from repro.observe.tracing import TraceNote, decode_notes, encode_notes


def _trace_block(tid: int) -> bytes:
    return encode_notes(
        [TraceNote(tid, 0, 1.0, batch_index=0, append_ts=1.1, take_ts=1.2, send_ts=1.3)]
    )


class TestTraceSurvivesReplay:
    def test_trace_block_replayed_byte_identical_and_deduped(self):
        # Truncate the 3rd frame mid-wire and sever: the listener must
        # discard the partial frame, so it can never be acked and the
        # recovery replay is *guaranteed* to retransmit it.  (A plain
        # kill-after-write leaves a race where every frame gets acked
        # before the sender snapshots its replay window.)
        plan = FaultPlan(seed=3).at("tcp.send", 2, FaultAction.TRUNCATE, param=0.5)
        injector = FaultInjector(plan)
        received: list[Frame] = []
        lock = threading.Lock()

        def sink(frame: Frame) -> None:
            with lock:
                received.append(frame)

        listener = TcpListener(
            "127.0.0.1", 0, sink, ack=True, resume=True, injector=injector
        )
        transport = TcpTransport(
            listener.host,
            listener.port,
            retry=RetryPolicy(max_retries=8, backoff_base=0.01, backoff_max=0.2),
            injector=injector,
            site="tcp.send",
        )
        frames = 8
        try:
            for i in range(frames):
                transport.send(1, f"body-{i}".encode(), 1, trace=_trace_block(100 + i))
            assert transport.ensure_delivered(timeout=15.0, stall=0.25)
            assert transport.reconnects >= 1
            assert transport.replayed_frames >= 1
        finally:
            transport.close()
            listener.close()

        with lock:
            seqs = [f.seq for f in received]
            # Exactly-once: the replayed frames were not delivered twice.
            assert sorted(seqs) == list(range(frames))
            for frame in received:
                notes = decode_notes(frame.trace)
                assert len(notes) == 1
                # The trace block matches what was sent for this seq,
                # byte-identical even on frames that crossed the kill.
                assert frame.trace == _trace_block(100 + frame.seq)
                assert notes[0].send_ts == 1.3

    def test_pipeline_spans_not_duplicated_across_kills(self):
        obs = RuntimeObserver(sample_every=20)
        result = run_pipeline_scenario(
            seed=1, total=400, kill_frames=(1, 3), observer=obs
        )
        assert result.exactly_once, result.summary()
        assert result.reconnects >= 1

        summaries = trace_summaries(obs.collector)
        assert summaries, "sampling produced no traces"
        for trace_id, spans in obs.collector.traces().items():
            keys = [(s.hop, s.stage) for s in spans]
            # Exactly-once dedup: a replayed frame never re-closes a
            # (hop, stage) span of a trace.
            assert len(keys) == len(set(keys)), (trace_id, keys)
        for s in summaries:
            assert s["coverage"] == pytest.approx(1.0, abs=0.10)

        # The scripted kills and the recoveries are on the timeline.
        counts = obs.timeline.counts()
        assert counts.get("chaos.fault_injected", 0) >= 1
        assert counts.get("transport.reconnect", 0) >= 1
