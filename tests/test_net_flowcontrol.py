"""Tests for the watermark channel — the backpressure building block."""

import threading
import time

import pytest

from repro.net import ChannelClosed, WatermarkChannel
from repro.util import ManualClock


class TestBasics:
    def test_put_get_fifo(self):
        ch = WatermarkChannel(high_watermark=1000)
        for i in range(5):
            ch.put(10, i)
        assert [ch.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_drain(self):
        ch = WatermarkChannel(high_watermark=1000)
        for i in range(5):
            ch.put(10, i)
        assert ch.drain(max_items=2) == [0, 1]
        assert ch.drain() == [2, 3, 4]
        assert ch.buffered_bytes == 0

    def test_byte_accounting(self):
        ch = WatermarkChannel(high_watermark=100, low_watermark=20)
        ch.put(30, "a")
        ch.put(30, "b")
        assert ch.buffered_bytes == 60
        ch.get()
        assert ch.buffered_bytes == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            WatermarkChannel(high_watermark=0)
        with pytest.raises(ValueError):
            WatermarkChannel(high_watermark=10, low_watermark=10)
        with pytest.raises(ValueError):
            WatermarkChannel(high_watermark=10, low_watermark=-1)
        ch = WatermarkChannel(high_watermark=10)
        with pytest.raises(ValueError):
            ch.put(-1, "x")

    def test_default_low_watermark_is_half(self):
        assert WatermarkChannel(high_watermark=100).low_watermark == 50


class TestWatermarkGate:
    def test_gate_trips_at_high_watermark(self):
        ch = WatermarkChannel(high_watermark=100, low_watermark=40)
        ch.put(50, "a")
        assert not ch.gated
        ch.put(50, "b")  # reaches 100
        assert ch.gated

    def test_gate_holds_until_low_watermark(self):
        """Hysteresis: the gate must NOT reopen between high and low."""
        ch = WatermarkChannel(high_watermark=100, low_watermark=30)
        for _ in range(4):
            ch.put(25, "x")  # 100 bytes → gated
        assert ch.gated
        ch.get()  # 75
        assert ch.gated
        ch.get()  # 50
        assert ch.gated
        ch.get()  # 25 <= 30 → reopen
        assert not ch.gated

    def test_blocked_writer_resumes_after_drain(self):
        ch = WatermarkChannel(high_watermark=20, low_watermark=5)
        ch.put(20, "big")
        assert ch.gated
        done = []

        def writer():
            ch.put(10, "second")
            done.append(True)

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)
        assert not done  # writer is blocked by the gate
        assert ch.get() == "big"
        t.join(2.0)
        assert done
        assert ch.get() == "second"
        assert ch.writer_blocks == 1

    def test_put_timeout(self):
        ch = WatermarkChannel(high_watermark=10, low_watermark=1)
        ch.put(10, "fill")
        assert not ch.put(5, "late", timeout=0.05)

    def test_gate_trips_counted(self):
        ch = WatermarkChannel(high_watermark=10, low_watermark=1)
        for _ in range(3):
            ch.put(10, "x")  # allowed: gate only gates *subsequent* puts
            ch.drain()
        assert ch.gate_trips == 3

    def test_gate_callback(self):
        events = []
        ch = WatermarkChannel(high_watermark=10, low_watermark=1)
        ch.on_gate_change(events.append)
        ch.put(10, "x")
        assert events == [True]
        ch.drain()
        assert events == [True, False]


class TestClose:
    def test_put_on_closed_raises(self):
        ch = WatermarkChannel(high_watermark=10)
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.put(1, "x")

    def test_get_drains_then_raises(self):
        ch = WatermarkChannel(high_watermark=10)
        ch.put(1, "x")
        ch.close()
        assert ch.get() == "x"
        with pytest.raises(ChannelClosed):
            ch.get()

    def test_close_unblocks_writer(self):
        ch = WatermarkChannel(high_watermark=10, low_watermark=1)
        ch.put(10, "fill")
        errors = []

        def writer():
            try:
                ch.put(1, "blocked")
            except ChannelClosed as exc:
                errors.append(exc)

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)
        ch.close()
        t.join(2.0)
        assert len(errors) == 1

    def test_get_timeout(self):
        ch = WatermarkChannel(high_watermark=10)
        with pytest.raises(TimeoutError):
            ch.get(timeout=0.05)


class TestConcurrency:
    def test_many_producers_one_consumer_no_loss(self):
        ch = WatermarkChannel(high_watermark=500, low_watermark=100)
        n_producers, per_producer = 4, 200
        received = []

        def producer(pid):
            for i in range(per_producer):
                ch.put(8, (pid, i))

        def consumer():
            for _ in range(n_producers * per_producer):
                received.append(ch.get())

        threads = [threading.Thread(target=producer, args=(p,)) for p in range(n_producers)]
        ct = threading.Thread(target=consumer)
        ct.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        ct.join(10.0)
        assert len(received) == n_producers * per_producer
        # Per-producer FIFO order is preserved.
        for p in range(n_producers):
            seq = [i for pid, i in received if pid == p]
            assert seq == list(range(per_producer))


class TestInjectedClock:
    """Regression: gate-episode durations read ``time.monotonic()``
    directly, so sim-time tests (SimClock/ManualClock) saw wall-clock
    noise in ``gated_seconds`` — the doctor's backpressure attribution
    input.  Durations must follow the injected clock exactly."""

    def test_gate_durations_follow_manual_clock(self):
        clk = ManualClock(start=100.0)
        ch = WatermarkChannel(high_watermark=10, low_watermark=1, clock=clk)
        ch.put(10, "a")  # gate closes at t=100
        assert ch.gated
        clk.advance(2.5)
        ch.get()  # drains to 0 <= low: gate opens at t=102.5
        assert not ch.gated
        assert ch.last_gate_seconds == pytest.approx(2.5)
        assert ch.gated_seconds == pytest.approx(2.5)
        ch.put(10, "b")
        clk.advance(1.0)
        ch.get()
        assert ch.last_gate_seconds == pytest.approx(1.0)
        assert ch.gated_seconds == pytest.approx(3.5)

    def test_no_wall_clock_reads_in_gate_path(self):
        """Source guard: flowcontrol must never import time for gate
        accounting, and observe/ must stay free of time.time()."""
        import pathlib

        import repro.net.flowcontrol as fc
        import repro.observe as obs

        src = pathlib.Path(fc.__file__).read_text()
        assert "time.monotonic()" not in src
        assert "time.time()" not in src
        for path in pathlib.Path(obs.__path__[0]).glob("*.py"):
            assert "time.time()" not in path.read_text(), path.name
