"""Lock-order sanitizer tests: recording, witnesses, cross-validation."""

import threading

import pytest

from repro.analysis.sanitizer import (
    MAX_EDGES,
    CrossValidation,
    InstrumentedLock,
    LockOrderSanitizer,
    Witness,
    calibrate,
    calibrate_recording,
    cross_validate,
    witness_report,
)


class TestInstallation:
    def test_install_uninstall_restores_factories(self):
        real_lock, real_rlock = threading.Lock, threading.RLock
        san = LockOrderSanitizer()
        san.install()
        try:
            assert threading.Lock is not real_lock
            assert isinstance(threading.Lock(), InstrumentedLock)
            assert isinstance(threading.RLock(), InstrumentedLock)
        finally:
            san.uninstall()
        assert threading.Lock is real_lock
        assert threading.RLock is real_rlock

    def test_install_is_idempotent(self):
        real_lock = threading.Lock
        san = LockOrderSanitizer()
        with san:
            san.install()  # second install must not capture the patch
        assert threading.Lock is real_lock
        san.uninstall()  # and a second uninstall is a no-op
        assert threading.Lock is real_lock

    def test_context_manager_form(self):
        real_lock = threading.Lock
        with LockOrderSanitizer() as san:
            lock = threading.Lock()
            with lock:
                pass
        assert threading.Lock is real_lock
        assert san.witness().acquires == 1


class TestRecording:
    def test_nested_acquire_records_directed_edge(self):
        with LockOrderSanitizer() as san:

            class Pair:
                def __init__(self):
                    self._outer = threading.Lock()
                    self._inner = threading.Lock()

            pair = Pair()
            with pair._outer:
                with pair._inner:
                    pass
        witness = san.witness()
        assert witness.edges == {("Pair._outer", "Pair._inner"): 1}
        assert witness.acquires == 2
        assert witness.dropped_edges == 0

    def test_fast_path_records_no_edges(self):
        # Disjoint (non-nested) acquisitions never touch the edge map.
        with LockOrderSanitizer() as san:
            a, b = threading.Lock(), threading.Lock()
            for _ in range(10):
                with a:
                    pass
                with b:
                    pass
        witness = san.witness()
        assert witness.edges == {}
        assert witness.acquires == 20

    def test_rlock_reentry_is_not_an_edge(self):
        with LockOrderSanitizer() as san:

            class Box:
                def __init__(self):
                    self._lock = threading.RLock()

            box = Box()
            with box._lock:
                with box._lock:  # re-entry: no Box._lock -> Box._lock edge
                    pass
        assert san.witness().edges == {}

    def test_edge_counts_accumulate(self):
        with LockOrderSanitizer() as san:
            a, b = threading.Lock(), threading.Lock()
            for _ in range(3):
                with a:
                    with b:
                        pass
        (count,) = san.witness().edges.values()
        assert count == 3

    def test_condition_over_instrumented_lock(self):
        # Condition probes _is_owned()/acquire on the wrapped lock; the
        # wrapper must delegate so wait/notify keep working.
        with LockOrderSanitizer() as san:

            class Gate:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._cond = threading.Condition(self._lock)

            gate = Gate()
            with gate._cond:
                gate._cond.notify_all()
        assert san.witness().acquires >= 1

    def test_anonymous_lock_gets_file_line_label(self):
        with LockOrderSanitizer() as san:
            lock = threading.Lock()  # not a self.attr assignment
            other = threading.Lock()
            with lock:
                with other:
                    pass
        ((held, acquired),) = san.witness().edges
        assert ":" in held and ":" in acquired  # file:line fallback


class TestWitness:
    def test_json_round_trip(self, tmp_path):
        witness = Witness(
            edges={("A.x", "A.y"): 3, ("B.z", "A.x"): 1},
            acquires=42,
            duration=1.5,
            dropped_edges=2,
        )
        path = tmp_path / "w.json"
        witness.dump(str(path))
        loaded = Witness.load(str(path))
        assert loaded == witness

    def test_max_edges_bound_reports_drops(self):
        san = LockOrderSanitizer()
        san._edges = {(f"L{i}", f"L{i+1}"): 1 for i in range(MAX_EDGES)}
        san._held.stack.append("held")
        san._held.epoch = san._epoch  # hand-seeded stack: pin the window
        san._note_acquire("one-too-many")
        san._note_release("one-too-many")
        witness = san.witness()
        assert len(witness.edges) == MAX_EDGES
        assert witness.dropped_edges == 1


class TestDutyCycling:
    def test_duty_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError):
            LockOrderSanitizer(duty=1.5)
        with pytest.raises(ValueError):
            LockOrderSanitizer(duty=-0.1)

    def test_dormant_sanitizer_wraps_but_records_nothing(self):
        # duty=0 is the guardrail bench's baseline arm: locks are still
        # instrumented (same indirection cost) but no acquire is noted.
        san = LockOrderSanitizer(duty=0.0)
        san.install()
        try:
            assert san._toggle_thread is None
            outer, inner = threading.Lock(), threading.Lock()
            assert isinstance(outer, InstrumentedLock)
            for _ in range(5):
                with outer:
                    with inner:
                        pass
        finally:
            san.uninstall()
        witness = san.witness()
        assert witness.acquires == 0
        assert witness.edges == {}

    def test_duty_cycled_recording_catches_recurring_edges(self):
        import time

        san = LockOrderSanitizer(duty=0.5, window=0.01)
        san.install()
        try:
            assert san._toggle_thread is not None
            assert san._toggle_thread.is_alive()
            outer = threading.Lock()
            inner = threading.Lock()  # separate lines: distinct labels
            deadline = time.monotonic() + 5.0
            while san.witness().acquires == 0 and time.monotonic() < deadline:
                for _ in range(50):
                    with outer:
                        with inner:
                            pass
        finally:
            san.uninstall()
        assert san._toggle_thread is None  # uninstall joined the toggler
        witness = san.witness()
        # Structural edges recur every packet, so sampled windows see
        # them; nothing but the real nesting may appear.
        assert witness.acquires > 0
        for held, acquired in witness.edges:
            assert held != acquired

    def test_stale_stack_is_invalidated_across_windows(self):
        # A lock still held when a recording window closes must not pair
        # with acquisitions seen in a later window: only same-window
        # nesting is a real order edge.
        san = LockOrderSanitizer()
        san._note_acquire("A")
        san._epoch += 1  # window boundary while A is held
        san._note_acquire("B")
        san._note_release("B")
        assert san.witness().edges == {}

    def test_rlock_reentry_across_window_boundary_is_not_an_edge(self):
        # Depth is tracked even while dormant: a first acquire in a
        # dormant window followed by an active-window re-entry must not
        # record a bogus self-edge.
        san = LockOrderSanitizer()
        lock = InstrumentedLock(san, "Pool._lock", reentrant=True)
        san._active = False
        lock.acquire()
        san._active = True
        lock.acquire()
        lock.release()
        lock.release()
        assert san.witness().edges == {}
        assert san.witness().acquires == 0

    def test_calibrate_recording_is_sane(self):
        marginal = calibrate_recording(iterations=2_000)
        assert marginal >= 0.0
        assert marginal < 1e-4


class TestCrossValidation:
    STATIC = {
        ("A.x", "A.y"): ("f.py", "m1", 1),
        ("A.y", "A.x"): ("f.py", "m2", 2),
        ("C.p", "C.q"): ("f.py", "m3", 3),
        ("C.q", "C.p"): ("f.py", "m4", 4),
    }

    def test_three_buckets(self):
        witness = Witness(
            edges={
                ("A.x", "A.y"): 1,  # confirmed cycle half...
                ("A.y", "A.x"): 1,  # ...and back
                ("B.u", "B.v"): 1,  # witnessed-only cycle
                ("B.v", "B.u"): 1,
            }
        )
        merged = cross_validate(witness, self.STATIC)
        assert len(merged.confirmed) == 1
        assert set(merged.confirmed[0]) == {"A.x", "A.y"}
        assert len(merged.witnessed_only) == 1
        assert set(merged.witnessed_only[0]) == {"B.u", "B.v"}
        assert len(merged.static_only) == 1
        assert set(merged.static_only[0]) == {"C.p", "C.q"}
        assert ("B.u", "B.v") in merged.unpredicted_edges

    def test_empty_witness_keeps_static_findings(self):
        merged = cross_validate(Witness(), self.STATIC)
        assert merged.confirmed == [] and merged.witnessed_only == []
        assert len(merged.static_only) == 2

    def test_acyclic_witness_is_clean(self):
        witness = Witness(edges={("A.x", "A.y"): 5, ("A.y", "A.z"): 5})
        merged = cross_validate(witness, {})
        assert merged == CrossValidation(
            unpredicted_edges=[("A.x", "A.y"), ("A.y", "A.z")]
        )

    def test_report_severities(self):
        witness = Witness(
            edges={
                ("A.x", "A.y"): 1,
                ("A.y", "A.x"): 1,
                ("B.u", "B.v"): 1,
                ("B.v", "B.u"): 1,
            }
        )
        report = witness_report(witness, self.STATIC)
        by_message = {
            d.message.split(":")[0]: d.severity for d in report.diagnostics
        }
        assert len(report) == 3
        assert report.count("NEPL203") == 3
        assert "CONFIRMED" in "".join(d.message for d in report.errors())
        severities = [d.severity.name for d in report.diagnostics]
        assert severities.count("ERROR") == 2 and severities.count("INFO") == 1
        assert by_message  # messages are non-empty and distinct


class TestStaticEdgeExtraction:
    def test_static_order_edges_from_source(self, tmp_path):
        # The lint's NEPL203 fixture has a cycle; its edge set must be
        # consumable by cross_validate directly.
        import glob
        import os

        from repro.analysis.lint import collect_models
        from repro.analysis.lintrules import static_order_edges

        fixture = glob.glob(
            os.path.join(
                os.path.dirname(__file__), "fixtures", "lint", "nepl203_*.py"
            )
        )
        edges = static_order_edges(collect_models(fixture))
        merged = cross_validate(Witness(), edges)
        assert merged.static_only, "nepl203 fixture cycle not extracted"


def test_calibrate_returns_small_nonnegative_overhead():
    overhead = calibrate(iterations=2_000)
    assert overhead >= 0.0
    assert overhead < 1e-4  # sub-100µs per acquire on any plausible box


@pytest.mark.slow
def test_runtime_pipeline_runs_under_sanitizer():
    """End-to-end: a real pipeline under instrumentation still delivers,
    and the witness sees the runtime's own locks by name."""
    with LockOrderSanitizer() as san:
        from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
        from repro.core.graph import descriptor_factory

        graph = StreamProcessingGraph(
            "san-smoke", config=NeptuneConfig(buffer_capacity=64)
        )
        graph.add_source(
            "src",
            descriptor_factory(
                "repro.workloads.operators:CountingSource",
                total=200,
                payload_size=16,
            ),
        )
        graph.add_processor(
            "sink", descriptor_factory("repro.workloads.operators:CollectingSink")
        )
        graph.link("src", "sink")
        with NeptuneRuntime() as runtime:
            handle = runtime.submit(graph)
            assert handle.await_completion(timeout=30.0)
            assert handle.failures == {}
    witness = san.witness()
    assert witness.acquires > 0
    assert witness.dropped_edges == 0
