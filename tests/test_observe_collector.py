"""Unit tests for the cluster observability plane (tier-1, in-process).

Covers the collector protocol end to end without spawning processes:
delta building (cursors, seq), merge idempotency under re-delivery
(the satellite-1 regression: histogram series absorb never-backwards,
whole deltas dedup by seq, spans dedup by identity), cross-worker
trace stitching invariants (tiling: zero gap, zero overlap), the
flight recorder's atomic dumps and multi-dump merge, and the doctor's
cross-worker cause attribution.  The real-process versions live in
``tests/test_cluster_observe.py`` behind ``@pytest.mark.cluster``.
"""

import json
import math
import os

import pytest

from repro.observe import (
    STAGES,
    ClusterCollector,
    DeltaSource,
    FlightRecorder,
    RuntimeObserver,
    SpanRecord,
    TelemetryRegistry,
    load_flight_dump,
    merge_flight_dumps,
    stitch,
    stitch_spans,
)
from repro.observe.bridge import absorb_series, registry_series
from repro.observe.collector import COLLECT_SCHEMA
from repro.observe.doctor import diagnose, render_report
from repro.observe.flightrec import FLIGHT_SCHEMA
from repro.observe.health import SLO


# ---------------------------------------------------------------------------
# Histogram cumulative absorption (satellite 1)
# ---------------------------------------------------------------------------

def test_histogram_set_cumulative_and_replay_is_noop():
    reg = TelemetryRegistry()
    hist = reg.histogram("h", None, "test", buckets=(1.0, 2.0))
    hist.set_cumulative([1, 3], 4, 10.0)
    assert hist.count == 4
    assert hist.sum == 10.0
    assert hist.cumulative_buckets() == [(1.0, 1), (2.0, 3), (math.inf, 4)]
    # Replaying the same snapshot must not double-count.
    hist.set_cumulative([1, 3], 4, 10.0)
    assert hist.count == 4
    # An older snapshot (re-delivery out of order) is ignored.
    hist.set_cumulative([0, 1], 2, 3.0)
    assert hist.count == 4
    assert hist.cumulative_buckets() == [(1.0, 1), (2.0, 3), (math.inf, 4)]
    # A newer one advances.
    hist.set_cumulative([2, 5], 7, 20.0)
    assert hist.count == 7
    assert hist.cumulative_buckets() == [(1.0, 2), (2.0, 5), (math.inf, 7)]


def test_histogram_set_cumulative_rejects_bucket_mismatch():
    reg = TelemetryRegistry()
    hist = reg.histogram("h", None, "test", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        hist.set_cumulative([1], 2, 3.0)


def test_series_histogram_round_trip_idempotent():
    """registry_series -> absorb_series carries histograms, and
    absorbing the same series twice changes nothing (satellite 1)."""
    src = TelemetryRegistry()
    hist = src.histogram("lat_seconds", {"operator": "x"}, "test")
    hist.observe(0.004)
    hist.observe(0.5)
    src.counter("c_total", {"operator": "x"}, "test").inc(5)
    series = registry_series(src, {"worker": "1"})
    kinds = {s["name"]: s["kind"] for s in series}
    assert kinds == {"lat_seconds": "histogram", "c_total": "counter"}

    dst = TelemetryRegistry()
    absorb_series(dst, series)
    absorb_series(dst, series)  # re-delivery
    out = {s.name: s for s in dst.collect()}
    assert dict(out["lat_seconds"].labels)["worker"] == "1"
    merged = out["lat_seconds"].histogram
    assert merged is not None
    assert merged.count == 2
    assert abs(merged.sum - 0.504) < 1e-9
    assert out["c_total"].value == 5.0


# ---------------------------------------------------------------------------
# DeltaSource
# ---------------------------------------------------------------------------

def _span(tid, hop, stage, start, end, op="src", worker=None):
    return SpanRecord(tid, hop, stage, start, end, op, worker=worker)


def test_delta_source_ships_each_span_and_event_once():
    obs = RuntimeObserver()
    obs.collector.add([_span(1, 0, "serialize", 0.0, 0.5)])
    obs.timeline.record("runtime", "started", graph="g")
    source = DeltaSource(obs, 3)

    d1 = source.collect()
    assert d1["schema"] == COLLECT_SCHEMA
    assert d1["worker"] == 3
    assert d1["seq"] == 1
    assert [s["stage"] for s in d1["spans"]] == ["serialize"]
    assert d1["spans"][0]["worker"] == "3"
    assert any(e["name"] == "started" for e in d1["events"])
    assert d1["series"], "series must not be empty after a collect"
    assert all(s["labels"].get("worker") == "3" for s in d1["series"])
    # Shipped span durations feed the per-stage histogram.
    assert any(
        s["name"] == "neptune_trace_stage_seconds"
        and s["labels"].get("stage") == "serialize"
        for s in d1["series"]
    )

    d2 = source.collect()
    assert d2["seq"] == 2
    assert d2["spans"] == []
    assert all(e["name"] != "started" for e in d2["events"])

    obs.collector.add([_span(1, 0, "enqueue", 0.5, 0.7)])
    d3 = source.collect()
    assert [s["stage"] for s in d3["spans"]] == ["enqueue"]

    info = source.info()
    assert info["collects"] == 3
    assert info["spans_shipped"] == 2
    assert info["last_collect_age"] is not None


# ---------------------------------------------------------------------------
# ClusterCollector merge semantics
# ---------------------------------------------------------------------------

def test_collector_drops_stale_seq_redelivery():
    """Re-delivering the same delta must be a complete no-op."""
    obs = RuntimeObserver()
    obs.collector.add([_span(5, 0, "serialize", 0.0, 1.0)])
    obs.timeline.record("runtime", "started")
    source = DeltaSource(obs, 0)
    collector = ClusterCollector()
    delta = source.collect()

    assert collector.absorb(delta) is True
    assert collector.absorb(delta) is False  # same seq: stale
    assert collector.stale == 1
    assert len(collector.observer.collector.all_spans()) == 1
    assert len(collector.observer.timeline) == 1


def test_collector_dedups_spans_across_new_seq():
    """Ack-replay re-executes hops: same span identity under a fresh
    seq must not double-count, and histogram series must not move."""
    obs = RuntimeObserver()
    obs.collector.add([_span(5, 0, "serialize", 0.0, 1.0)])
    source = DeltaSource(obs, 0)
    collector = ClusterCollector()
    delta = source.collect()
    assert collector.absorb(delta)

    replay = dict(delta)
    replay["seq"] = delta["seq"] + 1  # a *new* message, same payload
    assert collector.absorb(replay) is True
    assert len(collector.observer.collector.all_spans()) == 1
    samples = {s.name: s for s in collector.observer.registry.collect()}
    stage_hist = samples["neptune_trace_stage_seconds"].histogram
    assert stage_hist is not None and stage_hist.count == 1


def test_collector_reset_worker_accepts_fresh_seq():
    obs = RuntimeObserver()
    source = DeltaSource(obs, 0)
    collector = ClusterCollector()
    assert collector.absorb(source.collect())  # seq 1
    assert collector.absorb(source.collect())  # seq 2

    restarted = DeltaSource(RuntimeObserver(), 0)  # fresh process: seq 1
    stale = restarted.collect()
    assert collector.absorb(stale) is False
    collector.reset_worker(0)
    restarted2 = DeltaSource(RuntimeObserver(), 0)
    assert collector.absorb(restarted2.collect()) is True


def test_incarnation_fence_drops_old_incarnation_after_restart():
    """Regression: a delta built by the *dead* incarnation — fetched
    before the kill, absorbed after restart_worker's reset — landed
    under the new worker label with a high seq, burying the fresh
    incarnation's restarted sequence forever."""
    obs = RuntimeObserver()
    source = DeltaSource(obs, 3, incarnation=0)
    collector = ClusterCollector()
    for _ in range(56):
        source.collect()
    in_flight = source.collect()  # seq 57, built just before the kill
    # Coordinator restarts worker 3 and arms the fence first.
    collector.reset_worker(3, incarnation=1)
    assert collector.absorb(in_flight) is False  # fenced, not absorbed
    assert collector.fenced == 1
    assert collector.stale == 0
    # The new incarnation's restarted sequence is accepted from seq 1.
    fresh = DeltaSource(RuntimeObserver(), 3, incarnation=1)
    assert collector.absorb(fresh.collect()) is True
    assert collector.absorb(fresh.collect()) is True


def test_incarnation_learned_from_first_delta_fences_regressions():
    """Without an explicit reset the collector learns the incarnation
    from the first delta and fences anything from a different one."""
    collector = ClusterCollector()
    new = DeltaSource(RuntimeObserver(), 0, incarnation=2)
    old = DeltaSource(RuntimeObserver(), 0, incarnation=1)
    for _ in range(9):
        old.collect()
    assert collector.absorb(new.collect()) is True  # learn incarnation 2
    assert collector.absorb(old.collect()) is False  # inc 1, seq 10: fenced
    assert collector.fenced == 1


def test_reset_without_incarnation_accepts_any_incarnation():
    """Back-compat: reset_worker with no incarnation clears the fence
    (in-process harnesses that never track restarts keep working)."""
    collector = ClusterCollector()
    a = DeltaSource(RuntimeObserver(), 0, incarnation=0)
    assert collector.absorb(a.collect())
    collector.reset_worker(0)
    b = DeltaSource(RuntimeObserver(), 0, incarnation=5)
    assert collector.absorb(b.collect()) is True


def test_collector_events_keep_origin_timestamp_and_worker():
    obs = RuntimeObserver()
    event = obs.timeline.record("chaos", "kill_worker", target="w1")
    source = DeltaSource(obs, 7)
    collector = ClusterCollector()
    collector.absorb(source.collect())
    merged = collector.observer.timeline.snapshot()
    assert len(merged) == 1
    assert merged[0].ts == event.ts
    assert merged[0].attrs["worker"] == "7"
    assert merged[0].attrs["target"] == "w1"


def test_poll_once_survives_fetch_failures():
    obs = RuntimeObserver()
    source = DeltaSource(obs, 0)
    collector = ClusterCollector()
    collector.attach(0, source.collect)

    def severed():
        raise OSError("control socket gone")

    collector.attach(1, severed)
    collector.attach(2, lambda: None)  # worker with no delta source
    assert collector.poll_once() == 1
    assert collector.fetch_errors == 1
    ages = collector.ages()
    assert ages[0] is not None and ages[1] is None and ages[2] is None
    status = collector.status()
    assert status["polls"] == 1 and status["absorbed"] == 1


def test_collector_health_scans_merged_series():
    """A cluster-scope SLO evaluates against worker-labeled series
    (subset label matching sums across workers)."""
    slo = SLO(
        "relay.floor", "throughput_floor", 1e9, operator="relay",
        for_scans=1, warmup_scans=0,
    )
    collector = ClusterCollector(slos=[slo])
    assert collector.health is not None

    def series_for(worker, total):
        reg = TelemetryRegistry()
        reg.counter(
            "neptune_operator_packets_in_total", {"operator": "relay"}, "t"
        ).inc(total)
        return registry_series(reg, {"worker": worker})

    collector.absorb({
        "schema": COLLECT_SCHEMA, "worker": 0, "seq": 1,
        "series": series_for("0", 10), "spans": [], "events": [],
        "monitors": [],
    })
    collector.absorb({
        "schema": COLLECT_SCHEMA, "worker": 1, "seq": 1,
        "series": series_for("1", 32), "spans": [], "events": [],
        "monitors": [],
    })
    collector.health.scan_once()  # first sighting primes the rate
    collector.health.scan_once()
    monitor = collector.health.monitors[0]
    # Rate computed over the summed 42 packets across both workers —
    # far below the absurd floor, so the monitor must be breaching.
    assert monitor.bad_scans >= 1


def test_worker_monitors_reported_per_worker():
    collector = ClusterCollector()
    collector.absorb({
        "schema": COLLECT_SCHEMA, "worker": 2, "seq": 1, "series": [],
        "spans": [], "events": [],
        "monitors": [{"slo": "sink.p99_latency", "status": "breach"}],
    })
    monitors = collector.worker_monitors()
    assert monitors == [
        {"slo": "sink.p99_latency", "status": "breach", "worker": 2}
    ]


# ---------------------------------------------------------------------------
# Stitching invariants
# ---------------------------------------------------------------------------

def _tiled_spans(tid, n_hops, stage_len=1.0):
    spans, t = [], 0.0
    for hop in range(n_hops):
        for stage in STAGES:
            spans.append(
                _span(tid, hop, stage, t, t + stage_len, f"op{hop}", str(hop))
            )
            t += stage_len
    return spans


def test_stitched_trace_tiles_across_workers():
    trace = stitch_spans(9, _tiled_spans(9, 2))
    assert trace.complete
    assert trace.workers == ["0", "1"]
    assert trace.hops == 2
    assert trace.gap_seconds == 0.0
    assert trace.overlap_seconds == 0.0
    assert trace.duration == pytest.approx(12.0)
    d = trace.as_dict()
    assert d["complete"] and len(d["spans"]) == 12


def test_stitched_trace_detects_gaps_and_missing_hops():
    spans = _tiled_spans(4, 2)
    del spans[3]  # drop hop 0 "wire": incomplete + a gap
    trace = stitch_spans(4, spans)
    assert not trace.complete
    assert trace.gap_seconds > 0.0

    hop1_only = [s for s in _tiled_spans(6, 2) if s.hop == 1]
    trace2 = stitch_spans(6, hop1_only)
    assert not trace2.complete  # hops must be contiguous from 0


def test_stitch_collector_orders_by_trace_id():
    collector = ClusterCollector()
    obs_a = RuntimeObserver()
    obs_a.collector.add(_tiled_spans(11, 1))
    obs_b = RuntimeObserver()
    obs_b.collector.add(_tiled_spans(3, 1))
    collector.absorb(DeltaSource(obs_a, 0).collect())
    collector.absorb(DeltaSource(obs_b, 1).collect())
    stitched = collector.stitched()
    assert [t.trace_id for t in stitched] == [3, 11]
    assert stitch(collector.observer.collector)[0].trace_id == 3


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

def test_flight_recorder_dump_atomic_and_loadable(tmp_path):
    obs = RuntimeObserver()
    obs.timeline.record("runtime", "started")
    obs.collector.add([_span(1, 0, "serialize", 0.0, 0.5)])
    path = str(tmp_path / "flight-w0.json")
    recorder = FlightRecorder(obs, path, worker_id=0)
    assert recorder.dump("test") == path
    assert not os.path.exists(path + ".tmp"), "tmp file must be replaced"
    dump = load_flight_dump(path)
    assert dump["schema"] == FLIGHT_SCHEMA
    assert dump["reason"] == "test"
    assert dump["dumps"] == 1
    assert dump["spans"][0]["worker"] == "0"
    assert dump["events"][0]["attrs"]["worker"] == "0"
    assert dump["instruments"], "instrument snapshot must be present"
    # A later dump overwrites with fresh state, never appends.
    assert recorder.dump("periodic") == path
    assert load_flight_dump(path)["dumps"] == 2


def test_flight_recorder_never_raises_on_bad_path(tmp_path):
    obs = RuntimeObserver()
    recorder = FlightRecorder(obs, str(tmp_path / "no-such-dir" / "f.json"))
    assert recorder.dump("test") is None
    assert recorder.dump_errors == 1


def test_flight_recorder_bounds_window(tmp_path):
    obs = RuntimeObserver()
    for i in range(20):
        obs.timeline.record("runtime", f"e{i}")
    obs.collector.add(_tiled_spans(1, 2))
    path = str(tmp_path / "flight.json")
    recorder = FlightRecorder(obs, path, max_events=5, max_spans=4)
    recorder.dump("test")
    dump = load_flight_dump(path)
    assert len(dump["events"]) == 5
    assert dump["events"][-1]["name"] == "e19"  # most recent kept
    assert len(dump["spans"]) == 4
    # Most-recently-closed spans survive the cap.
    assert {s["hop"] for s in dump["spans"]} == {1}


def test_merge_flight_dumps_dedups_and_shapes_for_doctor(tmp_path):
    def dump_for(worker, spans, reason):
        obs = RuntimeObserver()
        obs.collector.add(spans)
        obs.timeline.record("runtime", f"w{worker}-event")
        path = str(tmp_path / f"flight-w{worker}.json")
        FlightRecorder(obs, path, worker_id=worker).dump(reason)
        return load_flight_dump(path)

    tiled = _tiled_spans(7, 2)
    hop0, hop1 = tiled[:6], tiled[6:]
    # Overlapping windows: both workers persisted hop0's serialize span.
    d0 = dump_for(0, hop0, "periodic")
    d1 = dump_for(1, [hop0[0]] + hop1, "sigterm")
    merged = merge_flight_dumps([d0, d1, {"schema": "other/1"}])
    assert merged["flight"]["workers"] == [0, 1]
    assert merged["flight"]["reasons"] == {"0": "periodic", "1": "sigterm"}
    spans = merged["traces"]["7"]
    assert len(spans) == 12, "duplicate span must merge away"
    hops_stages = [(s["hop"], s["stage"]) for s in spans]
    assert hops_stages == [(h, st) for h in (0, 1) for st in STAGES]
    names = [e["name"] for e in merged["timeline"]]
    assert "w0-event" in names and "w1-event" in names
    # The merged shape is directly diagnosable.
    report = diagnose(merged)
    assert report["schema"] == "neptune-doctor/1"
    assert report["healthy"]


def test_load_flight_dump_rejects_non_object(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(ValueError):
        load_flight_dump(str(path))


# ---------------------------------------------------------------------------
# Doctor: cross-worker attribution
# ---------------------------------------------------------------------------

def test_doctor_attributes_breach_to_gate_on_other_worker():
    """Breach observed on worker 1, root cause the stalled sink gate on
    worker 2 (its throttle cascade reaches the breaching operator)."""
    timeline = [
        {"ts": 1.0, "category": "flowcontrol", "name": "gate_closed",
         "attrs": {"operator": "w2:sink[0]", "throttles": ["w1:relay[0]"],
                   "worker": "2"}},
        {"ts": 1.2, "category": "flowcontrol", "name": "gate_closed",
         "attrs": {"operator": "w1:relay[0]", "throttles": ["w0:src[0]"],
                   "worker": "1"}},
        {"ts": 2.0, "category": "health", "name": "slo_breach",
         "attrs": {"slo": "relay.p99_latency", "operator": "relay",
                   "worker": "1", "value": 0.2, "threshold": 0.05}},
        {"ts": 4.0, "category": "health", "name": "slo_recover",
         "attrs": {"slo": "relay.p99_latency"}},
        {"ts": 5.0, "category": "flowcontrol", "name": "gate_opened",
         "attrs": {"operator": "w1:relay[0]"}},
        {"ts": 5.1, "category": "flowcontrol", "name": "gate_opened",
         "attrs": {"operator": "w2:sink[0]"}},
    ]
    report = diagnose({"timeline": timeline, "traces": {}, "instruments": []})
    assert not report["healthy"]
    episode = report["breaches"][0]
    assert episode["observed_on_worker"] == "1"
    root = report["root_cause"]
    assert root["type"] == "backpressure_cascade"
    assert root["operator"] == "sink"
    assert root["worker"] == "2"
    # The relay gate is a cascade victim, demoted below the sink gate.
    ops = [c["operator"] for c in episode["causes"]]
    assert ops.index("sink") < ops.index("relay")
    rendered = render_report(report)
    assert "root cause" in rendered and "'sink'" in rendered
    assert "on worker 2" in rendered
