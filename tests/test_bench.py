"""Tests for the `repro bench` harness and its regression guardrail."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    PROFILES,
    build_report,
    calibration_score,
    check_regression,
    run_scenarios,
    write_report,
)
from repro.bench.harness import percentile
from repro.bench.report import load_report
from repro.cli import main


def _report(calibration, encode=1000.0, speedup=3.0, relay=500.0, appends=800.0):
    return {
        "schema": BENCH_SCHEMA,
        "profile": "quick",
        "calibration_score": calibration,
        "scenarios": {
            "codec": {
                "encode_compiled_msgs_per_sec": encode,
                "decode_compiled_msgs_per_sec": encode * 2,
                "encode_speedup": speedup,
                "decode_speedup": speedup,
            },
            "buffer": {"appends_per_sec": appends},
            "relay": {"packets_per_sec": relay},
        },
    }


class TestSmokeProfile:
    def test_runs_and_writes_valid_report(self, tmp_path):
        results = run_scenarios(PROFILES["smoke"])
        report = build_report(results, "smoke", calibration_score())
        path = tmp_path / "bench.json"
        write_report(report, path)
        data = load_report(path)
        assert data["schema"] == BENCH_SCHEMA
        assert data["profile"] == "smoke"
        assert data["calibration_score"] > 0
        codec = data["scenarios"]["codec"]
        for key in (
            "encode_compiled_msgs_per_sec",
            "decode_compiled_msgs_per_sec",
            "encode_legacy_msgs_per_sec",
            "decode_legacy_msgs_per_sec",
        ):
            assert codec[key] > 0
        # The point of the compiled codec: meaningfully faster than the
        # per-field reference on a fixed-width-dominated schema.
        assert codec["encode_speedup"] > 1.2
        assert codec["decode_speedup"] > 1.2
        relay = data["scenarios"]["relay"]
        assert relay["packets_per_sec"] > 0
        assert relay["p99_latency_sec"] >= relay["p50_latency_sec"] > 0
        buffer = data["scenarios"]["buffer"]
        assert buffer["appends_per_sec"] > 0
        assert buffer["spare_allocs"] <= 2  # double-buffer pool held
        health = data["scenarios"]["health"]
        assert health["packets_per_sec_monitors_off"] > 0
        assert health["packets_per_sec_monitors_on"] > 0
        assert health["health_scans"] >= 0
        # Smoke runs are too short to bound the ratio, but it must at
        # least be a sane fraction (the in-scenario <3% assert guards
        # the quick/full tiers).
        assert 0.0 <= health["overhead_frac"] < 1.0
        # A report never regresses against itself.
        assert check_regression(data, data) == []


class TestRegressionCheck:
    def test_within_tolerance_passes(self):
        baseline = _report(1.0, encode=1000.0)
        current = _report(1.0, encode=950.0)
        assert check_regression(current, baseline, tolerance=0.10) == []

    def test_throughput_drop_fails(self):
        baseline = _report(1.0, encode=1000.0)
        current = _report(1.0, encode=800.0)
        failures = check_regression(current, baseline, tolerance=0.10)
        assert any("encode_compiled_msgs_per_sec" in f for f in failures)

    def test_speedup_ratio_drop_fails(self):
        baseline = _report(1.0, speedup=3.0)
        current = _report(1.0, speedup=1.1)
        failures = check_regression(current, baseline, tolerance=0.10)
        assert any("encode_speedup" in f for f in failures)

    def test_calibration_normalization_absorbs_machine_speed(self):
        # Same code on a machine half as fast: raw throughput halves,
        # but so does the calibration score — no false regression.
        baseline = _report(2.0, encode=2000.0, relay=1000.0, appends=1600.0)
        current = _report(1.0, encode=1000.0, relay=500.0, appends=800.0)
        assert check_regression(current, baseline, tolerance=0.10) == []

    def test_missing_guarded_metric_fails(self):
        baseline = _report(1.0)
        current = _report(1.0)
        del current["scenarios"]["relay"]["packets_per_sec"]
        failures = check_regression(current, baseline)
        assert any("relay.packets_per_sec" in f for f in failures)

    def test_metric_new_in_current_is_ignored(self):
        baseline = _report(1.0)
        del baseline["scenarios"]["buffer"]["appends_per_sec"]
        current = _report(1.0)
        assert check_regression(current, baseline) == []

    def test_load_report_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="neptune-bench"):
            load_report(path)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_bounds(self):
        samples = [float(i) for i in range(100)]
        assert percentile(samples, 0.0) == 0.0
        assert percentile(samples, 1.0) == 99.0
        assert percentile(samples, 0.5) == pytest.approx(50.0, abs=1.0)


class TestCli:
    def test_bench_writes_and_checks(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--profile", "smoke", "--out", str(out)]) == 0
        assert out.exists()
        # Checking a fresh run against itself with a generous tolerance
        # must pass (wide tolerance keeps this robust to CI jitter).
        rc = main(
            [
                "bench",
                "--profile",
                "smoke",
                "--out",
                "",
                "--check",
                str(out),
                "--tolerance",
                "0.9",
            ]
        )
        assert rc == 0
        assert "no regression" in capsys.readouterr().out

    def test_bench_check_flags_inflated_baseline(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--profile", "smoke", "--out", str(out)]) == 0
        inflated = load_report(out)
        for metrics in inflated["scenarios"].values():
            for key in list(metrics):
                metrics[key] = metrics[key] * 100.0
        baseline = tmp_path / "inflated.json"
        write_report(inflated, baseline)
        rc = main(
            ["bench", "--profile", "smoke", "--out", "", "--check", str(baseline)]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
