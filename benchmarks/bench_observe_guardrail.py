"""Guardrail: observability with tracing disabled must be (nearly) free.

Runs the in-process relay pipeline A/B — no observer at all vs an
attached :class:`RuntimeObserver` with ``sample_every=0`` (tracing off,
timeline on) — interleaved over several trials, and compares the
minimum wall time of each arm.  Min-of-N is the standard noise filter
for wall-clock micro-comparisons: the minimum is the run least
disturbed by the machine, so the delta isolates the code under test.

Exit code 0 iff the observed arm regresses by less than
``OBSERVE_GUARDRAIL_PCT`` percent (default 3, the PR's acceptance
budget).  Tunables via environment:

- ``OBSERVE_GUARDRAIL_PACKETS`` (default 10000)
- ``OBSERVE_GUARDRAIL_TRIALS``  (default 5)
- ``OBSERVE_GUARDRAIL_PCT``     (default 3.0)
"""

from __future__ import annotations

import os
import sys
import time

from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.observe import RuntimeObserver
from repro.workloads import CollectingSink, CountingSource, RelayProcessor

PACKETS = int(os.environ.get("OBSERVE_GUARDRAIL_PACKETS", "10000"))
TRIALS = int(os.environ.get("OBSERVE_GUARDRAIL_TRIALS", "5"))
MAX_REGRESSION_PCT = float(os.environ.get("OBSERVE_GUARDRAIL_PCT", "3.0"))


def run_once(observer: RuntimeObserver | None) -> float:
    """One full pipeline run; returns wall seconds."""
    store: list = []
    g = StreamProcessingGraph(
        "observe-guardrail",
        config=NeptuneConfig(buffer_capacity=64 * 1024, buffer_max_delay=0.005),
    )
    g.add_source("src", lambda: CountingSource(total=PACKETS))
    g.add_processor("relay", RelayProcessor)
    g.add_processor("sink", lambda: CollectingSink(store))
    g.link("src", "relay").link("relay", "sink")
    t0 = time.perf_counter()
    with NeptuneRuntime(observer=observer) as rt:
        handle = rt.submit(g)
        if not handle.await_completion(timeout=120):
            raise RuntimeError("guardrail pipeline did not drain")
    elapsed = time.perf_counter() - t0
    if len(store) != PACKETS:
        raise RuntimeError(f"expected {PACKETS} packets, got {len(store)}")
    return elapsed


def main() -> int:
    # Warm both arms so imports/JIT-ish first-run costs hit neither.
    run_once(None)
    run_once(RuntimeObserver(sample_every=0))

    baseline: list[float] = []
    observed: list[float] = []
    for trial in range(TRIALS):
        # Interleave so slow machine drift penalizes both arms equally.
        baseline.append(run_once(None))
        observed.append(run_once(RuntimeObserver(sample_every=0)))
        print(
            f"trial {trial + 1}/{TRIALS}: "
            f"baseline={baseline[-1]:.3f}s observed={observed[-1]:.3f}s",
            flush=True,
        )

    best_base = min(baseline)
    best_obs = min(observed)
    pct = (best_obs - best_base) / best_base * 100.0
    print(
        f"min-of-{TRIALS}: baseline={best_base:.3f}s "
        f"observer(sampling=0)={best_obs:.3f}s regression={pct:+.2f}% "
        f"(budget {MAX_REGRESSION_PCT:.1f}%)"
    )
    if pct > MAX_REGRESSION_PCT:
        print("FAIL: tracing-disabled overhead exceeds budget", file=sys.stderr)
        return 1
    print("OK: tracing-disabled overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
