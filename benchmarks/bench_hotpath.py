#!/usr/bin/env python3
"""Hot-path benchmark entry point — thin shim over ``repro bench``.

The pinned scenarios, profiles, and the ``neptune-bench/1`` report
schema live in :mod:`repro.bench`; CI runs the same scenarios through
``repro bench --profile quick --check BENCH_hotpath.json``.  This shim
exists so the hot path is runnable the same way as the per-figure
benchmarks in this directory:

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--profile full]
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
