"""HEAD — the paper's §VI headline claims, regenerated in one pass.

- ~2 M stream packets/s at a single pipeline with 93.7% bandwidth use;
- ~100 M packets/s cumulative on the 50-node cluster;
- p99 processing latency ≤ 87.8 ms for 10 KB packets at the
  high-throughput configuration;
- ~15 M msgs/s cumulative for the manufacturing application.
"""

from repro.sim import experiments as exp


def test_headline_numbers(benchmark):
    head = benchmark.pedantic(lambda: exp.headline_numbers(), rounds=1, iterations=1)
    print()
    rows = [
        {
            "claim": "single pipeline (M msg/s)",
            "paper": 2.0,
            "measured": head["single_pipeline_msg_s"] / 1e6,
        },
        {
            "claim": "bandwidth (Gbps)",
            "paper": 0.937,
            "measured": head["single_pipeline_bandwidth_gbps"],
        },
        {
            "claim": "50-node cluster (M msg/s)",
            "paper": 100.0,
            "measured": head["cluster_cumulative_msg_s"] / 1e6,
        },
        {
            "claim": "p99 latency @10KB (ms)",
            "paper": 87.8,
            "measured": head["latency_p99_ms_10KB"],
        },
        {
            "claim": "manufacturing app (M msg/s)",
            "paper": 15.0,
            "measured": head["manufacturing_cumulative_msg_s"] / 1e6,
        },
    ]
    print(exp.format_rows(rows, title="HEADLINE: paper vs measured"))

    assert 1.5 < head["single_pipeline_msg_s"] / 1e6 < 3.5
    assert 0.85 < head["single_pipeline_bandwidth_gbps"] <= 1.0
    assert 80 < head["cluster_cumulative_msg_s"] / 1e6 < 150
    assert head["latency_p99_ms_10KB"] < 150
    assert 10 < head["manufacturing_cumulative_msg_s"] / 1e6 < 25
