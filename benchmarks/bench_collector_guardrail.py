"""Guardrail: the cluster telemetry plane must cost < 3% of a job.

Runs a real-process relay cluster A/B — workers spawned by a
:class:`ClusterCoordinator` with observability off vs the full plane
on (per-worker :class:`RuntimeObserver` + :class:`DeltaSource`, flight
recorder, and the coordinator's polling
:class:`~repro.observe.collector.ClusterCollector` absorbing and
stitching deltas over the control channel) — interleaved over several
trials.

Two verdicts, the same scheme as ``bench_health_guardrail``:

- **Duty cycle** (asserted at ``COLLECTOR_GUARDRAIL_PCT``, default 3%):
  the plane's causally-attributable compute over the observed run's
  wall time — the workers' delta ``build_cpu_seconds`` plus the
  coordinator's merge CPU (``poll_cpu_seconds``).  The
  raw poll time is NOT the cost: polls are RPC-synchronous, so most of
  it is the coordinator *waiting* for a busy worker's control thread
  to win a GIL slice, time during which the data plane keeps running
  at full speed.  (That contention is real but shows up where it
  belongs, in the A/B arm.)  Min-of-N across trials, since duty is a
  property of the code while its jitter belongs to the runner; the raw
  poll duty is printed per trial as a diagnostic.
- **A/B wall clock** (asserted at ``COLLECTOR_GUARDRAIL_AB_PCT``,
  default 25%): min-of-N observed vs bare wall time, measured from
  *after* ``launch`` returns to the drain-complete sample so
  interpreter spawn cost (identical in both arms but noisy) cancels
  out.  Its noise floor sits far above the duty budget, so it only
  backstops catastrophic regressions — collection work leaking onto
  the data plane's hot path.

Tunables via environment:

- ``COLLECTOR_GUARDRAIL_PACKETS``      (default 20000)
- ``COLLECTOR_GUARDRAIL_TRIALS``       (default 3)
- ``COLLECTOR_GUARDRAIL_PCT``          (default 3.0)
- ``COLLECTOR_GUARDRAIL_AB_PCT``       (default 25.0)
- ``COLLECTOR_GUARDRAIL_INTERVAL``     (default 0.25 seconds)
- ``COLLECTOR_GUARDRAIL_SAMPLE_EVERY`` (default 256; trace sampling —
  span shipping dominates poll cost, so the duty verdict is for this
  pinned rate)
- ``COLLECTOR_GUARDRAIL_WORKERS``      (default 2)
"""

from __future__ import annotations

import os
import sys
import time

from repro.cluster import ClusterCoordinator
from repro.core import NeptuneConfig, StreamProcessingGraph
from repro.core.graph import descriptor_factory

PACKETS = int(os.environ.get("COLLECTOR_GUARDRAIL_PACKETS", "20000"))
TRIALS = int(os.environ.get("COLLECTOR_GUARDRAIL_TRIALS", "3"))
MAX_DUTY_PCT = float(os.environ.get("COLLECTOR_GUARDRAIL_PCT", "3.0"))
MAX_AB_PCT = float(os.environ.get("COLLECTOR_GUARDRAIL_AB_PCT", "25.0"))
POLL_INTERVAL = float(os.environ.get("COLLECTOR_GUARDRAIL_INTERVAL", "0.25"))
SAMPLE_EVERY = int(os.environ.get("COLLECTOR_GUARDRAIL_SAMPLE_EVERY", "256"))
WORKERS = int(os.environ.get("COLLECTOR_GUARDRAIL_WORKERS", "2"))


def build_graph() -> StreamProcessingGraph:
    g = StreamProcessingGraph(
        "collector-guardrail",
        config=NeptuneConfig(buffer_capacity=4096, buffer_max_delay=0.005),
    )
    g.add_source(
        "source",
        descriptor_factory(
            "repro.workloads.operators:CountingSource",
            total=PACKETS,
            payload_size=32,
        ),
    )
    g.add_processor(
        "relay", descriptor_factory("repro.workloads.operators:RelayProcessor")
    )
    g.add_processor(
        "sink", descriptor_factory("repro.workloads.operators:CollectingSink")
    )
    g.link("source", "relay").link("relay", "sink")
    return g


def run_once(observed: bool) -> tuple[float, float, float, int]:
    """One cluster run; returns (wall, cost seconds, poll seconds, polls).

    Wall time runs from post-launch to the metrics sample that shows
    the sink complete, so per-process interpreter start-up (seconds,
    and identical in both arms) does not drown the signal.  ``cost``
    is the plane's attributable compute: worker build time plus
    coordinator merge time (see module docstring).
    """
    coordinator = ClusterCoordinator(
        build_graph(),
        n_workers=WORKERS,
        observe={"sample_every": SAMPLE_EVERY} if observed else None,
        collect_interval=POLL_INTERVAL,
    )
    try:
        job = coordinator.launch(connect_timeout=120)
        t0 = time.perf_counter()
        deadline = time.monotonic() + 300
        while True:
            count = float(job.metrics().get("sink", {}).get("packets_in", 0))
            if count >= PACKETS:
                break
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"guardrail cluster stalled at {count:.0f}/{PACKETS}"
                )
            time.sleep(0.03)
        elapsed = time.perf_counter() - t0
        # Snapshot all cost counters at the window edge: the drain
        # below runs more polls plus the coordinator's final tail
        # collect, work that happens outside the measured window.
        build_secs = 0.0
        merge_secs = 0.0
        poll_secs = 0.0
        polls = 0
        absorbed = 0
        collector = coordinator.collector
        if observed and collector is not None:
            # Polling-thread CPU: fetch waits consume none, so this is
            # the coordinator-side merge (absorb + stitch) alone.
            merge_secs = collector.poll_cpu_seconds
            poll_secs = collector.poll_seconds
            polls = collector.polls
            absorbed = collector.absorbed
            for handle in coordinator.handles:
                info = handle.proxy.collect_info() if handle.proxy else None
                info = info or {}
                # CPU seconds, not wall: in a busy worker the wall
                # build time is inflated by GIL waits the data plane
                # spends *running*.
                build_secs += float(
                    info.get("build_cpu_seconds", info.get("build_seconds", 0.0))
                )
        if not coordinator.await_completion(timeout=120):
            raise RuntimeError("guardrail cluster drain failed")
        final = coordinator.metrics()["sink"]["packets_in"]
        if final != PACKETS:
            raise RuntimeError(f"guardrail cluster lost packets: {final}/{PACKETS}")
    finally:
        coordinator.terminate()
    if not observed:
        return elapsed, 0.0, 0.0, 0
    if polls == 0:
        raise RuntimeError("collector never polled: run too short to compare")
    if absorbed == 0:
        raise RuntimeError("collector absorbed no deltas: nothing was measured")
    return elapsed, build_secs + merge_secs, poll_secs, polls


def main() -> int:
    # Warm both arms so import/first-spawn costs hit neither.
    run_once(False)
    run_once(True)

    baseline: list[float] = []
    observed: list[float] = []
    duties: list[float] = []
    total_polls = 0
    for trial in range(TRIALS):
        # Interleave so slow machine drift penalizes both arms equally.
        base_wall, _, _, _ = run_once(False)
        obs_wall, cost_secs, poll_secs, polls = run_once(True)
        baseline.append(base_wall)
        observed.append(obs_wall)
        duty = cost_secs / obs_wall
        duties.append(duty)
        total_polls += polls
        print(
            f"trial {trial + 1}/{TRIALS}: baseline={base_wall:.3f}s "
            f"observed={obs_wall:.3f}s polls={polls} duty={duty * 100:.2f}% "
            f"(raw poll wait {poll_secs / obs_wall * 100:.2f}%)",
            flush=True,
        )

    best_base = min(baseline)
    best_obs = min(observed)
    ab_pct = (best_obs - best_base) / best_base * 100.0
    # Duty is a property of the code, not of the runner: max-of-N
    # measures the machine's worst scheduling jitter, min-of-N the
    # plane's actual cost — the same rationale as the min-of-N A/B.
    best_duty = min(duties)
    print(
        f"min-of-{TRIALS}: baseline={best_base:.3f}s "
        f"collector={best_obs:.3f}s A/B={ab_pct:+.2f}% "
        f"(backstop {MAX_AB_PCT:.0f}%) duty cycle={best_duty * 100:.2f}% "
        f"(budget {MAX_DUTY_PCT:.1f}%, worst {max(duties) * 100:.2f}%) "
        f"over {total_polls} polls"
    )
    if best_duty * 100.0 > MAX_DUTY_PCT:
        print("FAIL: cluster-collector poll duty cycle exceeds budget", file=sys.stderr)
        return 1
    if ab_pct > MAX_AB_PCT:
        print(
            "FAIL: observed wall time collapsed — collection work is "
            "leaking onto the data plane",
            file=sys.stderr,
        )
        return 1
    print("OK: cluster-collector overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
