"""FIG4 — backpressure: source throughput tracks the slowest stage.

Paper Figs. 3-4: stage C sleeps 0→1→2→3 ms per packet in steps; the
source's emission rate must be throttled to ~1/sleep through two
intermediate hops, with no loss.  Expected: a staircase inversely
proportional to the sleep.
"""

from repro.sim import experiments as exp
from repro.sim.backpressure import BackpressureParams, run_backpressure


def test_fig4_backpressure_staircase(benchmark):
    def run():
        return run_backpressure(BackpressureParams())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for sleep in (0.0, 0.001, 0.002, 0.003):
        rows.append(
            {
                "stage_c_sleep_ms": sleep * 1e3,
                "source_rate_msg_s": result.mean_rate_during(sleep),
            }
        )
    print()
    print(exp.format_rows(rows, title="FIG4: source rate vs stage-C sleep"))
    r0, r1, r2, r3 = (r["source_rate_msg_s"] for r in rows)
    assert r0 > r1 > r2 > r3 > 0  # inverse staircase
    # Inverse proportionality: rate(1ms) ≈ 2x rate(2ms) ≈ 3x rate(3ms).
    assert r1 / r2 > 1.4
    assert r1 / r3 > 2.0
    # Pressure really propagated through stage B to the source.
    assert result.source_blocks > 0
    assert result.gate_trips_b > 0 and result.gate_trips_c > 0
