"""Guardrail: the sampling profiler must cost < 3% of a job.

Runs the relay workload A/B in-process — a :class:`SamplingProfiler`
*installed but dormant* (attached to the observer, ownership hook
compiled into the execute path, never started) vs the same profiler
sampling at its default rate — interleaved over several trials.

Two verdicts, the same scheme as ``bench_collector_guardrail``:

- **Duty cycle** (asserted at ``PROFILER_GUARDRAIL_PCT``, default 3%):
  the sampler's own attributable compute (``sample_seconds``, the
  per-sweep ``perf_counter`` cost of walking ``sys._current_frames``
  and folding stacks) over the sampled run's wall time.  This is the
  budget the duty-discipline throttle enforces at runtime
  (``max_duty``), so the guardrail is checking the throttle's math
  against reality.  Min-of-N across trials: duty is a property of the
  code, its jitter belongs to the runner.
- **A/B wall clock** (asserted at ``PROFILER_GUARDRAIL_AB_PCT``,
  default 25%): min-of-N sampled vs dormant-installed wall time.  Its
  noise floor sits far above the duty budget, so it only backstops
  catastrophic regressions — per-execute ownership-hook cost, or GIL
  pressure from the sampler leaking onto the data plane's hot path.

Tunables via environment:

- ``PROFILER_GUARDRAIL_PACKETS`` (default 60000)
- ``PROFILER_GUARDRAIL_TRIALS``  (default 3)
- ``PROFILER_GUARDRAIL_PCT``     (default 3.0)
- ``PROFILER_GUARDRAIL_AB_PCT``  (default 25.0)
- ``PROFILER_GUARDRAIL_HZ``      (default 50.0)
"""

from __future__ import annotations

import os
import sys
import time

from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.observe import RuntimeObserver
from repro.observe.profiler import SamplingProfiler
from repro.workloads import CollectingSink, CountingSource, RelayProcessor

PACKETS = int(os.environ.get("PROFILER_GUARDRAIL_PACKETS", "60000"))
TRIALS = int(os.environ.get("PROFILER_GUARDRAIL_TRIALS", "3"))
MAX_DUTY_PCT = float(os.environ.get("PROFILER_GUARDRAIL_PCT", "3.0"))
MAX_AB_PCT = float(os.environ.get("PROFILER_GUARDRAIL_AB_PCT", "25.0"))
HZ = float(os.environ.get("PROFILER_GUARDRAIL_HZ", "50.0"))


def build_graph() -> StreamProcessingGraph:
    g = StreamProcessingGraph(
        "profiler-guardrail",
        config=NeptuneConfig(buffer_capacity=4096, buffer_max_delay=0.005),
    )
    g.add_source("source", lambda: CountingSource(total=PACKETS, payload_size=32))
    g.add_processor("relay", RelayProcessor)
    g.add_processor("sink", CollectingSink)
    g.link("source", "relay").link("relay", "sink")
    return g


def run_once(sampling: bool) -> tuple[float, float, int]:
    """One relay run; returns (wall, sampler cost seconds, sweeps).

    Both arms construct and attach the profiler, so the dormant arm
    carries exactly what production carries when nobody is profiling:
    the module-level ``_ACTIVE`` test on every execute.
    """
    obs = RuntimeObserver()
    profiler = SamplingProfiler(hz=HZ)
    obs.profiler = profiler
    with NeptuneRuntime(observer=obs) as runtime:
        if sampling:
            profiler.start()
        t0 = time.perf_counter()
        handle = runtime.submit(build_graph())
        if not handle.await_completion(timeout=300):
            raise RuntimeError("guardrail run did not drain")
        elapsed = time.perf_counter() - t0
        if sampling:
            profiler.stop()
    count = handle.metrics().get("sink", {}).get("packets_in", 0)
    if count != PACKETS:
        raise RuntimeError(f"guardrail run lost packets: {count}/{PACKETS}")
    if not sampling:
        return elapsed, 0.0, 0
    if profiler.samples == 0:
        raise RuntimeError("profiler took no samples: run too short to compare")
    if profiler.errors:
        raise RuntimeError(f"profiler sweep errors: {profiler.errors}")
    return elapsed, profiler.sample_seconds, profiler.samples


def main() -> int:
    # Warm both arms so import/JIT-warmup costs hit neither.
    run_once(False)
    run_once(True)

    dormant: list[float] = []
    sampled: list[float] = []
    duties: list[float] = []
    total_sweeps = 0
    for trial in range(TRIALS):
        # Interleave so slow machine drift penalizes both arms equally.
        base_wall, _, _ = run_once(False)
        obs_wall, cost_secs, sweeps = run_once(True)
        dormant.append(base_wall)
        sampled.append(obs_wall)
        duty = cost_secs / obs_wall
        duties.append(duty)
        total_sweeps += sweeps
        print(
            f"trial {trial + 1}/{TRIALS}: dormant={base_wall:.3f}s "
            f"sampling={obs_wall:.3f}s sweeps={sweeps} "
            f"duty={duty * 100:.2f}%",
            flush=True,
        )

    best_base = min(dormant)
    best_obs = min(sampled)
    ab_pct = (best_obs - best_base) / best_base * 100.0
    best_duty = min(duties)
    print(
        f"min-of-{TRIALS}: dormant={best_base:.3f}s sampling={best_obs:.3f}s "
        f"A/B={ab_pct:+.2f}% (backstop {MAX_AB_PCT:.0f}%) "
        f"duty cycle={best_duty * 100:.2f}% (budget {MAX_DUTY_PCT:.1f}%, "
        f"worst {max(duties) * 100:.2f}%) over {total_sweeps} sweeps"
    )
    if best_duty * 100.0 > MAX_DUTY_PCT:
        print("FAIL: profiler sampling duty cycle exceeds budget", file=sys.stderr)
        return 1
    if ab_pct > MAX_AB_PCT:
        print(
            "FAIL: sampled wall time collapsed — profiling work is "
            "leaking onto the data plane",
            file=sys.stderr,
        )
        return 1
    print("OK: profiler overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
