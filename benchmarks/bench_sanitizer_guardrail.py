"""Guardrail: duty-cycled lock-order recording must cost < 3% of a job.

Runs the in-process relay pipeline A/B under an installed
:class:`~repro.analysis.sanitizer.LockOrderSanitizer` in two arms,
interleaved over several trials:

- **baseline** — sanitizer installed *dormant* (``duty=0``): every
  ``threading.Lock``/``RLock`` the runtime builds is wrapped, but no
  acquire is recorded.  This mirrors ``bench_health_guardrail.py``,
  whose baseline arm has the observer attached but idle: the wrapper
  indirection is the instrumentation fixture, and what this guardrail
  bounds is the *cost of witnessing* — the recording work itself.
- **sampled** — the shipped duty-cycled config (``SAN_GUARDRAIL_DUTY``,
  default 10% recording windows).  Lock-order edges are structural and
  recur on every packet, so sampled windows witness the same edge set
  an always-on recorder would; an always-on recorder cannot meet a
  few-percent budget on a lock-bound pipeline (the runtime takes ~9
  lock acquires per packet).

Two verdicts, because they answer different questions:

- **Duty cycle** (asserted at ``SAN_GUARDRAIL_PCT``, default 3%): the
  calibrated *marginal* per-acquire recording cost
  (:func:`repro.analysis.sanitizer.calibrate_recording`, active-window
  acquire minus dormant-window acquire, measured on this machine at the
  start of the run) times the witnessed active-window ``acquires``
  count, over the sampled run's wall time.  This attributes the
  recorder's *causal* cost — stable even on noisy shared runners,
  where an end-to-end delta of a few percent is indistinguishable from
  scheduler jitter.
- **A/B wall clock** (asserted at ``SAN_GUARDRAIL_AB_PCT``, default
  25%): min-of-N sampled vs dormant wall time.  Its noise floor sits
  an order of magnitude above the duty-cycle budget, so it only
  backstops catastrophic regressions — e.g. the dormant fast path
  accidentally taking the edge-recording lock.

Tunables via environment:

- ``SAN_GUARDRAIL_PACKETS``  (default 20000)
- ``SAN_GUARDRAIL_TRIALS``   (default 5)
- ``SAN_GUARDRAIL_DUTY``     (default 0.1 — fraction of time recording)
- ``SAN_GUARDRAIL_WINDOW``   (default 0.25 — seconds per on/off cycle)
- ``SAN_GUARDRAIL_PCT``      (default 3.0)
- ``SAN_GUARDRAIL_AB_PCT``   (default 25.0)
"""

from __future__ import annotations

import os
import sys
import time

from repro.analysis.sanitizer import LockOrderSanitizer, calibrate_recording
from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.workloads import CollectingSink, CountingSource, RelayProcessor

PACKETS = int(os.environ.get("SAN_GUARDRAIL_PACKETS", "20000"))
TRIALS = int(os.environ.get("SAN_GUARDRAIL_TRIALS", "5"))
DUTY = float(os.environ.get("SAN_GUARDRAIL_DUTY", "0.1"))
WINDOW = float(os.environ.get("SAN_GUARDRAIL_WINDOW", "0.25"))
MAX_DUTY_PCT = float(os.environ.get("SAN_GUARDRAIL_PCT", "3.0"))
MAX_AB_PCT = float(os.environ.get("SAN_GUARDRAIL_AB_PCT", "25.0"))


def run_once(duty: float) -> tuple[float, int]:
    """One pipeline run under an installed sanitizer at the given duty;
    returns (wall seconds, active-window acquires witnessed)."""
    sanitizer = LockOrderSanitizer(duty=duty, window=WINDOW)
    sanitizer.install()
    try:
        store: list = []
        g = StreamProcessingGraph(
            "sanitizer-guardrail",
            config=NeptuneConfig(buffer_capacity=64 * 1024, buffer_max_delay=0.005),
        )
        g.add_source("src", lambda: CountingSource(total=PACKETS))
        g.add_processor("relay", RelayProcessor)
        g.add_processor("sink", lambda: CollectingSink(store))
        g.link("src", "relay").link("relay", "sink")
        t0 = time.perf_counter()
        with NeptuneRuntime() as rt:
            handle = rt.submit(g)
            ok = handle.await_completion(timeout=120)
        elapsed = time.perf_counter() - t0
    finally:
        sanitizer.uninstall()
    if not ok:
        raise RuntimeError("guardrail pipeline did not drain")
    if len(store) != PACKETS:
        raise RuntimeError(f"expected {PACKETS} packets, got {len(store)}")
    witness = sanitizer.witness()
    if witness.dropped_edges:
        raise RuntimeError(
            f"sanitizer dropped {witness.dropped_edges} edges: MAX_EDGES too small"
        )
    if duty == 0.0 and witness.acquires:
        raise RuntimeError("dormant sanitizer recorded acquires: duty gate broken")
    return elapsed, witness.acquires


def main() -> int:
    marginal = calibrate_recording()
    print(
        f"calibrated marginal recording cost: {marginal * 1e9:.0f} ns/acquire "
        f"(duty={DUTY:.2f}, window={WINDOW:.2f}s)"
    )

    # Warm both arms so imports/first-run costs hit neither.
    run_once(0.0)
    run_once(DUTY)

    baseline: list[float] = []
    sampled: list[float] = []
    worst_duty = 0.0
    total_acquires = 0
    for trial in range(TRIALS):
        # Interleave so slow machine drift penalizes both arms equally.
        base_wall, _ = run_once(0.0)
        samp_wall, acquires = run_once(DUTY)
        baseline.append(base_wall)
        sampled.append(samp_wall)
        duty_cost = marginal * acquires / samp_wall
        worst_duty = max(worst_duty, duty_cost)
        total_acquires += acquires
        print(
            f"trial {trial + 1}/{TRIALS}: dormant={base_wall:.3f}s "
            f"sampled={samp_wall:.3f}s acquires={acquires} "
            f"recording cost={duty_cost * 100:.2f}%",
            flush=True,
        )

    if total_acquires == 0:
        print(
            "FAIL: sampled arm witnessed no acquires — recording windows "
            "never overlapped the run",
            file=sys.stderr,
        )
        return 1

    best_base = min(baseline)
    best_samp = min(sampled)
    ab_pct = (best_samp - best_base) / best_base * 100.0
    print(
        f"min-of-{TRIALS}: dormant={best_base:.3f}s "
        f"sampled={best_samp:.3f}s A/B={ab_pct:+.2f}% "
        f"(backstop {MAX_AB_PCT:.0f}%) worst recording cost={worst_duty * 100:.2f}% "
        f"(budget {MAX_DUTY_PCT:.1f}%) over {total_acquires} acquires"
    )
    if worst_duty * 100.0 > MAX_DUTY_PCT:
        print("FAIL: sanitizer recording cost exceeds budget", file=sys.stderr)
        return 1
    if ab_pct > MAX_AB_PCT:
        print(
            "FAIL: sampled wall time collapsed — edge recording is "
            "leaking onto the dormant fast path",
            file=sys.stderr,
        )
        return 1
    print("OK: sanitizer overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
