"""Guardrail: the elasticity policy must heal cheaply — and actually heal.

Runs the stalled-sink pipeline A/B, interleaved over several trials:

- **policed** — a ``buffer_occupancy`` SLO scanned at 10 Hz; every
  breach/recover transition runs diagnose → PolicyEngine → live
  ``reconfigure`` on the runtime (the coordinator's ``on_scan`` hook,
  minus the processes).  The stall trips the SLO, the doctor blames
  the sink's backpressure cascade, and the engine's ``batch_up``
  retune amortizes the sink's fixed per-batch overhead.
- **control** — the identical pipeline draining the stall at full
  per-batch price.

Three verdicts:

- **Closed loop** (hard): every policed trial must record at least one
  breach and at least one policy action.  A policy that never fires is
  a dead code path, not a cheap one.
- **Heal floor** (asserted at ``POLICY_GUARDRAIL_HEAL_PCT``, default
  25%): min-of-N policed wall time must beat min-of-N control wall
  time by at least this margin.  Both arms are sleep-bound (the sink's
  batch overhead), so the ratio is stable across runner speeds.
- **Duty cycle** (asserted at ``POLICY_GUARDRAIL_PCT``, default 3%):
  seconds spent scanning + diagnosing + deciding + applying over the
  policed run's wall time — the whole observe-and-act plane's cost.

Tunables via environment:

- ``POLICY_GUARDRAIL_PACKETS``   (default 6000)
- ``POLICY_GUARDRAIL_TRIALS``    (default 3)
- ``POLICY_GUARDRAIL_PCT``       (default 3.0)
- ``POLICY_GUARDRAIL_HEAL_PCT``  (default 25.0)
"""

from __future__ import annotations

import os
import sys

from repro.bench.harness import BenchProfile
from repro.bench.scenarios import _timed_policy

PACKETS = int(os.environ.get("POLICY_GUARDRAIL_PACKETS", "6000"))
TRIALS = int(os.environ.get("POLICY_GUARDRAIL_TRIALS", "3"))
MAX_DUTY_PCT = float(os.environ.get("POLICY_GUARDRAIL_PCT", "3.0"))
MIN_HEAL_PCT = float(os.environ.get("POLICY_GUARDRAIL_HEAL_PCT", "25.0"))

PROFILE = BenchProfile(
    name="policy-guardrail",
    codec_messages=0,
    codec_repeats=1,
    buffer_appends=0,
    relay_packets=0,
    relay_max_delay=0.005,
    policy_packets=PACKETS,
)


def main() -> int:
    control: list[float] = []
    policed: list[float] = []
    worst_duty = 0.0
    for trial in range(TRIALS):
        # Interleave so slow machine drift penalizes both arms equally.
        t_off, _, _, _, _ = _timed_policy(PROFILE, policed=False)
        t_on, plane_secs, actions, breaches, recoveries = _timed_policy(
            PROFILE, policed=True
        )
        control.append(t_off)
        policed.append(t_on)
        duty = plane_secs / t_on if t_on else 0.0
        worst_duty = max(worst_duty, duty)
        print(
            f"trial {trial + 1}/{TRIALS}: control={t_off:.3f}s "
            f"policed={t_on:.3f}s breaches={breaches} actions={actions} "
            f"recoveries={recoveries} duty={duty * 100:.2f}%",
            flush=True,
        )
        if breaches < 1 or actions < 1:
            print(
                "FAIL: the policy never closed the loop — the stall must "
                "trip the SLO and the doctor must attribute it",
                file=sys.stderr,
            )
            return 1

    best_off = min(control)
    best_on = min(policed)
    heal_pct = (best_off - best_on) / best_off * 100.0 if best_off else 0.0
    print(
        f"min-of-{TRIALS}: control={best_off:.3f}s policed={best_on:.3f}s "
        f"heal={heal_pct:+.1f}% (floor {MIN_HEAL_PCT:.0f}%) "
        f"worst duty cycle={worst_duty * 100:.2f}% (budget {MAX_DUTY_PCT:.1f}%)"
    )
    if worst_duty * 100.0 > MAX_DUTY_PCT:
        print(
            "FAIL: policy plane duty cycle exceeds budget — scanning or "
            "deciding is leaking onto the hot path",
            file=sys.stderr,
        )
        return 1
    if heal_pct < MIN_HEAL_PCT:
        print(
            "FAIL: the retune is not paying for itself — the policed drain "
            "must beat the stalled control by the heal floor",
            file=sys.stderr,
        )
        return 1
    print("OK: policy heals the stall within the duty budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
