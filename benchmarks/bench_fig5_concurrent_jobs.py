"""FIG5 — cumulative throughput & bandwidth vs concurrent jobs.

Paper Fig. 5 (50-node cluster, two-stage all-pairs jobs): both
cumulative metrics rise until the job count reaches the node count
(adequate provisioning), then *drop* as the cluster becomes
overprovisioned.  Headline (§VI): ~100 M msgs/s cumulative with
near-optimal bandwidth at the peak.
"""

from repro.sim import experiments as exp


def test_fig5_concurrent_jobs(benchmark):
    rows = benchmark.pedantic(
        lambda: exp.fig5_concurrent_jobs(), rounds=1, iterations=1
    )
    print()
    print(exp.format_rows(rows, title="FIG5: cumulative throughput vs #jobs"))

    by_jobs = {r["jobs"]: r for r in rows}
    # Rising phase to 50 jobs.
    assert (
        by_jobs[10]["cumulative_throughput_msg_s"]
        < by_jobs[30]["cumulative_throughput_msg_s"]
        < by_jobs[50]["cumulative_throughput_msg_s"]
    )
    # Overprovisioned decline past the node count.
    assert (
        by_jobs[100]["cumulative_throughput_msg_s"]
        < by_jobs[50]["cumulative_throughput_msg_s"]
    )
    assert (
        by_jobs[150]["cumulative_throughput_msg_s"]
        < by_jobs[100]["cumulative_throughput_msg_s"]
    )
    # Peak in the paper's ~100M regime with near-optimal bandwidth.
    peak = by_jobs[50]
    assert 8e7 < peak["cumulative_throughput_msg_s"] < 1.5e8
    assert peak["cumulative_bandwidth_gbps"] > 40  # of 50 Gbps ceiling
