"""TAB1 — context switches: batched vs individual message scheduling.

Paper Table I (50 B messages, 1 MB buffer, buffering decoupled from
batching): batched ≈ 4085 ± 92 switches per 5 s; individual ≈ 89952 ±
1087 — a ~22x ratio.  The reproduction must land in the same regime.
"""

from repro.sim import experiments as exp


def test_table1_context_switches(benchmark, sim_budget):
    duration, _ = sim_budget

    def run():
        return exp.table1_context_switches(repeats=3, duration=duration)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(exp.format_rows(rows, title="TABLE I: context switches per 5 s"))

    batched = rows[0]["ctx_switches_per_5s_mean"]
    individual = rows[1]["ctx_switches_per_5s_mean"]
    ratio = rows[2]["ctx_switches_per_5s_mean"]
    # Paper regime: thousands vs ~1e5, ratio ~22x.
    assert 1_000 < batched < 12_000
    assert 40_000 < individual < 200_000
    assert 10 < ratio < 40
