"""Shared benchmark configuration.

Every ``bench_*`` module regenerates one of the paper's tables or
figures (see DESIGN.md §4).  Runs print their result tables; pass
``-s`` to see them, e.g.::

    pytest benchmarks/ --benchmark-only -s

``--paper-full`` switches the sim experiments from the quick sweep
(default, a few minutes total) to the full-resolution sweeps.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-full",
        action="store_true",
        default=False,
        help="run full-resolution paper sweeps (slower)",
    )


@pytest.fixture(scope="session")
def full_resolution(request):
    return request.config.getoption("--paper-full")


@pytest.fixture(scope="session")
def sim_budget(full_resolution):
    """(duration, max_events) for relay-sim based experiments."""
    return (2.0, 150_000) if full_resolution else (1.0, 50_000)


def pytest_collection_modifyitems(config, items):
    # Benchmarks are ordered by experiment id for readable reports.
    items.sort(key=lambda item: item.nodeid)
