"""Microbenchmarks of the real runtime's hot paths (pytest-benchmark).

These are the CPython costs behind the design choices the paper argues
for: serde with codec reuse, object pooling vs allocation, the
buffer-append path, partitioner routing, the LZ4 codec, entropy
estimation, and a full in-process pipeline.
"""

import random

from repro.compression import CompressionPolicy, sampled_entropy
from repro.core import (
    FieldsPartitioning,
    NeptuneConfig,
    NeptuneRuntime,
    ObjectPool,
    PacketCodec,
    RoundRobinPartitioning,
    ShufflePartitioning,
    StreamProcessingGraph,
)
from repro.core.buffering import StreamBuffer
from repro.core.packet import StreamPacket
from repro.lz4 import compress, decompress
from repro.workloads import RELAY_SCHEMA, CollectingSink, CountingSource
from repro.workloads.debs import ManufacturingStream


def make_packet(i=0, payload=bytes(50)):
    return RELAY_SCHEMA.new_packet(seq=i, emitted_at=0.0, payload=payload)


class TestSerde:
    def test_encode_single_packet(self, benchmark):
        codec = PacketCodec(RELAY_SCHEMA)
        pkt = make_packet()
        out = benchmark(codec.encode, pkt)
        assert len(out) == 70

    def test_encode_batch_1000(self, benchmark):
        codec = PacketCodec(RELAY_SCHEMA)
        pkts = [make_packet(i) for i in range(1000)]
        body = benchmark(codec.encode_batch, pkts)
        assert len(body) == 70_000

    def test_decode_batch_1000_reuse(self, benchmark):
        codec = PacketCodec(RELAY_SCHEMA)
        body = codec.encode_batch([make_packet(i) for i in range(1000)])

        def drain():
            n = 0
            for _pkt in codec.iter_decode(body, reuse=True):
                n += 1
            return n

        assert benchmark(drain) == 1000

    def test_decode_batch_1000_fresh(self, benchmark):
        """Contrast: allocating a packet per message (no reuse)."""
        codec = PacketCodec(RELAY_SCHEMA)
        body = codec.encode_batch([make_packet(i) for i in range(1000)])

        def drain():
            return sum(1 for _ in codec.iter_decode(body, reuse=False))

        assert benchmark(drain) == 1000


class TestObjectPool:
    def test_pool_acquire_release(self, benchmark):
        pool = ObjectPool(
            factory=lambda: StreamPacket(RELAY_SCHEMA),
            reset=StreamPacket.reset,
            max_size=32,
            preallocate=8,
        )

        def cycle():
            pkt = pool.acquire()
            pool.release(pkt)

        benchmark(cycle)
        assert pool.reuse_ratio > 0.99

    def test_fresh_allocation(self, benchmark):
        benchmark(lambda: StreamPacket(RELAY_SCHEMA))


class TestBuffering:
    def test_append_until_flush(self, benchmark):
        payload = bytes(70)
        sink_counter = [0]

        buf = StreamBuffer(
            capacity=64 * 1024,
            sink=lambda body, count: sink_counter.__setitem__(0, sink_counter[0] + 1),
        )

        benchmark(buf.append, payload)


class TestPartitioning:
    def test_round_robin(self, benchmark):
        rr = RoundRobinPartitioning()
        pkt = make_packet()
        benchmark(rr.route, pkt, 8)

    def test_shuffle(self, benchmark):
        sh = ShufflePartitioning(seed=1)
        pkt = make_packet()
        benchmark(sh.route, pkt, 8)

    def test_fields_hash(self, benchmark):
        fp = FieldsPartitioning(["seq"])
        pkt = make_packet(12345)
        benchmark(fp.route, pkt, 8)


class TestLz4:
    def test_compress_sensor_64k(self, benchmark):
        body = ManufacturingStream(seed=3).serialized_stream(400)[: 64 * 1024]
        packed = benchmark(compress, body)
        assert len(packed) < len(body) // 2

    def test_decompress_sensor_64k(self, benchmark):
        body = ManufacturingStream(seed=3).serialized_stream(400)[: 64 * 1024]
        packed = compress(body)
        out = benchmark(decompress, packed)
        assert out == body

    def test_entropy_estimate_64k(self, benchmark):
        rng = random.Random(5)
        body = bytes(rng.getrandbits(8) for _ in range(64 * 1024))
        e = benchmark(sampled_entropy, body)
        assert e > 7.5

    def test_policy_gate_rejects_random(self, benchmark):
        rng = random.Random(6)
        body = bytes(rng.getrandbits(8) for _ in range(64 * 1024))
        policy = CompressionPolicy(entropy_threshold=6.0)
        out = benchmark(policy.encode, body)
        assert out[0] == 0x00  # sent raw: only the entropy probe paid


class TestEndToEnd:
    def test_pipeline_10k_packets(self, benchmark):
        """Full in-process pipeline throughput (source→relay→sink)."""

        def run():
            store = []
            g = StreamProcessingGraph(
                "bench-pipeline",
                config=NeptuneConfig(buffer_capacity=64 * 1024, buffer_max_delay=0.005),
            )
            g.add_source("src", lambda: CountingSource(total=10_000))
            g.add_processor("sink", lambda: CollectingSink(store))
            g.link("src", "sink")
            with NeptuneRuntime() as rt:
                handle = rt.submit(g)
                assert handle.await_completion(timeout=120)
            return len(store)

        assert benchmark.pedantic(run, rounds=1, iterations=1) == 10_000


class TestBroker:
    def test_publish_keyed(self, benchmark):
        from repro.broker import MessageBroker

        broker = MessageBroker()
        broker.create_topic("bench", partitions=8)
        payload = bytes(100)
        keys = [f"sensor-{i}".encode() for i in range(32)]
        counter = [0]

        def publish():
            counter[0] += 1
            broker.publish("bench", payload, keys[counter[0] % 32])

        benchmark(publish)

    def test_poll_batch(self, benchmark):
        from repro.broker import MessageBroker

        broker = MessageBroker()
        broker.create_topic("bench", partitions=1)
        for _ in range(2048):
            broker.publish("bench", bytes(100))
        cg = broker.consumer_group("g", "bench")

        def poll():
            msgs = broker.poll("g", "bench", 0, max_messages=256)
            cg.seek(0, 0)  # rewind: steady-state poll cost
            return msgs

        msgs = benchmark(poll)
        assert len(msgs) == 256


class TestDistributedTcp:
    def test_distributed_relay_3k(self, benchmark):
        """Real two-resource TCP relay throughput (informational)."""
        from repro.core import NeptuneConfig, StreamProcessingGraph
        from repro.core.distributed import DistributedJob
        from repro.workloads import CollectingSink, CountingSource, RelayProcessor

        def run():
            store = []
            g = StreamProcessingGraph(
                "bench-dist",
                config=NeptuneConfig(buffer_capacity=32 * 1024, buffer_max_delay=0.005),
            )
            g.add_source("src", lambda: CountingSource(total=3000, payload_size=100))
            g.add_processor("relay", RelayProcessor)
            g.add_processor("sink", lambda: CollectingSink(store))
            g.link("src", "relay").link("relay", "sink")
            job = DistributedJob(g, n_workers=2)
            job.start()
            assert job.await_completion(timeout=120)
            return len(store)

        assert benchmark.pedantic(run, rounds=1, iterations=1) == 3000
