"""FIG7 — NEPTUNE vs Apache Storm on the message relay.

Paper Fig. 7 (message sizes 50 B → 10 KB): "NEPTUNE outperforms Storm
in all three metrics.  The latency observed with Storm was drastically
increasing with the message size ... mainly due to the absence of
backpressure in Storm."
"""

from repro.sim import experiments as exp


def test_fig7_neptune_vs_storm(benchmark, sim_budget):
    duration, max_events = sim_budget
    sizes = (50, 400, 1024, 10240)

    rows = benchmark.pedantic(
        lambda: exp.fig7_neptune_vs_storm(
            message_sizes=sizes, duration=duration, max_events=max_events
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(exp.format_rows(rows, title="FIG7: NEPTUNE vs Storm relay"))

    def pick(framework, msg):
        return next(
            r for r in rows if r["framework"] == framework and r["message_B"] == msg
        )

    for msg in sizes:
        n, s = pick("neptune", msg), pick("storm", msg)
        # NEPTUNE wins throughput and latency at every size.
        assert n["throughput_msg_s"] >= s["throughput_msg_s"], msg
        assert n["latency_ms"] < s["latency_ms"], msg
    # The small-message gap is where buffering pays: >5x at 50 B.
    assert (
        pick("neptune", 50)["throughput_msg_s"]
        > 5 * pick("storm", 50)["throughput_msg_s"]
    )
    # Storm's latency grows drastically with message size (no
    # backpressure → queue growth); NEPTUNE's stays bounded.
    storm_lat = [pick("storm", m)["latency_ms"] for m in sizes]
    assert storm_lat[-1] > 3 * storm_lat[0]
    neptune_lat = [pick("neptune", m)["latency_ms"] for m in sizes]
    assert max(neptune_lat) < 150  # bounded by watermarks (ms)
    # Bandwidth: NEPTUNE's batching uses the wire better at 50 B.
    assert (
        pick("neptune", 50)["bandwidth_gbps"]
        > 2 * pick("storm", 50)["bandwidth_gbps"]
    )
