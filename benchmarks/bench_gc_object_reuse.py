"""GC — object reuse cuts garbage-collection time (paper §III-B3).

Paper: "Object reuse helped reduce the percentage of time spent by the
JVM on garbage collection over the time spent on actual processing from
8.63% to 0.79%."  Two measurements:

1. the simulated relay's GC model (reproduces the paper's percentages);
2. a *real* CPython microbenchmark: serializing a batch with pooled,
   reused packets/codecs vs fresh allocations per message.
"""

import gc
import time

from repro.core import ObjectPool, PacketCodec
from repro.core.packet import StreamPacket
from repro.sim import experiments as exp
from repro.workloads import RELAY_SCHEMA


def test_gc_fraction_sim(benchmark, sim_budget):
    duration, _ = sim_budget

    def run():
        return exp.gc_object_reuse(duration=duration)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(exp.format_rows(rows, title="GC time as % of processing (sim)"))
    reuse = rows[0]["gc_time_pct_of_processing"]
    no_reuse = rows[1]["gc_time_pct_of_processing"]
    # Paper: 0.79% vs 8.63% — same regime, ~10x apart.
    assert 0.1 < reuse < 3.0
    assert 4.0 < no_reuse < 25.0
    assert no_reuse > 5 * reuse


def _encode_with_reuse(codec, pool, payload, n):
    out = bytearray()
    for i in range(n):
        pkt = pool.acquire()
        pkt.set("seq", i)
        pkt.set("emitted_at", 0.0)
        pkt.set("payload", payload)
        codec.encode_into(pkt, out)
        pool.release(pkt)
    return out


def _encode_fresh(payload, n):
    out = bytearray()
    for i in range(n):
        codec = PacketCodec(RELAY_SCHEMA)  # fresh codec per message
        pkt = StreamPacket(RELAY_SCHEMA)  # fresh packet per message
        pkt.set("seq", i)
        pkt.set("emitted_at", 0.0)
        pkt.set("payload", payload)
        codec.encode_into(pkt, out)
    return out


def test_object_reuse_real_runtime(benchmark):
    """Real CPython: pooled packets + shared codec vs per-message
    allocation.  Reuse must allocate far fewer objects."""
    payload = bytes(50)
    n = 2000
    codec = PacketCodec(RELAY_SCHEMA)
    pool = ObjectPool(
        factory=lambda: StreamPacket(RELAY_SCHEMA),
        reset=StreamPacket.reset,
        max_size=16,
        preallocate=4,
    )

    result = benchmark(_encode_with_reuse, codec, pool, payload, n)
    assert len(result) == n * (8 + 8 + 4 + 50)
    assert pool.reuse_ratio > 0.99

    # CPython analogue of "reduced strain on the garbage collector":
    # refcounting retires short-lived objects without cycle-GC runs, so
    # the observable cost is allocation volume.  The reuse path serves
    # the whole workload from ~pool-size objects versus 2 per message.
    gc.collect()
    created_before = pool.created
    t0 = time.perf_counter()
    _encode_with_reuse(codec, pool, payload, n)
    t_reuse = time.perf_counter() - t0
    reuse_created = pool.created - created_before

    t0 = time.perf_counter()
    _encode_fresh(payload, n)
    t_fresh = time.perf_counter() - t0

    print(
        f"\nobjects created: reuse={reuse_created} vs fresh={2 * n}; "
        f"time: reuse={t_reuse * 1e3:.1f}ms vs fresh={t_fresh * 1e3:.1f}ms"
    )
    # The robust CPython claim is allocation *volume*: the pool serves
    # the whole workload from a handful of objects, where the fresh
    # path allocates 2 per message.  Wall time can go either way here —
    # refcounting makes CPython allocation cheap while the thread-safe
    # pool pays two lock crossings per message — which is exactly why
    # the paper's GC-strain claim is evaluated on the JVM-calibrated
    # simulator (test_gc_fraction_sim) rather than this micro path.
    assert reuse_created <= 16  # bounded by the pool, not the workload
