"""FIG2 — throughput, end-to-end latency, and bandwidth vs buffer size.

Paper §III-B1 / Figure 2: buffer sizes 1 KB → 1 MB, message sizes
50 B → 10 KB on the Fig. 1 three-stage relay.  Expected shape:
throughput rises with buffer size to a steady state, bandwidth
approaches the 1 Gbps ceiling (0.937 Gbps in the paper), latency grows
with buffer size but stays ~<10 ms at mid-range (16 KB) buffers.
"""

from repro.sim import experiments as exp


def test_fig2_buffer_sweep(benchmark, sim_budget):
    duration, max_events = sim_budget
    message_sizes = (50, 400, 10240)

    def run():
        return exp.fig2_buffer_sweep(
            message_sizes=message_sizes,
            duration=duration,
            max_events=max_events,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(exp.format_rows(rows, title="FIG2: relay sweep (buffer x message size)"))

    by_msg = {}
    for r in rows:
        by_msg.setdefault(r["message_B"], []).append(r)
    for msg, series in by_msg.items():
        series.sort(key=lambda r: r["buffer_B"])
        if msg <= 1024:
            # Small messages: throughput rises with buffer size (the
            # per-flush costs amortize) — the paper's headline shape.
            assert series[-1]["throughput_msg_s"] > series[0]["throughput_msg_s"], msg
        else:
            # Large messages saturate the 1 Gbps wire at every buffer
            # size ("stabilization of the bandwidth consumption causes
            # the throughput to ... stay at a steady state for larger
            # message sizes", §III-B1).
            assert series[-1]["bandwidth_gbps"] > 0.9, msg
        # Latency grows from mid-size to the largest buffer.
        mid = next(r for r in series if r["buffer_B"] == 16384)
        assert series[-1]["latency_ms"] >= mid["latency_ms"]
    # Bandwidth saturates near the paper's 0.937 Gbps for 50 B at 1 MB.
    big_small = next(
        r for r in rows if r["message_B"] == 50 and r["buffer_B"] == 1 << 20
    )
    assert big_small["bandwidth_gbps"] > 0.9
    # Mid-range buffer keeps latency in the paper's <10 ms regime.
    for msg in message_sizes:
        mid = next(
            r for r in rows if r["message_B"] == msg and r["buffer_B"] == 16384
        )
        assert mid["latency_ms"] < 15.0
