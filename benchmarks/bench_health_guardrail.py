"""Guardrail: a scanning health engine must cost < 3% of a job's time.

Runs the in-process relay pipeline A/B — observer attached but no
health engine vs the same observer with a background
:class:`HealthEngine` scanning SLO monitors at 10 Hz — interleaved
over several trials.  The SLO budgets are deliberately generous so no
monitor ever breaches: the guardrail bounds the cost of *watching*,
not of reacting.

Two verdicts, because they answer different questions:

- **Duty cycle** (asserted at ``HEALTH_GUARDRAIL_PCT``, default 3%):
  seconds spent inside ``scan_once`` over the monitored run's wall
  time.  The engine does nothing between scans, so this is its entire
  cost, measured causally — stable even on noisy shared runners.
- **A/B wall clock** (asserted at ``HEALTH_GUARDRAIL_AB_PCT``, default
  25%): min-of-N monitored vs bare wall time.  Its noise floor on CI
  hardware (±10%) sits an order of magnitude above the duty-cycle
  budget, so it only backstops catastrophic regressions — e.g. scan
  work accidentally moving onto the hot path, which the duty cycle
  alone would not see.

Tunables via environment:

- ``HEALTH_GUARDRAIL_PACKETS``  (default 20000)
- ``HEALTH_GUARDRAIL_TRIALS``   (default 5)
- ``HEALTH_GUARDRAIL_PCT``      (default 3.0)
- ``HEALTH_GUARDRAIL_AB_PCT``   (default 25.0)
- ``HEALTH_GUARDRAIL_INTERVAL`` (default 0.1 seconds)
"""

from __future__ import annotations

import os
import sys
import time

from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.observe import HealthEngine, RuntimeObserver, bridge, default_slos
from repro.workloads import CollectingSink, CountingSource, RelayProcessor

PACKETS = int(os.environ.get("HEALTH_GUARDRAIL_PACKETS", "20000"))
TRIALS = int(os.environ.get("HEALTH_GUARDRAIL_TRIALS", "5"))
MAX_DUTY_PCT = float(os.environ.get("HEALTH_GUARDRAIL_PCT", "3.0"))
MAX_AB_PCT = float(os.environ.get("HEALTH_GUARDRAIL_AB_PCT", "25.0"))
SCAN_INTERVAL = float(os.environ.get("HEALTH_GUARDRAIL_INTERVAL", "0.1"))


def run_once(monitored: bool) -> tuple[float, float, int]:
    """One pipeline run; returns (wall seconds, scan seconds, scans)."""
    store: list = []
    g = StreamProcessingGraph(
        "health-guardrail",
        config=NeptuneConfig(buffer_capacity=64 * 1024, buffer_max_delay=0.005),
    )
    g.add_source("src", lambda: CountingSource(total=PACKETS))
    g.add_processor("relay", RelayProcessor)
    g.add_processor("sink", lambda: CollectingSink(store))
    g.link("src", "relay").link("relay", "sink")
    observer = RuntimeObserver(sample_every=0)
    engine: HealthEngine | None = None
    t0 = time.perf_counter()
    with NeptuneRuntime(observer=observer) as rt:
        handle = rt.submit(g)
        if monitored:
            registry = observer.registry
            slos = default_slos(
                ["src", "relay", "sink"], latency_budget=60.0, e2e_budget=None
            )
            engine = HealthEngine(
                observer,
                slos,
                scrape=lambda: bridge.scrape_job(registry, handle),
                interval=SCAN_INTERVAL,
            )
            engine.start()
        ok = handle.await_completion(timeout=120)
        if engine is not None:
            engine.stop()
        if not ok:
            raise RuntimeError("guardrail pipeline did not drain")
    elapsed = time.perf_counter() - t0
    if len(store) != PACKETS:
        raise RuntimeError(f"expected {PACKETS} packets, got {len(store)}")
    if engine is None:
        return elapsed, 0.0, 0
    if engine.scans == 0:
        raise RuntimeError("health engine never scanned: run too short to compare")
    return elapsed, engine.scan_seconds, engine.scans


def main() -> int:
    # Warm both arms so imports/first-run costs hit neither.
    run_once(False)
    run_once(True)

    baseline: list[float] = []
    monitored: list[float] = []
    worst_duty = 0.0
    total_scans = 0
    for trial in range(TRIALS):
        # Interleave so slow machine drift penalizes both arms equally.
        base_wall, _, _ = run_once(False)
        mon_wall, scan_secs, scans = run_once(True)
        baseline.append(base_wall)
        monitored.append(mon_wall)
        duty = scan_secs / mon_wall
        worst_duty = max(worst_duty, duty)
        total_scans += scans
        print(
            f"trial {trial + 1}/{TRIALS}: baseline={base_wall:.3f}s "
            f"monitored={mon_wall:.3f}s scans={scans} duty={duty * 100:.2f}%",
            flush=True,
        )

    best_base = min(baseline)
    best_mon = min(monitored)
    ab_pct = (best_mon - best_base) / best_base * 100.0
    print(
        f"min-of-{TRIALS}: baseline={best_base:.3f}s "
        f"health-engine={best_mon:.3f}s A/B={ab_pct:+.2f}% "
        f"(backstop {MAX_AB_PCT:.0f}%) worst duty cycle={worst_duty * 100:.2f}% "
        f"(budget {MAX_DUTY_PCT:.1f}%) over {total_scans} scans"
    )
    if worst_duty * 100.0 > MAX_DUTY_PCT:
        print("FAIL: health-engine scan duty cycle exceeds budget", file=sys.stderr)
        return 1
    if ab_pct > MAX_AB_PCT:
        print(
            "FAIL: monitored wall time collapsed — scan work is leaking "
            "onto the hot path",
            file=sys.stderr,
        )
        return 1
    print("OK: health-engine overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
