"""FIG6 — cumulative throughput & bandwidth vs cluster size.

Paper Fig. 6 (50 jobs fixed, nodes varied): "Both these metrics
linearly scale with the cluster size."
"""

from repro.sim import experiments as exp


def test_fig6_cluster_size(benchmark):
    rows = benchmark.pedantic(lambda: exp.fig6_cluster_size(), rounds=1, iterations=1)
    print()
    print(exp.format_rows(rows, title="FIG6: cumulative throughput vs #nodes"))

    by_nodes = {r["nodes"]: r for r in rows}
    t10 = by_nodes[10]["cumulative_throughput_msg_s"]
    t20 = by_nodes[20]["cumulative_throughput_msg_s"]
    t40 = by_nodes[40]["cumulative_throughput_msg_s"]
    # Linear scaling within 15%.
    assert abs(t20 - 2 * t10) / (2 * t10) < 0.15
    assert abs(t40 - 4 * t10) / (4 * t10) < 0.15
    # Monotone in cluster size throughout.
    series = [r["cumulative_throughput_msg_s"] for r in rows]
    assert series == sorted(series)
