"""FIG9 — manufacturing-monitoring cumulative throughput vs jobs.

Paper Fig. 9 (the 4-stage Fig. 8 job on 50 nodes): "both systems scale
linearly with the number of concurrent jobs.  But the throughput is
higher in NEPTUNE.  With 32 jobs, NEPTUNE's throughput is 8 times
higher than Storm."  Headline (§VI): ~15 M msgs/s cumulative.
"""

from repro.sim import experiments as exp


def test_fig9_manufacturing(benchmark):
    rows = benchmark.pedantic(lambda: exp.fig9_manufacturing(), rounds=1, iterations=1)
    print()
    print(exp.format_rows(rows, title="FIG9: manufacturing monitoring"))

    by_jobs = {r["jobs"]: r for r in rows}
    # ~8x at 32 jobs.
    assert 5 < by_jobs[32]["speedup"] < 12
    # Linear scaling for both systems (16 → 32 doubles within 20%).
    for col in ("neptune_msg_s", "storm_msg_s"):
        ratio = by_jobs[32][col] / by_jobs[16][col]
        assert 1.6 < ratio < 2.4, col
    # NEPTUNE's 50-job cumulative in the paper's ~15M regime.
    assert 1.0e7 < by_jobs[50]["neptune_msg_s"] < 2.5e7
