"""FIG10 — cluster-wide CPU and memory consumption, NEPTUNE vs Storm.

Paper Fig. 10 (50 jobs on 50 workers): "NEPTUNE's CPU consumption is
consistently lower compared to the CPU consumption of Storm across all
50 nodes (p-value for the one tailed t-test < 0.0001) ... With respect
to memory consumption, there is no noticeable difference between the
systems (p-value for the two-tailed t-test = 0.0863)."
"""

from repro.sim import experiments as exp
from repro.stats import summarize


def test_fig10_resource_usage(benchmark):
    fig10 = benchmark.pedantic(lambda: exp.fig10_resource_usage(), rounds=1, iterations=1)
    print()
    print("FIG10: per-node resource consumption (50 jobs / 50 nodes)")
    print(f"  NEPTUNE CPU: {summarize(fig10['neptune_cpu_pct'])}")
    print(f"  Storm   CPU: {summarize(fig10['storm_cpu_pct'])}")
    print(f"  CPU one-tailed t-test (Storm > NEPTUNE): p = {fig10['cpu_one_tailed_p']:.2e}")
    print(f"  NEPTUNE mem: {summarize(fig10['neptune_mem_pct'])}")
    print(f"  Storm   mem: {summarize(fig10['storm_mem_pct'])}")
    print(f"  memory two-tailed t-test: p = {fig10['mem_two_tailed_p']:.4f}")

    # Storm burns more CPU while delivering ~8x less (Fig. 9).
    assert fig10["cpu_mean_storm"] > fig10["cpu_mean_neptune"]
    assert fig10["cpu_one_tailed_p"] < 1e-3  # paper: < 0.0001
    # Memory: no significant difference at the 5% level (paper: 0.0863).
    assert fig10["mem_two_tailed_p"] > 0.05
    # Sanity on scale: CPU% is cumulative over up-to-8 vcores.
    assert all(0 <= v <= 800 for v in fig10["storm_cpu_pct"])
    assert all(0 <= v <= 100 for v in fig10["neptune_mem_pct"])
