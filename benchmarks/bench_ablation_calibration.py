"""ABLATION — robustness of the reproduced shapes to calibration choices.

DESIGN.md §6 commits to showing which conclusions depend on the
simulator's cost constants.  Each ablation perturbs one key constant by
±2x and re-checks the *shape* (who wins / direction of the trend), not
the absolute numbers:

- context-switch cost: batched vs individual ratio must survive;
- send-path cost: the throughput-rises-with-buffer-size shape must
  survive;
- garbage volume: the reuse-vs-no-reuse GC gap must survive;
- Storm per-tuple cost: NEPTUNE's small-message win must survive.
"""

from repro.sim.calibration import Calibration
from repro.sim.experiments import format_rows
from repro.sim.relay import RelayParams, run_relay

BASE = Calibration()


def _relay(cal, **kw):
    defaults = dict(duration=0.8, max_events=50_000, cal=cal)
    defaults.update(kw)
    return run_relay(RelayParams(**defaults))


def test_ablation_context_switch_cost(benchmark):
    def run():
        rows = []
        for factor in (0.5, 1.0, 2.0):
            cal = BASE.with_overrides(context_switch=BASE.context_switch * factor)
            batched = _relay(cal, batched=True, duration=1.5)
            individual = _relay(cal, batched=False, duration=1.5)
            rows.append(
                {
                    "ctx_switch_x": factor,
                    "batched_per5s": batched.context_switches_per_5s_relay,
                    "individual_per5s": individual.context_switches_per_5s_relay,
                    "ratio": individual.context_switches_per_5s_relay
                    / batched.context_switches_per_5s_relay,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_rows(rows, title="ABLATION: context-switch cost"))
    # The batching advantage is structural: it holds at every cost level.
    assert all(r["ratio"] > 5 for r in rows)


def test_ablation_send_path_cost(benchmark):
    def run():
        rows = []
        for factor in (0.5, 1.0, 2.0):
            cal = BASE.with_overrides(send_call_cpu=BASE.send_call_cpu * factor)
            small = _relay(cal, buffer_size=1024)
            large = _relay(cal, buffer_size=1 << 20, duration=1.5)
            rows.append(
                {
                    "send_cost_x": factor,
                    "thr_1KB_buffer": small.throughput,
                    "thr_1MB_buffer": large.throughput,
                    "gain": large.throughput / max(small.throughput, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_rows(rows, title="ABLATION: send-path cost"))
    # Buffering always wins; bigger per-send cost → bigger win.
    assert all(r["gain"] > 1.2 for r in rows)
    assert rows[-1]["gain"] > rows[0]["gain"]


def test_ablation_garbage_volume(benchmark):
    def run():
        rows = []
        for factor in (0.5, 1.0, 2.0):
            cal = BASE.with_overrides(
                garbage_per_message_no_reuse=int(
                    BASE.garbage_per_message_no_reuse * factor
                )
            )
            reuse = _relay(cal, object_reuse=True, duration=1.5)
            no_reuse = _relay(cal, object_reuse=False, duration=1.5)
            rows.append(
                {
                    "garbage_x": factor,
                    "gc_pct_reuse": reuse.gc_fraction_relay * 100,
                    "gc_pct_no_reuse": no_reuse.gc_fraction_relay * 100,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_rows(rows, title="ABLATION: garbage volume"))
    assert all(r["gc_pct_no_reuse"] > 3 * r["gc_pct_reuse"] for r in rows)


def test_ablation_10gbe_what_if(benchmark):
    """What-if: the same cluster on 10 GbE.

    On 1 GbE the small-message relay is wire-bound; at 10 GbE the
    bottleneck moves to CPU (the send path / per-message costs), so
    throughput rises but by far less than 10x — the paper's "holistic"
    point that removing one resource constraint exposes the next.
    """

    def run():
        rows = []
        for rate, label in ((1e9, "1GbE"), (1e10, "10GbE")):
            cal = BASE.with_overrides(link_rate_bps=rate)
            r = _relay(cal, message_size=50, buffer_size=1 << 20, duration=1.5)
            rows.append(
                {
                    "link": label,
                    "throughput_msg_s": r.throughput,
                    "link_utilization": r.link_utilization_ab,
                    "relay_cpu_util": r.cpu_utilization_relay,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_rows(rows, title="ABLATION: 1 GbE vs 10 GbE"))
    one, ten = rows
    # At the default calibration the per-message CPU path sits just
    # above the 1 GbE wire rate, so a 10x faster link buys only ~20%:
    # the bottleneck instantly moves to CPU — the paper's "holistic"
    # premise in one number.
    assert ten["throughput_msg_s"] > 1.05 * one["throughput_msg_s"]
    assert ten["throughput_msg_s"] < 3 * one["throughput_msg_s"]
    assert ten["link_utilization"] < 0.5  # wire no longer saturated


def test_ablation_storm_tuple_cost(benchmark):
    def run():
        rows = []
        for factor in (0.5, 1.0, 2.0):
            cal = BASE.with_overrides(
                storm_tuple_send_cpu=BASE.storm_tuple_send_cpu * factor
            )
            n = _relay(cal, message_size=50, duration=1.0)
            s = _relay(cal, framework="storm", message_size=50, duration=1.0)
            rows.append(
                {
                    "storm_cost_x": factor,
                    "neptune_msg_s": n.throughput,
                    "storm_msg_s": s.throughput,
                    "speedup": n.throughput / max(s.throughput, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_rows(rows, title="ABLATION: Storm per-tuple cost"))
    # Even charging Storm HALF its calibrated per-tuple cost, NEPTUNE's
    # batching keeps a decisive small-message advantage.
    assert all(r["speedup"] > 3 for r in rows)
