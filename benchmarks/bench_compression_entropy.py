"""COMP — entropy-based selective compression (paper §III-B5).

The paper compares a low-entropy sensor stream (DEBS manufacturing
telemetry) against a synthetic random stream of the same packet sizes,
with compression on/off, validating with Tukey's HSD:

- random data: "clear improvement in performance when the compression
  is completely disabled" (p < 0.0001 per comparison) — forcing
  compression on incompressible data costs real throughput;
- sensor data: "no strong evidence to support any negative or positive
  impact" (p > 0.1561) — with the paper's *native* LZ4 (GB/s class)
  compression is essentially free on compressible data.

This benchmark runs the *real* codec + policy path (not the simulator):
each arm round-trips batches through ``CompressionPolicy`` and then
performs the receiver's real work (decoding every packet with the
reusable codec), timing actual CPython throughput, then applies our
Tukey HSD implementation.

Substitution note (DESIGN.md §2): our LZ4 is pure Python, ~3 orders of
magnitude slower than the native library, so "compression is free on
sensor data" cannot hold on wall-clock here.  The *decision structure*
does reproduce and is asserted: forcing compression on random data is
catastrophically and significantly worse; the entropy gate removes
almost all of that penalty (selective ≈ off on random data, relative to
the forced penalty); and the sensor stream's wire bytes collapse while
the random stream's are untouched.
"""

import random
import time

from repro.compression import CompressionPolicy
from repro.core.serde import PacketCodec
from repro.sim.experiments import format_rows
from repro.stats import summarize, tukey_hsd
from repro.workloads.debs import MANUFACTURING_SCHEMA, ManufacturingStream

PACKETS_PER_BATCH = 400
N_BATCHES = 6
REPEATS = 8


def _make_batches(kind: str) -> list[bytes]:
    codec = PacketCodec(MANUFACTURING_SCHEMA)
    if kind == "sensor":
        stream = ManufacturingStream(seed=7)
        return [
            codec.encode_batch(list(stream.packets(PACKETS_PER_BATCH)))
            for _ in range(N_BATCHES)
        ]
    # Random: same record framing, incompressible aux payloads → the
    # serialized stream has near-maximal entropy.
    rng = random.Random(13)
    stream = ManufacturingStream(seed=7)
    batches = []
    for _ in range(N_BATCHES):
        pkts = list(stream.packets(PACKETS_PER_BATCH))
        for pkt in pkts:
            for j in range(59):
                pkt.set(f"aux_{j:02d}", rng.uniform(-1e4, 1e4))
            pkt.set("ts", rng.getrandbits(60))
        batches.append(codec.encode_batch(pkts))
    return batches


def _run_arm(batches: list[bytes], policy: CompressionPolicy | None) -> tuple[float, int]:
    """Round-trip + receiver decode; return (packets/s, wire bytes)."""
    codec = PacketCodec(MANUFACTURING_SCHEMA)
    t0 = time.perf_counter()
    wire = 0
    packets = 0
    for body in batches:
        encoded = (b"\x00" + body) if policy is None else policy.encode(body)
        wire += len(encoded)
        decoded = CompressionPolicy.decode(encoded)
        for _pkt in codec.iter_decode(decoded, reuse=True):
            packets += 1
    elapsed = time.perf_counter() - t0
    return packets / elapsed, wire


def _policy_for(mode: str) -> CompressionPolicy | None:
    if mode == "off":
        return None
    if mode == "selective":
        return CompressionPolicy(enabled=True, entropy_threshold=6.0)
    return CompressionPolicy(enabled=True, entropy_threshold=8.0, min_size=0)


def _measure_all(batches) -> dict:
    """Interleave repeats across modes so clock drift, cache state, and
    allocator warm-up are balanced between arms."""
    modes = ("off", "selective", "forced")
    samples = {m: [] for m in modes}
    wires = {}
    _run_arm(batches, None)  # warm-up pass
    for _ in range(REPEATS):
        for mode in modes:
            rate, wires[mode] = _run_arm(batches, _policy_for(mode))
            samples[mode].append(rate)
    return {m: (samples[m], wires[m]) for m in modes}


def test_compression_entropy_study(benchmark):
    def run():
        out = {}
        for kind in ("sensor", "random"):
            batches = _make_batches(kind)
            for mode, res in _measure_all(batches).items():
                out[(kind, mode)] = res
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (kind, mode), (samples, wire) in results.items():
        s = summarize(samples)
        rows.append(
            {
                "dataset": kind,
                "compression": mode,
                "throughput_pkt_s_mean": s.mean,
                "throughput_pkt_s_std": s.std,
                "wire_bytes": wire,
            }
        )
    print()
    print(format_rows(rows, title="COMP: selective compression study"))

    # --- omnibus ANOVA, then Tukey HSD (the paper's validation) ---
    from repro.stats import one_way_anova

    random_groups = {
        mode: results[("random", mode)][0] for mode in ("off", "selective", "forced")
    }
    omnibus = one_way_anova(random_groups)
    print(f"\nrandom data omnibus ANOVA: F={omnibus.f_statistic:.1f}, "
          f"p={omnibus.p_value:.2e}, eta^2={omnibus.eta_squared:.2f}")
    assert omnibus.significant()  # the forced arm separates the groups
    res_random = tukey_hsd(random_groups)
    p_forced = res_random.comparison("off", "forced").p_value
    p_selective = res_random.comparison("off", "selective").p_value
    print(f"\nrandom data: off vs forced    p = {p_forced:.2e}")
    print(f"random data: off vs selective p = {p_selective:.4f}")

    # Paper: forcing compression on random data is significantly worse.
    comp_forced = res_random.comparison("off", "forced")
    assert comp_forced.significant and comp_forced.mean_diff > 0
    # The entropy gate removes almost all of that penalty: whatever
    # throughput the probe costs is a small fraction of the forced loss.
    off_mean = res_random.means["off"]
    selective_penalty = off_mean - res_random.means["selective"]
    forced_penalty = off_mean - res_random.means["forced"]
    assert selective_penalty < 0.25 * forced_penalty

    sensor_groups = {
        mode: results[("sensor", mode)][0] for mode in ("off", "selective")
    }
    res_sensor = tukey_hsd(sensor_groups)
    p_sensor = res_sensor.comparison("off", "selective").p_value
    print(f"sensor data: off vs selective p = {p_sensor:.4f} "
          "(paper: >0.1561 with native-speed LZ4; see docstring)")

    # Wire bytes: selective compression slashes the sensor stream but
    # leaves the random stream untouched.
    wire_sensor_off = results[("sensor", "off")][1]
    wire_sensor_sel = results[("sensor", "selective")][1]
    wire_random_off = results[("random", "off")][1]
    wire_random_sel = results[("random", "selective")][1]
    print(f"sensor wire bytes: {wire_sensor_off} -> {wire_sensor_sel} (selective)")
    assert wire_sensor_sel < 0.4 * wire_sensor_off
    assert abs(wire_random_sel - wire_random_off) < 0.01 * wire_random_off
